//! Section 6, live: a path of finite-state "stone age" nodes computing a
//! context-sensitive language — the canonical `aⁿbⁿcⁿ` — by simulating a
//! linear bounded automaton (Lemma 6.2). The head travels as messages; no
//! node ever holds more than a constant amount of state.
//!
//! ```sh
//! cargo run --release --example stone_age_turing -- aabbcc
//! ```

use stoneage::lba::machines::{self, encode_abc};
use stoneage::lba::to_nfsm;

fn main() {
    let word = std::env::args().nth(1).unwrap_or_else(|| "aabbcc".into());
    if !word.chars().all(|c| matches!(c, 'a' | 'b' | 'c')) {
        eprintln!("input must be a word over {{a, b, c}}");
        std::process::exit(2);
    }
    let input = encode_abc(&word);

    let machine = machines::abc_equal();
    println!(
        "machine: {:?} ({} states); language {{aⁿbⁿcⁿ}} is context-sensitive —",
        machine.name(),
        machine.state_count()
    );
    println!("no pushdown automaton recognizes it, but an LBA (and hence a path");
    println!("of stone-age nodes) does.\n");

    // Direct LBA run.
    let direct = machine
        .run(&input, 0, 10_000_000)
        .expect("machine is total on its language");
    println!(
        "direct LBA:     {:?} → {} in {} head steps",
        word,
        if direct.accepted { "ACCEPT" } else { "REJECT" },
        direct.steps
    );

    // Lemma 6.2: the same computation on a path network of |w| + 2 nFSM
    // nodes (end markers are the degree-1 endpoints).
    let (accepted, rounds) =
        to_nfsm::run_on_path(&machine, &input, 1, 10_000_000).expect("path protocol terminates");
    println!(
        "path of {} nFSM nodes: {:?} → {} in {} synchronous rounds",
        input.len() + 2,
        word,
        if accepted { "ACCEPT" } else { "REJECT" },
        rounds
    );
    assert_eq!(accepted, direct.accepted, "Lemma 6.2: verdicts agree");

    // Try a few more words to show both verdicts.
    println!("\nmore words:");
    for w in ["abc", "aaabbbccc", "aabbc", "acb", "ba", ""] {
        let inp = encode_abc(w);
        let (acc, _) = to_nfsm::run_on_path(&machine, &inp, 2, 10_000_000).unwrap();
        println!("  {w:<10} → {}", if acc { "ACCEPT" } else { "REJECT" });
    }
}
