//! Simulation-as-a-service: boot the job server on a loopback port,
//! drive it over real HTTP, and watch a job's NDJSON event stream.
//!
//! ```sh
//! cargo run --release --example simulation_server
//! ```
//!
//! The same exchange works from a shell against a long-lived server:
//!
//! ```sh
//! curl -s -d '{"graph": {"family": "gnp", "n": 200, "p": 0.04},
//!              "protocol": "mis", "seeds": [1, 2, 3]}' \
//!      http://127.0.0.1:4915/jobs
//! curl -sN http://127.0.0.1:4915/jobs/1/events
//! ```

use stoneage_server::client::{request, EventStream};
use stoneage_server::{Server, ServerConfig};
use stoneage_wire::parse;

fn main() {
    let server = Server::start(ServerConfig::default()).expect("bind loopback");
    let addr = server.addr().to_string();
    println!("simulation server listening on http://{addr}");

    // Submit: MIS on G(200, 8/n), three seeds, streaming a round event
    // every 5 rounds and checkpointing every 10.
    let spec = br#"{"graph": {"family": "gnp", "n": 200, "p": 0.04, "seed": 11},
                    "protocol": "mis", "seeds": [1, 2, 3],
                    "events_every": 5, "checkpoint_every": 10}"#;
    let created = request(&addr, "POST", "/jobs", spec).expect("submit");
    assert_eq!(created.status, 201, "submit failed: {created:?}");
    let id = created.json()["id"].as_i64().expect("job id");
    println!("submitted job {id}");

    // Tail the chunked NDJSON stream until the job reaches a terminal
    // state (the server closes the stream for us).
    let mut stream = EventStream::open(&addr, &format!("/jobs/{id}/events")).expect("stream");
    while let Some(line) = stream.next_line().expect("stream read") {
        let event = parse(&line).expect("event is JSON");
        match event["type"].as_str().unwrap_or("?") {
            "round" => println!(
                "  seed {} round {:>3}: {} nodes undecided",
                event["seed"], event["round"], event["undecided"]
            ),
            "seed_done" => println!(
                "  seed {} done in {} rounds, {} messages, fingerprint {}",
                event["seed"],
                event["rounds"],
                event["messages"],
                event["fingerprint"].as_str().unwrap_or("?")
            ),
            "checkpoint" => println!(
                "  checkpoint at round {} (seed {})",
                event["boundary"], event["seed"]
            ),
            other => println!("  [{other}] {line}"),
        }
    }

    // The status document has the same results, queryable after the fact.
    let status = request(&addr, "GET", &format!("/jobs/{id}"), &[]).expect("status");
    let doc = status.json();
    assert_eq!(doc["state"], "done", "job did not finish: {doc}");
    println!(
        "job {id} finished; {} per-seed results recorded",
        doc["results"].as_array().map(<[_]>::len).unwrap_or(0)
    );

    // Scrape the Prometheus metrics before shutting down.
    let metrics = request(&addr, "GET", "/metrics", &[]).expect("metrics");
    let text = String::from_utf8(metrics.body).expect("utf-8");
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }

    server.shutdown();
    println!("server drained and stopped");
}
