//! The paper's biological motivation, made concrete: **cell
//! differentiation as MIS**, à la Afek et al.'s observation that the
//! fly's nervous-system development (SOP selection) solves maximal
//! independent set.
//!
//! Cells are points in a tissue (unit square); two cells interact when
//! closer than a signalling radius (a unit-disk graph). Each cell runs
//! the *same* seven-state stone-age machine, communicating by "protein
//! levels" (letters, sensed by one-two-many counting with b = 1). Cells
//! that WIN differentiate into sensory precursors; their neighbors are
//! inhibited — no cell ids, no counting beyond "none vs some".
//!
//! ```sh
//! cargo run --release --example cell_differentiation
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage::graph::{generators, validate};
use stoneage::protocols::{decode_mis, MisProtocol};
use stoneage::sim::Simulation;

fn main() {
    let cells = 400;
    let radius = 0.07;
    let mut rng = SmallRng::seed_from_u64(2026);
    let tissue: Vec<(f64, f64)> = (0..cells)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let g = generators::unit_disk_from_points(&tissue, radius);
    println!(
        "tissue: {cells} cells, signalling radius {radius}: {} interactions, max contacts {}",
        g.edge_count(),
        g.max_degree()
    );

    let out = Simulation::sync(&MisProtocol::new(), &g)
        .seed(11)
        .run()
        .expect("differentiation terminates");
    let sop = decode_mis(&out.outputs);
    assert!(validate::is_maximal_independent_set(&g, &sop));
    let chosen = sop.iter().filter(|&&x| x).count();
    println!(
        "{chosen} cells differentiated (SOP) in {} signalling rounds — \
         every cell is a SOP or touches one, and no two SOPs touch ✓",
        out.rounds().unwrap()
    );

    // ASCII rendering of the tissue: '●' differentiated, '·' inhibited.
    let grid = 40usize;
    let mut canvas = vec![vec![' '; grid]; grid];
    for (i, &(x, y)) in tissue.iter().enumerate() {
        let (cx, cy) = (
            ((x * grid as f64) as usize).min(grid - 1),
            ((y * grid as f64) as usize).min(grid - 1),
        );
        let mark = if sop[i] { '#' } else { '.' };
        // Differentiated cells win the pixel.
        if canvas[cy][cx] != '#' {
            canvas[cy][cx] = mark;
        }
    }
    println!("\ntissue map ('#' = differentiated, '.' = inhibited):");
    for row in canvas {
        println!("{}", row.into_iter().collect::<String>());
    }
}
