//! 3-coloring an undirected tree with the Section 5 protocol, and racing
//! it against Cole–Vishkin (which needs a *directed* tree and log-bit
//! identifiers).
//!
//! ```sh
//! cargo run --release --example tree_coloring
//! ```

use stoneage::baselines::cole_vishkin;
use stoneage::graph::{generators, validate};
use stoneage::protocols::{decode_coloring, ColoringProtocol};
use stoneage::sim::Simulation;

fn main() {
    for n in [256usize, 4096, 65536] {
        let g = generators::random_tree(n, 5);
        let out = Simulation::sync(&ColoringProtocol::new(), &g)
            .seed(3)
            .budget(10_000_000)
            .run()
            .expect("Theorem 5.4: terminates with probability 1");
        let colors = decode_coloring(&out.outputs);
        assert!(validate::is_proper_k_coloring(&g, &colors, 3));

        let cv = cole_vishkin::cole_vishkin_3color(&g, 0);
        assert!(validate::is_proper_k_coloring(&g, &cv.colors, 3));

        let histogram = (0..3)
            .map(|c| colors.iter().filter(|&&x| x == c).count())
            .collect::<Vec<_>>();
        println!(
            "n = {n:>6}: stone-age {:>4} rounds (O(log n)) | Cole–Vishkin {:>2} rounds (O(log* n)) | colors used {histogram:?}",
            out.rounds().unwrap(), cv.rounds,
        );
    }
    println!();
    println!("the gap is the price of constant-size messages on *undirected*");
    println!("trees — Kothapalli et al. prove Ω(log n) there, so the stone-age");
    println!("protocol is asymptotically optimal in its model.");

    // A small tree, drawn with its colors.
    let g = generators::kary_tree(15, 2);
    let out = Simulation::sync(&ColoringProtocol::new(), &g)
        .seed(1)
        .run()
        .unwrap();
    let colors = decode_coloring(&out.outputs);
    println!(
        "\ncomplete binary tree on 15 nodes, colored in {} rounds:",
        out.rounds().unwrap()
    );
    let mut level_start = 0usize;
    let mut width = 1usize;
    while level_start < 15 {
        let level: Vec<String> = (level_start..(level_start + width).min(15))
            .map(|v| format!("{}:{}", v, colors[v]))
            .collect();
        println!("  {}", level.join("  "));
        level_start += width;
        width *= 2;
    }
}
