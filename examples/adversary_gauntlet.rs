//! The asynchronous gauntlet: compile the MIS protocol through both of the
//! paper's black-box transformations (Theorem 3.4 then Theorem 3.1) and
//! run it under every adversarial scheduling policy in the standard panel.
//!
//! The adversary controls every step length `L_{v,t}` and every delivery
//! delay `D_{v,t,u}`; ports have no buffers, so messages are overwritten
//! and lost — and the synchronizer shrugs it all off.
//!
//! ```sh
//! cargo run --release --example adversary_gauntlet
//! ```

use stoneage::core::{SingleLetter, Synchronized};
use stoneage::graph::{generators, validate};
use stoneage::protocols::{decode_mis, MisProtocol};
use stoneage::sim::adversary::standard_panel;
use stoneage::sim::Simulation;

fn main() {
    let n = 32;
    let g = generators::gnp(n, 4.0 / n as f64, 5);
    println!(
        "graph: G({n}, 4/n), {} edges; protocol: MIS → SingleLetter (Thm 3.4) → Synchronized (Thm 3.1)",
        g.edge_count()
    );

    let sync_rounds = Simulation::sync(&MisProtocol::new(), &g)
        .seed(3)
        .run()
        .unwrap()
        .rounds()
        .unwrap();
    println!("synchronous reference: {sync_rounds} rounds\n");

    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    println!(
        "compiled alphabet: {} letters (|Σ̂| = 3(|Σ|+1)², |Σ| = 7)\n",
        pipeline.alphabet_size()
    );

    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>10}  result",
        "adversary", "time units", "steps", "deliveries", "lost"
    );
    for adv in standard_panel(17) {
        let out = Simulation::asynchronous(&pipeline, &g, &adv)
            .seed(9)
            .run()
            .expect("Theorem 3.1: terminates under every policy")
            .into_async_outcome()
            .expect("async backend");
        let mis = decode_mis(&out.outputs);
        let ok = validate::is_maximal_independent_set(&g, &mis);
        println!(
            "{:<14} {:>12.1} {:>10} {:>12} {:>10}  {}",
            adv.name(),
            out.normalized_time,
            out.total_steps,
            out.deliveries,
            out.lost_overwrites,
            if ok { "valid MIS ✓" } else { "INVALID ✗" }
        );
        assert!(ok);
    }
    println!("\nall policies produced valid maximal independent sets.");
    println!("note the 'lost' column: under straggler policies the no-buffer");
    println!("port semantics really does drop messages — correctness survives");
    println!("because the synchronizer's pausing feature waits them out.");
}
