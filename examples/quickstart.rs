//! Quickstart: run the paper's MIS protocol on a random graph, validate
//! the result, and peek at the tournament machinery.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stoneage::graph::{generators, validate};
use stoneage::protocols::{decode_mis, mis::analysis::MisObserver, MisProtocol};
use stoneage::sim::{AdaptSync, Simulation};

fn main() {
    let n = 500;
    let g = generators::gnp(n, 8.0 / n as f64, 42);
    println!(
        "graph: G({n}, 8/n) with {} edges, max degree {}",
        g.edge_count(),
        g.max_degree()
    );

    // Run the seven-state, b = 1 MIS machine of the paper's Figure 1 on
    // the synchronous backend, with an observer recording tournaments
    // (legacy observers plug into the unified builder via AdaptSync).
    let protocol = MisProtocol::new();
    let mut observer = AdaptSync(MisObserver::new(n));
    let out = Simulation::sync(&protocol, &g)
        .seed(7)
        .observe(&mut observer)
        .run()
        .expect("the MIS protocol terminates with probability 1");
    let observer = observer.0;

    let mis = decode_mis(&out.outputs);
    let size = mis.iter().filter(|&&x| x).count();
    assert!(
        validate::is_maximal_independent_set(&g, &mis),
        "every output configuration must be an MIS (paper, Section 2)"
    );
    let rounds = out.rounds().unwrap();
    println!(
        "MIS of {size} nodes in {rounds} rounds ({} messages) — valid ✓",
        out.messages_sent().unwrap()
    );
    println!(
        "rounds / log²n = {:.2}  (Theorem 4.5: O(log² n))",
        rounds as f64 / (n as f64).log2().powi(2)
    );

    // Tournament telemetry: lengths are Geom(1/2) + 2 distributed.
    let mut lengths: Vec<u32> = (0..n)
        .flat_map(|v| observer.tournament_lengths(v))
        .collect();
    lengths.sort_unstable();
    let mean = lengths.iter().map(|&x| x as f64).sum::<f64>() / lengths.len() as f64;
    println!(
        "{} tournaments, mean length {mean:.2} (theory: 4.0), max {}",
        lengths.len(),
        lengths.last().unwrap()
    );

    // Edge decay across the virtual graphs G^i (Lemma 4.3).
    let counts = observer.edge_counts(&g);
    print!("|E^i| per tournament:");
    for c in counts.iter().take(8) {
        print!(" {c}");
    }
    println!("{}", if counts.len() > 8 { " …" } else { "" });
}
