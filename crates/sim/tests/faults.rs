//! Differential and determinism tests for the message-fault subsystem
//! (`stoneage_sim::faults`).
//!
//! The contract under test, from strongest to weakest:
//!
//! 1. **Decisions are positional, not sequential.** A fault decision is
//!    a pure hash of `(plan stream, receiver slot, time index, rule
//!    index)`, so the same plan reproduces the same injections under any
//!    evaluation order: serial ≡ every worker count × round mode
//!    (`parallel` feature), and a double run is bit-identical.
//! 2. **Empty plan ≡ fault-free engine.** Wiring in a rule-less plan is
//!    bit-identical to not calling `with_faults` at all on all three
//!    backends, and reports an all-zero summary.
//! 3. **Rate-1 rules have exact closed-form effects.** `drop_rate(1.0)`
//!    silences every channel; `corrupt_rate(1.0, l)` rewrites every
//!    delivery; `duplicate_rate(1.0, k)` multiplies every observed count
//!    `k+1`-fold under the async model's per-delivery counting.
//! 4. **Invalid plans are typed `ExecError::Config`**, never a panic or
//!    a silently ignored rule.
//! 5. **Checkpoint/resume mid-plan is bit-identical** — the tally rides
//!    in the snapshot and the positional decisions need no replay.
//! 6. **Pinned fingerprints.** A recorded fault panel guards against
//!    silent drift in the decision hash or the injection semantics.

use proptest::prelude::*;
use stoneage_core::{AsMulti, Letter, Synchronized};
use stoneage_graph::{generators, Graph, TopologyEvent};
use stoneage_sim::adversary::UniformRandom;
use stoneage_sim::{
    AsyncOptions, Backend, ChurnPlan, ExecError, FaultPlan, FaultSummary, LinkFault, Observer,
    SchedulerKind, Simulation, Snapshot, SyncOutcome,
};
use stoneage_testkit::{
    async_fingerprint, count_neighbors, count_neighbors_quiet, fault_fingerprint, random_beeper,
    run_fault_pinned, scoped_fingerprint, sync_fingerprint, Poke, FAULT_PINNED_CASES,
};

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(120, 0.06, 3)),
        ("tree", generators::random_tree(150, 11)),
        ("grid", generators::grid(10, 12)),
    ]
}

/// A mixed plan exercising every fault kind plus a per-edge override on
/// the first edge of `g`.
fn plan_for(g: &Graph, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed)
        .drop_rate(0.06)
        .duplicate_rate(0.05, 2)
        .corrupt_rate(0.04, Letter(0));
    if let Some((u, v)) = first_edge(g) {
        plan = plan.on_edge(u, v, LinkFault::Drop, 0.5);
    }
    plan
}

fn first_edge(g: &Graph) -> Option<(u32, u32)> {
    (0..g.node_count() as u32).find_map(|u| g.neighbors(u).first().map(|&v| (u, v)))
}

/// A duplicates-only plan for the asynchronous legs. Drops and corrupts
/// can legitimately starve a synchronizer forever (a silent decided
/// node never retransmits its dropped final pulse — see
/// `async_fault_kinds_have_model_level_effects`), so the async
/// differential cells inject only liveness-safe duplicates, with a
/// per-edge rule to exercise the per-channel gating.
fn async_plan_for(g: &Graph, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed).duplicate_rate(0.25, 2);
    if let Some((u, v)) = first_edge(g) {
        plan = plan.on_edge(u, v, LinkFault::Duplicate(1), 0.5);
    }
    plan
}

fn run_sync_faulted(
    protocol: &AsMulti<stoneage_core::TableProtocol>,
    g: &Graph,
    seed: u64,
    plan: &FaultPlan,
) -> (SyncOutcome, FaultSummary) {
    let outcome = Simulation::sync(protocol, g)
        .seed(seed)
        .with_faults(plan)
        .run()
        .expect("faulted runs terminate");
    let summary = *outcome.faults().expect("plan was set");
    (outcome.into_sync_outcome().expect("sync backend"), summary)
}

/// Contract 2: the rule-less plan is bit-identical to the fault-free
/// engine on all three backends, and its summary is exactly zero.
#[test]
fn empty_plan_is_bit_identical_to_fault_free_engine() {
    let empty = FaultPlan::new(99);
    for (name, g) in graph_family() {
        let sync_p = AsMulti(random_beeper(4, 2));
        let (with, summary) = run_sync_faulted(&sync_p, &g, 7, &empty);
        let without = Simulation::sync(&sync_p, &g)
            .seed(7)
            .run()
            .unwrap()
            .into_sync_outcome()
            .unwrap();
        assert_eq!(
            sync_fingerprint(&with),
            sync_fingerprint(&without),
            "{name}: sync"
        );
        assert_eq!(summary, FaultSummary::default(), "{name}: zero summary");

        let poke = Poke::new();
        let with = Simulation::scoped(&poke, &g)
            .seed(7)
            .with_faults(&empty)
            .run()
            .unwrap()
            .into_scoped_outcome()
            .unwrap();
        let without = Simulation::scoped(&poke, &g)
            .seed(7)
            .run()
            .unwrap()
            .into_scoped_outcome()
            .unwrap();
        assert_eq!(
            scoped_fingerprint(&with),
            scoped_fingerprint(&without),
            "{name}: scoped"
        );

        // A wired plan forces the heap scheduler, so the fault-free
        // reference is the explicit heap backend (heap ≡ wheel is the
        // async suite's own contract).
        let async_p = Synchronized::new(count_neighbors_quiet(2));
        let adv = UniformRandom { seed: 5 };
        let with = Simulation::asynchronous(&async_p, &g, &adv)
            .seed(7)
            .with_faults(&empty)
            .run()
            .unwrap()
            .into_async_outcome()
            .unwrap();
        let without = Simulation::asynchronous(&async_p, &g, &adv)
            .seed(7)
            .backend(Backend::Async(
                AsyncOptions::new(&adv).with_scheduler(SchedulerKind::BinaryHeap),
            ))
            .run()
            .unwrap()
            .into_async_outcome()
            .unwrap();
        assert_eq!(
            async_fingerprint(&with),
            async_fingerprint(&without),
            "{name}: async (vs heap scheduler)"
        );
    }
}

/// Contract 1 (weak form): a faulted run is a pure function of its
/// configuration — two identical invocations agree bit for bit, and the
/// plan actually fires.
#[test]
fn faulted_runs_are_deterministic_on_all_backends() {
    for (name, g) in graph_family() {
        let plan = plan_for(&g, 1000);
        let sync_p = AsMulti(random_beeper(4, 2));
        let (a, sa) = run_sync_faulted(&sync_p, &g, 3, &plan);
        let (b, sb) = run_sync_faulted(&sync_p, &g, 3, &plan);
        assert_eq!(
            fault_fingerprint(&a, &sa),
            fault_fingerprint(&b, &sb),
            "{name}: sync"
        );
        assert!(sa.injected() > 0, "{name}: plan never fired");
        assert!(sa.evaluated >= sa.injected(), "{name}: tally sanity");

        let poke = Poke::new();
        let run_scoped = || {
            let outcome = Simulation::scoped(&poke, &g)
                .seed(3)
                .with_faults(&plan)
                .run()
                .expect("faulted runs terminate");
            let summary = *outcome.faults().expect("plan was set");
            (outcome.into_scoped_outcome().unwrap(), summary)
        };
        let (a, sa) = run_scoped();
        let (b, sb) = run_scoped();
        assert_eq!(
            scoped_fingerprint(&a),
            scoped_fingerprint(&b),
            "{name}: scoped"
        );
        assert_eq!(sa, sb, "{name}: scoped summaries");

        let async_p = Synchronized::new(count_neighbors_quiet(2));
        let adv = UniformRandom { seed: 13 };
        let aplan = async_plan_for(&g, 1000);
        let run_async = || {
            let outcome = Simulation::asynchronous(&async_p, &g, &adv)
                .seed(3)
                .with_faults(&aplan)
                .run()
                .expect("faulted runs terminate");
            let summary = *outcome.faults().expect("plan was set");
            (outcome.into_async_outcome().unwrap(), summary)
        };
        let (a, sa) = run_async();
        let (b, sb) = run_async();
        assert_eq!(
            async_fingerprint(&a),
            async_fingerprint(&b),
            "{name}: async"
        );
        assert_eq!(sa, sb, "{name}: async summaries");
        assert!(sa.injected() > 0, "{name}: async plan never fired");
    }
}

/// Contract 1: faults compose with churn, deterministically, and both
/// summaries surface on the same outcome.
#[test]
fn faults_compose_with_churn_deterministically() {
    for (name, g) in graph_family() {
        let churn = ChurnPlan::random(&g, 21, 6, 5)
            .at(1, TopologyEvent::Crash(0))
            .at(3, TopologyEvent::Restart(0));
        let fplan = plan_for(&g, 2000);
        let sync_p = AsMulti(random_beeper(4, 2));
        let run = || {
            let outcome = Simulation::sync(&sync_p, &g)
                .seed(5)
                .with_churn(&churn)
                .with_faults(&fplan)
                .run()
                .expect("terminates");
            let cs = outcome.churn().expect("churn set").clone();
            let fs = *outcome.faults().expect("faults set");
            (outcome.into_sync_outcome().unwrap(), cs, fs)
        };
        let (a, ca, fa) = run();
        let (b, cb, fb) = run();
        assert_eq!(sync_fingerprint(&a), sync_fingerprint(&b), "{name}: sync");
        assert_eq!(ca, cb, "{name}: churn summaries");
        assert_eq!(fa, fb, "{name}: fault summaries");

        let async_p = Synchronized::new(count_neighbors_quiet(2));
        let adv = UniformRandom { seed: 17 };
        let aplan = async_plan_for(&g, 2000);
        let run = || {
            let outcome = Simulation::asynchronous(&async_p, &g, &adv)
                .seed(5)
                .with_churn(&churn)
                .with_faults(&aplan)
                .run()
                .expect("terminates");
            let fs = *outcome.faults().expect("faults set");
            (outcome.into_async_outcome().unwrap(), fs)
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(
            async_fingerprint(&a),
            async_fingerprint(&b),
            "{name}: async"
        );
        assert_eq!(fa, fb, "{name}: async fault summaries");
    }
}

/// Contract 3, drop: with every channel silenced, the quiet-σ₀ counter
/// hears nothing — every port still holds `quiet` when the count is
/// taken, so every node outputs `1 + f_b(0) = 1`. (The quiet variant is
/// essential: `count_neighbors`' σ₀ *is* the beep letter, so dropped
/// deliveries are indistinguishable from delivered ones on pristine
/// lockstep ports.)
#[test]
fn total_drop_silences_every_channel() {
    let g = generators::cycle(8);
    let p = AsMulti(count_neighbors_quiet(3));
    let plan = FaultPlan::new(7).drop_rate(1.0);
    let (out, summary) = run_sync_faulted(&p, &g, 0, &plan);
    assert!(out.outputs.iter().all(|&o| o == 1), "{:?}", out.outputs);
    assert_eq!(summary.dropped, summary.evaluated);
    assert_eq!(summary.dropped, 16, "one beep per directed cycle edge");
}

/// Contract 3, corrupt: rewriting every beep into the same letter the
/// protocol counts leaves the outcome identical (a corruption the
/// receiver cannot distinguish), while the tally records every rewrite.
#[test]
fn total_corrupt_to_same_letter_is_observably_identity() {
    let g = generators::cycle(8);
    let p = AsMulti(count_neighbors(3));
    let plan = FaultPlan::new(7).corrupt_rate(1.0, Letter(0));
    let (out, summary) = run_sync_faulted(&p, &g, 0, &plan);
    let clean = Simulation::sync(&p, &g)
        .seed(0)
        .run()
        .unwrap()
        .into_sync_outcome()
        .unwrap();
    assert_eq!(out.outputs, clean.outputs);
    assert_eq!(summary.corrupted, summary.evaluated);
}

/// Contract 3, corrupt under a two-letter alphabet: rewriting every
/// beep into the distinct `quiet` letter (= σ₀) silences the observed
/// counts on the lockstep backend.
#[test]
fn total_corrupt_to_quiet_silences_the_counts() {
    let g = generators::cycle(8);
    let p = AsMulti(count_neighbors_quiet(3));
    let plan = FaultPlan::new(7).corrupt_rate(1.0, Letter(1));
    let (out, summary) = run_sync_faulted(&p, &g, 0, &plan);
    assert!(out.outputs.iter().all(|&o| o == 1), "{:?}", out.outputs);
    assert_eq!(summary.corrupted, summary.evaluated);
}

/// Contract 3, duplicate: ports hold the *last* letter, so same-letter
/// duplicates are observably idempotent on the lockstep backend — the
/// outcome is bit-identical to the fault-free run while the tally
/// records every multiplied delivery.
#[test]
fn total_duplication_is_idempotent_on_lockstep_ports() {
    let g = generators::cycle(8);
    let p = AsMulti(count_neighbors_quiet(3));
    let plan = FaultPlan::new(7).duplicate_rate(1.0, 2);
    let (out, summary) = run_sync_faulted(&p, &g, 0, &plan);
    let clean = Simulation::sync(&p, &g)
        .seed(0)
        .run()
        .unwrap()
        .into_sync_outcome()
        .unwrap();
    assert_eq!(sync_fingerprint(&out), sync_fingerprint(&clean));
    assert_eq!(summary.duplicated, summary.evaluated);
    assert!(summary.duplicated > 0);
}

/// Contract 3 on the async backend: total drop starves the synchronizer
/// (no node ever hears a neighbor's pulse), so the run exhausts its
/// event budget with a typed [`ExecError::EventLimit`] — and duplicates
/// enqueue real extra deliveries (visible in the delivery counter)
/// without perturbing what the ports resolve to.
#[test]
fn async_fault_kinds_have_model_level_effects() {
    let g = generators::cycle(8);
    let p = Synchronized::new(count_neighbors_quiet(2));
    let adv = UniformRandom { seed: 3 };

    let drop_all = FaultPlan::new(7).drop_rate(1.0);
    let err = Simulation::asynchronous(&p, &g, &adv)
        .seed(0)
        .budget(30_000)
        .with_faults(&drop_all)
        .run()
        .expect_err("a fully severed network cannot synchronize");
    assert!(matches!(err, ExecError::EventLimit { .. }), "{err}");

    let dup_all = FaultPlan::new(7).duplicate_rate(1.0, 2);
    let outcome = Simulation::asynchronous(&p, &g, &adv)
        .seed(0)
        .with_faults(&dup_all)
        .run()
        .unwrap();
    let summary = *outcome.faults().unwrap();
    let dup = outcome.into_async_outcome().unwrap();
    let clean = Simulation::asynchronous(&p, &g, &adv)
        .seed(0)
        .backend(Backend::Async(
            AsyncOptions::new(&adv).with_scheduler(SchedulerKind::BinaryHeap),
        ))
        .run()
        .unwrap()
        .into_async_outcome()
        .unwrap();
    assert_eq!(summary.duplicated, summary.evaluated);
    assert!(summary.duplicated > 0);
    assert!(
        dup.deliveries > clean.deliveries,
        "duplicates must surface as extra deliveries ({} vs {})",
        dup.deliveries,
        clean.deliveries
    );
}

/// Contract 4: every malformed plan surfaces as a typed
/// [`ExecError::Config`] at build time, on the builder path.
#[test]
fn invalid_plans_are_typed_config_errors() {
    let g = generators::cycle(4);
    let p = AsMulti(count_neighbors(3));
    let run = |plan: &FaultPlan| {
        Simulation::sync(&p, &g)
            .seed(0)
            .with_faults(plan)
            .run()
            .expect_err("invalid plan must be rejected")
    };
    for plan in [
        FaultPlan::new(1).drop_rate(1.5),
        FaultPlan::new(1).drop_rate(-0.1),
        FaultPlan::new(1).drop_rate(f64::NAN),
        FaultPlan::new(1).corrupt_rate(0.5, Letter(99)),
        FaultPlan::new(1).duplicate_rate(0.5, 0),
        FaultPlan::new(1).on_edge(0, 2, LinkFault::Drop, 0.5), // not a cycle edge
        FaultPlan::new(1).on_edge(0, 9, LinkFault::Drop, 0.5), // out of range
        FaultPlan::new(1).on_edge(1, 1, LinkFault::Drop, 0.5), // self-loop
    ] {
        assert!(matches!(run(&plan), ExecError::Config { .. }));
    }
}

/// Contract 6: pinned fault fingerprints. Recorded when the subsystem
/// landed; a fixed (case, seed) cell must reproduce its hash forever. If
/// a deliberate semantics change invalidates them, re-derive with
/// `cargo run -p stoneage-bench --bin fingerprint` and justify in the
/// commit message.
#[test]
fn pinned_fault_fingerprints() {
    let mut drift = Vec::new();
    for (i, (name, seed)) in FAULT_PINNED_CASES.iter().enumerate() {
        let (out, summary) = run_fault_pinned(name, *seed);
        let got = fault_fingerprint(&out, &summary);
        let want = PINNED_FAULTS[i].2;
        if got != want {
            drift.push(format!("(\"{name}\", {seed}, {got:#018x}) != {want:#018x}"));
        }
    }
    assert!(
        drift.is_empty(),
        "pinned fault fingerprints changed:\n{}",
        drift.join("\n")
    );
}

const PINNED_FAULTS: [(&str, u64, u64); 4] = [
    ("gnp-drop", 1, 0xa2cc399741c5a9a1),
    ("gnp-mixed", 2, 0x96263f5d4382abac),
    ("tree-corrupt", 3, 0x94d40135c0c953f7),
    ("grid-dup", 5, 0x58c4295750acb7a8),
];

/// Collects every checkpoint frame the run hands out.
#[derive(Default)]
struct Collect {
    snaps: Vec<Snapshot>,
}

impl<S> Observer<S> for Collect {
    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.snaps.push(snapshot.clone());
    }
}

/// Contract 5 on the lockstep backends: resume from every mid-plan frame
/// (including through the byte round-trip) lands on the uninterrupted
/// outcome and the final tally.
#[test]
fn lockstep_resume_mid_fault_plan_is_bit_identical() {
    let g = generators::gnp(60, 0.08, 5);
    let plan = plan_for(&g, 3000);

    let p = AsMulti(count_neighbors(3));
    let full = Simulation::sync(&p, &g)
        .seed(7)
        .with_faults(&plan)
        .run()
        .unwrap();
    let want = format!("{:?} | {:?}", full.outputs, full.faults());
    let mut obs = Collect::default();
    let out = Simulation::sync(&p, &g)
        .seed(7)
        .with_faults(&plan)
        .checkpoint_every(1)
        .observe(&mut obs)
        .run()
        .unwrap();
    assert_eq!(
        format!("{:?} | {:?}", out.outputs, out.faults()),
        want,
        "sync: cadence perturbed the run"
    );
    assert!(!obs.snaps.is_empty());
    for snap in &obs.snaps {
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
        let resumed = Simulation::sync(&p, &g)
            .seed(7)
            .with_faults(&plan)
            .resume_from(&decoded)
            .run()
            .unwrap();
        assert_eq!(
            format!("{:?} | {:?}", resumed.outputs, resumed.faults()),
            want,
            "sync: resume at boundary {} diverged",
            snap.boundary()
        );
    }

    let poke = Poke::new();
    let full = Simulation::scoped(&poke, &g)
        .seed(7)
        .with_faults(&plan)
        .run()
        .unwrap();
    let want = format!("{:?} | {:?}", full.outputs, full.faults());
    let mut obs = Collect::default();
    Simulation::scoped(&poke, &g)
        .seed(7)
        .with_faults(&plan)
        .checkpoint_every(1)
        .observe(&mut obs)
        .run()
        .unwrap();
    assert!(!obs.snaps.is_empty());
    for snap in &obs.snaps {
        let resumed = Simulation::scoped(&poke, &g)
            .seed(7)
            .with_faults(&plan)
            .resume_from(snap)
            .run()
            .unwrap();
        assert_eq!(
            format!("{:?} | {:?}", resumed.outputs, resumed.faults()),
            want,
            "scoped: resume at boundary {} diverged",
            snap.boundary()
        );
    }
}

/// One async-backend builder cell for the mid-plan resume matrix. A
/// free function (not a closure) so every call picks fresh borrow
/// lifetimes.
fn mk_async_faulted<'a>(
    p: &'a Synchronized<stoneage_core::TableProtocol>,
    g: &'a Graph,
    adv: &'a UniformRandom,
    fplan: &'a FaultPlan,
    churn: Option<&'a ChurnPlan>,
) -> Simulation<'a, Synchronized<stoneage_core::TableProtocol>> {
    let mut b = Simulation::asynchronous(p, g, adv)
        .seed(5)
        .with_faults(fplan);
    if let Some(plan) = churn {
        b = b.with_churn(plan);
    }
    b
}

/// Contract 5 on the async backend, with and without churn composed in.
#[test]
fn async_resume_mid_fault_plan_is_bit_identical() {
    let g = generators::gnp(40, 0.1, 3);
    let p = Synchronized::new(count_neighbors_quiet(2));
    let adv = UniformRandom { seed: 11 };
    let fplan = async_plan_for(&g, 4000);
    let churn = ChurnPlan::random(&g, 23, 5, 4)
        .at(1, TopologyEvent::Crash(0))
        .at(3, TopologyEvent::Restart(0));
    for churn in [None, Some(&churn)] {
        let full = mk_async_faulted(&p, &g, &adv, &fplan, churn).run().unwrap();
        let want = format!("{:?} | {:?} | {:?}", full.outputs, full.faults(), full.cost);
        let steps = full.clone().into_async_outcome().unwrap().total_steps;
        let mut obs = Collect::default();
        mk_async_faulted(&p, &g, &adv, &fplan, churn)
            .checkpoint_every((steps / 4).max(1))
            .observe(&mut obs)
            .run()
            .unwrap();
        assert!(!obs.snaps.is_empty(), "churn={}", churn.is_some());
        for snap in &obs.snaps {
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            let resumed = mk_async_faulted(&p, &g, &adv, &fplan, churn)
                .resume_from(&decoded)
                .run()
                .unwrap();
            assert_eq!(
                format!(
                    "{:?} | {:?} | {:?}",
                    resumed.outputs,
                    resumed.faults(),
                    resumed.cost
                ),
                want,
                "churn={}: resume at boundary {} diverged",
                churn.is_some(),
                snap.boundary()
            );
        }
    }
}

/// A frame captured under one fault plan refuses to resume under a
/// different plan (or none): the plan is folded into the config digest.
#[test]
fn resume_under_a_different_fault_plan_is_rejected() {
    let g = generators::gnp(30, 0.12, 5);
    let p = AsMulti(count_neighbors(3));
    let plan = FaultPlan::new(1).drop_rate(0.1);
    let mut obs = Collect::default();
    Simulation::sync(&p, &g)
        .seed(7)
        .with_faults(&plan)
        .checkpoint_every(1)
        .observe(&mut obs)
        .run()
        .unwrap();
    let snap = obs.snaps.first().expect("at least one frame").clone();

    // Same plan resumes fine.
    assert!(Simulation::sync(&p, &g)
        .seed(7)
        .with_faults(&plan)
        .resume_from(&snap)
        .run()
        .is_ok());
    // No plan: rejected.
    assert!(matches!(
        Simulation::sync(&p, &g).seed(7).resume_from(&snap).run(),
        Err(ExecError::Snapshot(_))
    ));
    // Different seed: rejected.
    let other = FaultPlan::new(2).drop_rate(0.1);
    assert!(matches!(
        Simulation::sync(&p, &g)
            .seed(7)
            .with_faults(&other)
            .resume_from(&snap)
            .run(),
        Err(ExecError::Snapshot(_))
    ));
    // Different rate bits: rejected.
    let other = FaultPlan::new(1).drop_rate(0.1000001);
    assert!(matches!(
        Simulation::sync(&p, &g)
            .seed(7)
            .with_faults(&other)
            .resume_from(&snap)
            .run(),
        Err(ExecError::Snapshot(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1 over random instances and random plans: a faulted run
    /// reproduces itself, and the tally's components always sum
    /// consistently.
    #[test]
    fn faulted_runs_reproduce_on_random_instances(
        n in 2usize..60,
        pr in 0.0f64..0.35,
        gseed in 0u64..300,
        fseed in 0u64..300,
        seed in 0u64..300,
        drop in 0.0f64..0.3,
        dup in 0.0f64..0.3,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let plan = FaultPlan::new(fseed)
            .drop_rate(drop)
            .duplicate_rate(dup, 1)
            .corrupt_rate(0.05, Letter(0));
        let protocol = AsMulti(random_beeper(4, 2));
        let (a, sa) = run_sync_faulted(&protocol, &g, seed, &plan);
        let (b, sb) = run_sync_faulted(&protocol, &g, seed, &plan);
        prop_assert_eq!(fault_fingerprint(&a, &sa), fault_fingerprint(&b, &sb));
        prop_assert!(sa.injected() <= sa.evaluated);
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use stoneage_sim::{MergeStrategy, ParallelPolicy};
    use stoneage_testkit::{adversarial_worker_counts as worker_counts, round_modes};

    fn run_sync_faulted_par(
        protocol: &AsMulti<stoneage_core::TableProtocol>,
        g: &Graph,
        seed: u64,
        plan: &FaultPlan,
        policy: &ParallelPolicy,
    ) -> (SyncOutcome, FaultSummary) {
        let outcome = Simulation::sync(protocol, g)
            .seed(seed)
            .with_faults(plan)
            .parallel(*policy)
            .run()
            .expect("faulted runs terminate");
        let summary = *outcome.faults().expect("plan was set");
        (outcome.into_sync_outcome().expect("sync backend"), summary)
    }

    /// Contract 1 (strong form): the full adversarial matrix — worker
    /// counts × round modes — reproduces the serial faulted outcome bit
    /// for bit, on both lockstep backends, with and without churn.
    #[test]
    fn parallel_faulted_matrix_matches_serial() {
        let sync_p = AsMulti(random_beeper(5, 2));
        let poke = Poke::new();
        for (name, g) in graph_family() {
            for seed in 0..2 {
                let plan = plan_for(&g, 5000 + seed);
                let (serial_sync, serial_sync_sum) = run_sync_faulted(&sync_p, &g, seed, &plan);
                let serial_scoped = Simulation::scoped(&poke, &g)
                    .seed(seed)
                    .with_faults(&plan)
                    .run()
                    .unwrap();
                let serial_scoped_sum = *serial_scoped.faults().unwrap();
                let serial_scoped = serial_scoped.into_scoped_outcome().unwrap();
                for workers in worker_counts() {
                    for round in round_modes() {
                        let policy =
                            ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                                .with_round(round);
                        let ctx = format!("{name}/seed{seed}/w{workers}/{round:?}");
                        let (p_out, p_sum) =
                            run_sync_faulted_par(&sync_p, &g, seed, &plan, &policy);
                        assert_eq!(
                            sync_fingerprint(&p_out),
                            sync_fingerprint(&serial_sync),
                            "{ctx}: sync"
                        );
                        assert_eq!(p_sum, serial_sync_sum, "{ctx}: sync summary");
                        let s_out = Simulation::scoped(&poke, &g)
                            .seed(seed)
                            .with_faults(&plan)
                            .parallel(policy)
                            .run()
                            .unwrap();
                        let s_sum = *s_out.faults().unwrap();
                        let s_out = s_out.into_scoped_outcome().unwrap();
                        assert_eq!(
                            scoped_fingerprint(&s_out),
                            scoped_fingerprint(&serial_scoped),
                            "{ctx}: scoped"
                        );
                        assert_eq!(s_sum, serial_scoped_sum, "{ctx}: scoped summary");
                    }
                }
            }
        }
    }

    /// Faults + churn + the parallel matrix: every cell matches the
    /// serial composed engine.
    #[test]
    fn parallel_faults_compose_with_churn() {
        let sync_p = AsMulti(random_beeper(4, 2));
        for (name, g) in graph_family() {
            let churn = ChurnPlan::random(&g, 21, 6, 5)
                .at(1, TopologyEvent::Crash(0))
                .at(3, TopologyEvent::Restart(0));
            let fplan = plan_for(&g, 6000);
            let run = |policy: Option<ParallelPolicy>| {
                let mut b = Simulation::sync(&sync_p, &g)
                    .seed(5)
                    .with_churn(&churn)
                    .with_faults(&fplan);
                if let Some(pol) = policy {
                    b = b.parallel(pol);
                }
                let outcome = b.run().expect("terminates");
                let cs = outcome.churn().unwrap().clone();
                let fs = *outcome.faults().unwrap();
                (outcome.into_sync_outcome().unwrap(), cs, fs)
            };
            let (want, want_cs, want_fs) = run(None);
            for workers in worker_counts() {
                for round in round_modes() {
                    let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                        .with_round(round);
                    let (got, cs, fs) = run(Some(policy));
                    let ctx = format!("{name}/w{workers}/{round:?}");
                    assert_eq!(sync_fingerprint(&got), sync_fingerprint(&want), "{ctx}");
                    assert_eq!(cs, want_cs, "{ctx}: churn summary");
                    assert_eq!(fs, want_fs, "{ctx}: fault summary");
                }
            }
        }
    }

    /// The parallel path reproduces the pinned fault fingerprints at
    /// every worker count and in both round modes.
    #[test]
    fn parallel_reproduces_pinned_fault_fingerprints() {
        for (i, (name, seed)) in FAULT_PINNED_CASES.iter().enumerate() {
            let (g, p, plan) = stoneage_testkit::fault_pinned_case(name);
            let p = AsMulti(p);
            for workers in worker_counts() {
                for round in round_modes() {
                    let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                        .with_round(round);
                    let (out, summary) = run_sync_faulted_par(&p, &g, *seed, &plan, &policy);
                    assert_eq!(
                        fault_fingerprint(&out, &summary),
                        super::PINNED_FAULTS[i].2,
                        "{name}/seed{seed}/w{workers}/{round:?}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random instances × random plans × the parallel matrix: every
        /// cell matches the serial faulted engine.
        #[test]
        fn parallel_faulted_matches_serial_on_random_instances(
            n in 2usize..50,
            pr in 0.0f64..0.3,
            gseed in 0u64..200,
            fseed in 0u64..200,
            seed in 0u64..200,
            widx in 0usize..4,
            fused in 0usize..2,
        ) {
            let g = generators::gnp(n, pr, gseed);
            let plan = FaultPlan::new(fseed)
                .drop_rate(0.08)
                .duplicate_rate(0.06, 2)
                .corrupt_rate(0.05, Letter(0));
            let protocol = AsMulti(random_beeper(4, 2));
            let workers = worker_counts()[widx % worker_counts().len()];
            let round = round_modes()[fused];
            let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                .with_round(round);
            let (a, sa) = run_sync_faulted(&protocol, &g, seed, &plan);
            let (b, sb) = run_sync_faulted_par(&protocol, &g, seed, &plan, &policy);
            prop_assert_eq!(fault_fingerprint(&a, &sa), fault_fingerprint(&b, &sb));
        }
    }
}
