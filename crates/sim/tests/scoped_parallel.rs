//! Differential tests for the parallel scoped (port-select) executor.
//!
//! The contract under test: `run_scoped_parallel` — chunked fused
//! phase 1 + 2a over `std::thread::scope` workers, sharded-write-buffer
//! merge per `stoneage_sim::parbuf` — produces outcomes **bit-identical
//! per seed** to the serial `run_scoped`, including the full
//! scoped-delivery witness transcript (order and all), across graph
//! families, adversarial worker counts, and both merge strategies.
//! Compiled only with the `parallel` feature.

#![cfg(feature = "parallel")]

use proptest::prelude::*;
use stoneage_graph::{generators, Graph};
use stoneage_sim::{
    ExecError, MergeStrategy, ParallelPolicy, RoundMode, ScopedMultiFsm, ScopedOutcome, Simulation,
};
use stoneage_testkit::harness::run_scoped;
use stoneage_testkit::{
    adversarial_worker_counts as worker_counts, round_modes, scoped_fingerprint, Poke,
};

/// Builder-backed twin of the legacy `run_scoped_parallel` (default
/// policy).
fn run_scoped_parallel<P>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
) -> Result<ScopedOutcome, ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    run_scoped_parallel_with_policy(
        protocol,
        graph,
        seed,
        max_rounds,
        &ParallelPolicy::default(),
    )
}

/// Builder-backed twin of the legacy `run_scoped_parallel_with_policy`.
fn run_scoped_parallel_with_policy<P>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
    policy: &ParallelPolicy,
) -> Result<ScopedOutcome, ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::scoped(protocol, graph)
        .seed(seed)
        .budget(max_rounds)
        .parallel(*policy)
        .run()
        .map(|o| o.into_scoped_outcome().expect("scoped backend"))
}

fn assert_same_outcome(
    ctx: &str,
    par: Result<ScopedOutcome, ExecError>,
    serial: Result<ScopedOutcome, ExecError>,
) {
    match (par, serial) {
        (Ok(p), Ok(s)) => {
            assert_eq!(p.outputs, s.outputs, "{ctx}: outputs diverge");
            assert_eq!(p.rounds, s.rounds, "{ctx}: rounds diverge");
            assert_eq!(
                p.scoped_deliveries, s.scoped_deliveries,
                "{ctx}: delivery transcripts diverge"
            );
            assert_eq!(
                scoped_fingerprint(&p),
                scoped_fingerprint(&s),
                "{ctx}: fingerprints diverge"
            );
        }
        (Err(p), Err(s)) => assert_eq!(p, s, "{ctx}: errors diverge"),
        (p, s) => panic!("{ctx}: outcome kinds diverge: parallel {p:?} vs serial {s:?}"),
    }
}

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(120, 0.06, 3)),
        ("gnp-dense", generators::gnp(50, 0.3, 17)),
        ("tree", generators::random_tree(150, 11)),
        ("grid", generators::grid(10, 12)),
        ("star", generators::star(40)),
        ("complete", generators::complete(25)),
        ("empty", Graph::empty(20)),
    ]
}

/// The auto policy (hardware workers, serial fallback on small graphs)
/// must be indistinguishable from the serial engine.
#[test]
fn auto_parallel_matches_serial() {
    for (name, g) in graph_family() {
        for seed in 0..4 {
            assert_same_outcome(
                &format!("auto/{name}/seed{seed}"),
                run_scoped_parallel(&Poke::new(), &g, seed, 100),
                run_scoped(&Poke::new(), &g, seed, 100),
            );
        }
    }
}

/// Forced worker counts × merge strategies × round modes on every
/// family: each cell of the matrix runs the real chunked phases and
/// buffered merge (no serial fallback) and must reproduce the serial
/// outcome — outputs, rounds, and the exact scoped-delivery transcript.
/// The one-join `Fused` pipeline (deferred phase 2b on per-worker plane
/// shards) is pitted against the two-join `Joined` oracle by sharing
/// the serial expectation.
#[test]
fn forced_worker_matrix_matches_serial() {
    for (name, g) in graph_family() {
        for seed in 10..13 {
            let serial = run_scoped(&Poke::new(), &g, seed, 100);
            for workers in worker_counts() {
                for merge in [
                    MergeStrategy::DestinationSharded,
                    MergeStrategy::BufferReplay,
                ] {
                    for round in round_modes() {
                        let policy = ParallelPolicy::forced(workers, merge).with_round(round);
                        assert_same_outcome(
                            &format!("matrix/{name}/seed{seed}/w{workers}/{merge:?}/{round:?}"),
                            run_scoped_parallel_with_policy(&Poke::new(), &g, seed, 100, &policy),
                            serial.clone(),
                        );
                    }
                }
            }
        }
    }
}

/// Above the small-graph fallback floor the auto path genuinely runs the
/// chunked machinery — and must still match the serial engine, in both
/// round modes.
#[test]
fn chunked_path_matches_serial_on_large_graph() {
    let g = generators::gnp(6000, 8.0 / 6000.0, 5);
    for seed in 0..2 {
        assert_same_outcome(
            &format!("large/seed{seed}"),
            run_scoped_parallel(&Poke::new(), &g, seed, 100),
            run_scoped(&Poke::new(), &g, seed, 100),
        );
        let fused = ParallelPolicy::default().with_round(RoundMode::Fused);
        assert_same_outcome(
            &format!("large-fused/seed{seed}"),
            run_scoped_parallel_with_policy(&Poke::new(), &g, seed, 100, &fused),
            run_scoped(&Poke::new(), &g, seed, 100),
        );
    }
}

/// Round-limit errors must agree too (the spinning phase of Poke cannot
/// spin, so cap the budget below its round count on a path).
#[test]
fn round_limit_is_identical() {
    let g = generators::gnp(80, 0.1, 2);
    for max_rounds in [1u64, 2] {
        for workers in worker_counts() {
            for round in round_modes() {
                let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                    .with_round(round);
                assert_same_outcome(
                    &format!("limit{max_rounds}/w{workers}/{round:?}"),
                    run_scoped_parallel_with_policy(&Poke::new(), &g, 1, max_rounds, &policy),
                    run_scoped(&Poke::new(), &g, 1, max_rounds),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential property over random instances, seeds, worker
    /// counts, merge strategies, and round modes: the forced parallel
    /// scoped executor is bit-identical to the serial one — fingerprint
    /// equality covers outputs, rounds, and the whole delivery
    /// transcript.
    #[test]
    fn parallel_matches_serial_on_random_instances(
        n in 2usize..60,
        pr in 0.0f64..0.4,
        gseed in 0u64..300,
        seed in 0u64..300,
        widx in 0usize..4,
        sharded in 0usize..2,
        fused in 0usize..2,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let workers = worker_counts()[widx % worker_counts().len()];
        let merge = if sharded == 1 {
            MergeStrategy::DestinationSharded
        } else {
            MergeStrategy::BufferReplay
        };
        let round = if fused == 1 { RoundMode::Fused } else { RoundMode::Joined };
        let policy = ParallelPolicy::forced(workers, merge).with_round(round);
        let par = run_scoped_parallel_with_policy(&Poke::new(), &g, seed, 100, &policy);
        let serial = run_scoped(&Poke::new(), &g, seed, 100);
        match (par, serial) {
            (Ok(p), Ok(s)) => {
                prop_assert_eq!(scoped_fingerprint(&p), scoped_fingerprint(&s));
                prop_assert_eq!(p.outputs, s.outputs);
                prop_assert_eq!(p.scoped_deliveries, s.scoped_deliveries);
            }
            (p, s) => prop_assert!(false, "outcome kinds diverge: {:?} vs {:?}", p, s),
        }
    }
}
