//! Differential suite for the work-stealing chunk scheduler.
//!
//! The contract under test: `ChunkScheduler::Stealing` — fine-grained
//! chunk descriptors on per-shard deques, shard-to-worker pinning,
//! steal-from-the-longest-victim when dry — produces outcomes
//! **bit-identical per seed** to both the static schedule and the serial
//! engine, under both round modes, both merge strategies, churn, message
//! faults, and snapshot resume. The uniform families keep the matrix
//! honest; the skewed families (`power_law`, `hub_and_spoke`) are the
//! graphs the scheduler exists for, where hub chunks actually migrate.
//! Compiled only with the `parallel` feature.

#![cfg(feature = "parallel")]

use proptest::prelude::*;
use stoneage_core::{AsMulti, TableProtocol};
use stoneage_graph::{generators, Graph, TopologyEvent};
use stoneage_sim::parbuf::ShardPlan;
use stoneage_sim::{
    ChurnPlan, FaultPlan, MergeStrategy, Observer, Outcome, ParallelPolicy, RoundMode, Simulation,
    Snapshot,
};
use stoneage_testkit::{
    adversarial_worker_counts as worker_counts, chunk_schedulers, churn_fingerprint,
    count_neighbors, fault_fingerprint, random_beeper, round_modes, scoped_fingerprint,
    skewed_graph_family, sync_fingerprint, Poke,
};

type SyncP = AsMulti<TableProtocol>;

/// Uniform oracle families plus the skewed families the scheduler
/// targets.
fn graph_family() -> Vec<(&'static str, Graph)> {
    let mut family = vec![
        ("gnp", generators::gnp(120, 0.06, 3)),
        ("tree", generators::random_tree(150, 11)),
        ("grid", generators::grid(10, 12)),
    ];
    family.extend(skewed_graph_family());
    family
}

/// A stealing policy cell of the matrix.
fn stealing(workers: usize, merge: MergeStrategy, round: RoundMode) -> ParallelPolicy {
    ParallelPolicy::forced(workers, merge)
        .with_round(round)
        .with_stealing()
}

fn run_sync(p: &SyncP, g: &Graph, seed: u64, policy: Option<&ParallelPolicy>) -> Outcome<SyncP> {
    let mut b = Simulation::sync(p, g).seed(seed);
    if let Some(policy) = policy {
        b = b.parallel(*policy);
    }
    b.run().expect("sync runs terminate")
}

fn run_scoped(g: &Graph, seed: u64, policy: Option<&ParallelPolicy>) -> Outcome<Poke> {
    let poke = Poke::new();
    let mut b = Simulation::scoped(&poke, g).seed(seed).budget(100);
    if let Some(policy) = policy {
        b = b.parallel(*policy);
    }
    b.run().expect("scoped runs terminate")
}

/// Sync backend: `stealing ≡ static ≡ serial` across every family ×
/// adversarial worker count × merge strategy × round mode. Fingerprints
/// cover outputs, rounds, and message counts; the steal counters are
/// deliberately *not* compared (they are timing-dependent).
#[test]
fn sync_stealing_matrix_matches_serial() {
    let p = AsMulti(count_neighbors(3));
    for (name, g) in graph_family() {
        for seed in 1..3u64 {
            let serial = run_sync(&p, &g, seed, None)
                .into_sync_outcome()
                .expect("sync backend");
            for workers in worker_counts() {
                for merge in [
                    MergeStrategy::DestinationSharded,
                    MergeStrategy::BufferReplay,
                ] {
                    for round in round_modes() {
                        let policy = stealing(workers, merge, round);
                        let par = run_sync(&p, &g, seed, Some(&policy))
                            .into_sync_outcome()
                            .expect("sync backend");
                        let ctx = format!("{name}/seed{seed}/w{workers}/{merge:?}/{round:?}");
                        assert_eq!(par.outputs, serial.outputs, "{ctx}: outputs diverge");
                        assert_eq!(
                            sync_fingerprint(&par),
                            sync_fingerprint(&serial),
                            "{ctx}: fingerprints diverge"
                        );
                    }
                }
            }
        }
    }
}

/// Scoped backend: the full delivery-witness transcript (order and all)
/// must survive chunk migration — per-chunk witnesses are re-absorbed in
/// ascending chunk order, which this matrix pins against the serial
/// sender order. The randomized `random_beeper`-style draws inside
/// `Poke` also pin the per-node RNG streams across schedules.
#[test]
fn scoped_stealing_matrix_matches_serial() {
    for (name, g) in graph_family() {
        for seed in 10..12u64 {
            let serial = run_scoped(&g, seed, None)
                .into_scoped_outcome()
                .expect("scoped backend");
            for workers in worker_counts() {
                for merge in [
                    MergeStrategy::DestinationSharded,
                    MergeStrategy::BufferReplay,
                ] {
                    for round in round_modes() {
                        let policy = stealing(workers, merge, round);
                        let par = run_scoped(&g, seed, Some(&policy))
                            .into_scoped_outcome()
                            .expect("scoped backend");
                        let ctx = format!("{name}/seed{seed}/w{workers}/{merge:?}/{round:?}");
                        assert_eq!(par.outputs, serial.outputs, "{ctx}: outputs diverge");
                        assert_eq!(
                            par.scoped_deliveries, serial.scoped_deliveries,
                            "{ctx}: delivery transcripts diverge"
                        );
                        assert_eq!(
                            scoped_fingerprint(&par),
                            scoped_fingerprint(&serial),
                            "{ctx}: fingerprints diverge"
                        );
                    }
                }
            }
        }
    }
}

/// Stealing composes with churn: crash/restart/edge events on a skewed
/// graph, parallel-stealing vs serial, hashed down to outputs, applied
/// event tallies, and the final live set.
#[test]
fn stealing_composes_with_churn() {
    let p = AsMulti(random_beeper(5, 2));
    for (name, g) in graph_family() {
        let plan = ChurnPlan::random(&g, 31, 10, 8)
            .at(1, TopologyEvent::Crash(0))
            .at(3, TopologyEvent::Restart(0));
        for seed in 3..5u64 {
            let serial = Simulation::sync(&p, &g)
                .seed(seed)
                .with_churn(&plan)
                .run()
                .expect("serial churn terminates");
            let serial_sum = serial.churn().expect("churn plan was set").clone();
            let serial_out = serial.into_sync_outcome().expect("sync backend");
            for workers in [2, 7] {
                for round in round_modes() {
                    let policy = stealing(workers, MergeStrategy::DestinationSharded, round);
                    let par = Simulation::sync(&p, &g)
                        .seed(seed)
                        .with_churn(&plan)
                        .parallel(policy)
                        .run()
                        .expect("stealing churn terminates");
                    let par_sum = par.churn().expect("churn plan was set").clone();
                    let par_out = par.into_sync_outcome().expect("sync backend");
                    assert_eq!(
                        churn_fingerprint(&par_out, &par_sum),
                        churn_fingerprint(&serial_out, &serial_sum),
                        "{name}/seed{seed}/w{workers}/{round:?}: churn fingerprints diverge"
                    );
                }
            }
        }
    }
}

/// Stealing composes with message faults: the per-channel fault
/// decisions (drop/duplicate/corrupt draws) must not move when chunks
/// migrate between workers.
#[test]
fn stealing_composes_with_faults() {
    let p = AsMulti(count_neighbors(3));
    let plan = FaultPlan::new(101)
        .drop_rate(0.08)
        .duplicate_rate(0.04, 2)
        .corrupt_rate(0.03, stoneage_core::Letter(0));
    for (name, g) in graph_family() {
        for seed in 6..8u64 {
            let serial = Simulation::sync(&p, &g)
                .seed(seed)
                .with_faults(&plan)
                .run()
                .expect("serial faulted run terminates");
            let serial_sum = *serial.faults().expect("fault plan was set");
            let serial_out = serial.into_sync_outcome().expect("sync backend");
            for workers in [2, 7] {
                for round in round_modes() {
                    let policy = stealing(workers, MergeStrategy::DestinationSharded, round);
                    let par = Simulation::sync(&p, &g)
                        .seed(seed)
                        .with_faults(&plan)
                        .parallel(policy)
                        .run()
                        .expect("stealing faulted run terminates");
                    let par_sum = *par.faults().expect("fault plan was set");
                    let par_out = par.into_sync_outcome().expect("sync backend");
                    assert_eq!(
                        fault_fingerprint(&par_out, &par_sum),
                        fault_fingerprint(&serial_out, &serial_sum),
                        "{name}/seed{seed}/w{workers}/{round:?}: fault fingerprints diverge"
                    );
                }
            }
        }
    }
}

/// Collects every checkpoint frame the run hands out.
#[derive(Default)]
struct Collect {
    snaps: Vec<Snapshot>,
}

impl<S> Observer<S> for Collect {
    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.snaps.push(snapshot.clone());
    }
}

/// Frames captured on the serial and static-parallel paths resume under
/// the stealing schedule (and vice versa) onto the uninterrupted
/// outcome — the scheduler is a perf knob, excluded from the config
/// digest exactly like worker count and round mode.
#[test]
fn snapshots_resume_across_schedulers() {
    let p = AsMulti(count_neighbors(3));
    let (_, g) = skewed_graph_family().remove(0);
    let want = {
        let full = run_sync(&p, &g, 7, None);
        format!("{:?} | {:?} | {:?}", full.outputs, full.states, full.cost)
    };

    // Capture frames under each scheduler...
    for capture in chunk_schedulers() {
        let mut obs = Collect::default();
        let policy =
            ParallelPolicy::forced(2, MergeStrategy::DestinationSharded).with_scheduler(capture);
        Simulation::sync(&p, &g)
            .seed(7)
            .parallel(policy)
            .checkpoint_every(1)
            .observe(&mut obs)
            .run()
            .expect("checkpointed run terminates");
        assert!(!obs.snaps.is_empty(), "no frames captured");
        // ...and resume every frame under the *other* scheduler and both
        // round modes.
        for snap in &obs.snaps {
            for resume in chunk_schedulers() {
                for round in round_modes() {
                    let policy = ParallelPolicy::forced(3, MergeStrategy::DestinationSharded)
                        .with_round(round)
                        .with_scheduler(resume);
                    let resumed = Simulation::sync(&p, &g)
                        .seed(7)
                        .parallel(policy)
                        .resume_from(snap)
                        .run()
                        .expect("resume terminates");
                    let got = format!(
                        "{:?} | {:?} | {:?}",
                        resumed.outputs, resumed.states, resumed.cost
                    );
                    assert_eq!(
                        got,
                        want,
                        "capture={capture:?} resume={resume:?}/{round:?} at boundary {} diverged",
                        snap.boundary()
                    );
                }
            }
        }
    }
}

/// The steal counters surface on `Outcome`: the static schedule reports
/// all-zero, the stealing schedule reports the (deterministic) chunk
/// count, and on a hub-and-spoke graph with more than one worker chunks
/// genuinely execute. `steals` itself is timing-dependent, so the test
/// only pins its zero-on-static contract.
#[test]
fn steal_counters_surface_on_outcome() {
    let p = AsMulti(count_neighbors(3));
    let (_, g) = skewed_graph_family().remove(1); // hub-and-spoke
    let static_policy = ParallelPolicy::forced(4, MergeStrategy::DestinationSharded);
    let out = run_sync(&p, &g, 1, Some(&static_policy));
    // CI's stealing leg (`STONEAGE_SCHEDULER=stealing`) overrides every
    // policy, including this one — the zero-on-static contract only
    // holds when the policy actually resolves to the static schedule.
    if static_policy.resolve_scheduler() == stoneage_sim::ChunkScheduler::Static {
        assert_eq!(out.steals.steals, 0, "static schedule cannot steal");
        assert_eq!(out.steals.chunks, 0, "static schedule has no descriptors");
    } else {
        assert!(out.steals.chunks > 0, "overridden run executed no chunks");
    }

    let stealing_policy = static_policy.with_stealing();
    let a = run_sync(&p, &g, 1, Some(&stealing_policy));
    assert!(a.steals.chunks > 0, "stealing run executed no chunks");
    assert!(
        a.steals.steals <= a.steals.chunks,
        "stolen chunks are a subset of executed chunks"
    );
    // The chunk count is a pure function of graph, workers, and rounds —
    // only the steal tally may move between runs.
    let b = run_sync(&p, &g, 1, Some(&stealing_policy));
    assert_eq!(
        a.steals.chunks, b.steals.chunks,
        "chunk count must be deterministic"
    );
    assert_eq!(a.outputs, b.outputs, "outputs must be deterministic");

    // Serial runs report the zero default.
    let serial = run_sync(&p, &g, 1, None);
    assert_eq!(serial.steals, stoneage_sim::StealStats::default());
}

/// The documented churn contract of the planner (see
/// `churn::run_parallel_churn`): the shard plan is built **once** over
/// the closed universe CSR and stays valid for the whole run — churn
/// patches toggle letters and tombstones inside the fixed layout, never
/// the slot counts the planner balances on. Pinned here as (a) full
/// coverage of the universe including crashed/extra-edge nodes and (b)
/// rebuild determinism: re-planning at any later boundary would
/// reproduce the identical bounds, so skipping the re-plan is free.
#[test]
fn churn_patches_leave_shard_plan_valid() {
    let g = generators::power_law(200, 2, 0.85, 11);
    let plan = ChurnPlan::random(&g, 31, 10, 8)
        .at(1, TopologyEvent::Crash(0))
        .at(3, TopologyEvent::Restart(0));
    let universe = plan.universe(&g).expect("universe closes");
    for workers in [1, 2, 4, 7] {
        let bounds = ShardPlan::new(&universe, workers);
        assert_eq!(*bounds.bounds().first().unwrap(), 0);
        assert_eq!(
            *bounds.bounds().last().unwrap(),
            universe.node_count(),
            "w{workers}: plan must cover every universe node, live or not"
        );
        assert!(
            bounds.bounds().windows(2).all(|w| w[0] <= w[1]),
            "w{workers}: bounds must ascend"
        );
        assert_eq!(
            bounds.bounds(),
            ShardPlan::new(&universe, workers).bounds(),
            "w{workers}: re-planning over the immutable universe CSR must be a no-op"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential property over random instances with the scheduler as
    /// an explicit dimension: every (graph, seed, workers, merge, round,
    /// scheduler) cell reproduces the serial scoped outcome bit-for-bit,
    /// witness transcript included.
    #[test]
    fn stealing_matches_serial_on_random_instances(
        n in 2usize..60,
        pr in 0.0f64..0.4,
        gseed in 0u64..300,
        seed in 0u64..300,
        widx in 0usize..4,
        fused in 0usize..2,
        steal in 0usize..2,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let workers = worker_counts()[widx % worker_counts().len()];
        let round = if fused == 1 { RoundMode::Fused } else { RoundMode::Joined };
        let scheduler = chunk_schedulers()[steal];
        let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
            .with_round(round)
            .with_scheduler(scheduler);
        let par = run_scoped(&g, seed, Some(&policy))
            .into_scoped_outcome()
            .expect("scoped backend");
        let serial = run_scoped(&g, seed, None)
            .into_scoped_outcome()
            .expect("scoped backend");
        prop_assert_eq!(scoped_fingerprint(&par), scoped_fingerprint(&serial));
        prop_assert_eq!(par.outputs, serial.outputs);
        prop_assert_eq!(par.scoped_deliveries, serial.scoped_deliveries);
    }

    /// Same property on the skewed power-law family — small hubs, random
    /// attachment counts — where chunk migration actually happens.
    #[test]
    fn stealing_matches_serial_on_random_skewed_instances(
        n in 10usize..80,
        m in 1usize..4,
        gseed in 0u64..300,
        seed in 0u64..300,
        widx in 0usize..4,
        fused in 0usize..2,
    ) {
        let g = generators::power_law(n, m.min(n - 1), 0.9, gseed);
        let workers = worker_counts()[widx % worker_counts().len()];
        let round = if fused == 1 { RoundMode::Fused } else { RoundMode::Joined };
        let policy = ParallelPolicy::forced(workers, MergeStrategy::BufferReplay)
            .with_round(round)
            .with_stealing();
        let par = run_scoped(&g, seed, Some(&policy))
            .into_scoped_outcome()
            .expect("scoped backend");
        let serial = run_scoped(&g, seed, None)
            .into_scoped_outcome()
            .expect("scoped backend");
        prop_assert_eq!(scoped_fingerprint(&par), scoped_fingerprint(&serial));
        prop_assert_eq!(par.outputs, serial.outputs);
        prop_assert_eq!(par.scoped_deliveries, serial.scoped_deliveries);
    }
}
