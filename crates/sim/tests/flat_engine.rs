//! Equivalence and determinism tests for the flat delivery engine.
//!
//! The contract under test: the sync backend of
//! [`stoneage_sim::Simulation`] (flat CSR port
//! store, reverse-port-map deliveries, incremental observation counts,
//! undecided-node termination counter) produces outcomes **bit-identical
//! per seed** to the naive pre-flat executor preserved in
//! [`stoneage_sim::reference`] — across graph families, protocols
//! (deterministic and randomized), and failure modes (round-limit).
//! A pinned snapshot additionally guards against silent drift in future
//! engine changes, and the `parallel` feature path — chunked phase 1
//! *and* the sharded-write-buffer phase 2 of `stoneage_sim::parbuf` —
//! must match the serial engine exactly for every worker count and merge
//! strategy.
//!
//! The protocol builders, fnv1a hash, and pinned case instances live in
//! `stoneage-testkit` (shared with `tests/async_wheel.rs` and the
//! `stoneage-bench` fingerprint bin); the pinned hash *constants* stay
//! here so this suite fails on its own recorded numbers.

use proptest::prelude::*;
use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocol, TableProtocolBuilder, Transitions};
use stoneage_graph::{generators, Graph};
use stoneage_sim::{
    run_sync_reference, run_sync_reference_with_inputs, ExecError, SyncConfig, SyncOutcome,
};
use stoneage_testkit::harness::{run_sync, run_sync_with_inputs};
use stoneage_testkit::{count_neighbors, random_beeper, run_sync_pinned, sync_fingerprint};

/// Protocol that never reaches an output state (round-limit path).
fn spinner() -> TableProtocol {
    let alphabet = Alphabet::new(["x"]);
    let mut b = TableProtocolBuilder::new("spin", alphabet, 1, Letter(0));
    let s = b.add_state("s", Letter(0));
    b.add_input_state(s);
    b.set_transition_all(s, Transitions::det(s, Some(Letter(0))));
    b.build().unwrap()
}

fn assert_same_outcome(
    ctx: &str,
    flat: Result<SyncOutcome, ExecError>,
    reference: Result<SyncOutcome, ExecError>,
) {
    match (flat, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.outputs, r.outputs, "{ctx}: outputs diverge");
            assert_eq!(f.rounds, r.rounds, "{ctx}: rounds diverge");
            assert_eq!(
                f.messages_sent, r.messages_sent,
                "{ctx}: message counts diverge"
            );
        }
        (Err(f), Err(r)) => assert_eq!(f, r, "{ctx}: errors diverge"),
        (f, r) => panic!("{ctx}: outcome kinds diverge: flat {f:?} vs reference {r:?}"),
    }
}

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(150, 0.05, 3)),
        ("gnp-dense", generators::gnp(60, 0.3, 17)),
        ("tree", generators::random_tree(200, 11)),
        ("grid", generators::grid(12, 13)),
        ("star", generators::star(40)),
        ("empty", Graph::empty(25)),
    ]
}

#[test]
fn flat_engine_matches_reference_on_deterministic_protocol() {
    let p = AsMulti(count_neighbors(3));
    for (name, g) in graph_family() {
        for seed in 0..5 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_on_randomized_protocol() {
    let p = AsMulti(random_beeper(6, 2));
    for (name, g) in graph_family() {
        for seed in 40..46 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_on_round_limit() {
    let p = AsMulti(spinner());
    let g = generators::gnp(30, 0.2, 1);
    let config = SyncConfig {
        seed: 5,
        max_rounds: 20,
    };
    assert_same_outcome(
        "spinner",
        run_sync(&p, &g, &config),
        run_sync_reference(&p, &g, &config),
    );
}

#[test]
fn sparse_count_layout_matches_reference_executor() {
    // A beeper protocol over an alphabet padded past
    // `stoneage_sim::engine::SPARSE_SIGMA_THRESHOLD`, so the flat engine
    // runs its *sparse* per-node observation counts end-to-end. The naive
    // reference executor has no count layout at all, so agreement pins
    // sparse correctness through a whole execution, not just unit ops.
    let names: Vec<String> = (0..60).map(|i| format!("l{i}")).collect();
    let alphabet = Alphabet::new(names);
    let mut builder = TableProtocolBuilder::new("padded", alphabet, 2, Letter(59));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=2 {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    let p = AsMulti(builder.build().unwrap());
    for (name, g) in graph_family() {
        for seed in 20..23 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("sparse/{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_with_inputs() {
    let p = AsMulti(count_neighbors(2));
    let g = generators::random_tree(80, 4);
    let inputs = vec![0usize; 80];
    let config = SyncConfig::seeded(9);
    assert_same_outcome(
        "with-inputs",
        run_sync_with_inputs(&p, &g, &inputs, &config),
        run_sync_reference_with_inputs(&p, &g, &inputs, &config),
    );
}

/// Pinned end-to-end snapshot: these fingerprints were recorded when the
/// flat engine landed and must never change for a fixed seed — they pin
/// the "outputs are bit-identical per seed before/after" acceptance
/// criterion against future engine rewrites. If a deliberate
/// semantics-affecting change ever invalidates them, re-derive the
/// constants with `cargo run -p stoneage-bench --bin fingerprint` and
/// justify the change in the commit message.
#[test]
fn pinned_outcome_fingerprints() {
    let expected: [(&str, u64, u64); 6] = PINNED;
    let mut drift = Vec::new();
    for (name, seed, want) in expected {
        let got = sync_fingerprint(&run_sync_pinned(name, seed));
        if got != want {
            drift.push(format!("(\"{name}\", {seed}, {got:#018x}) != {want:#018x}"));
        }
    }
    assert!(
        drift.is_empty(),
        "pinned fingerprints changed:\n{}",
        drift.join("\n")
    );
}

const PINNED: [(&str, u64, u64); 6] = [
    ("gnp-count", 1, 0xc85fc85bcd116721),
    ("gnp-count2", 2, 0xcd6d79cac8f4bf07),
    ("tree-rbeep", 1, 0x46f361ad3970fc82),
    ("tree-rbeep", 2, 0x61aeeecf8ca512a2),
    ("grid-rbeep", 7, 0xb6d1c231dc733bc1),
    ("grid-rbeep", 8, 0x095411f9df84d0a0),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property: on arbitrary gnp instances and seeds, the
    /// flat engine and the reference engine agree exactly (which in turn
    /// exercises the incremental-count and reverse-port-map paths against
    /// the scan-and-search baseline every round).
    #[test]
    fn flat_matches_reference_on_random_instances(
        n in 1usize..70,
        p in 0.0f64..0.35,
        gseed in 0u64..400,
        seed in 0u64..400,
    ) {
        let g = generators::gnp(n, p, gseed);
        let protocol = AsMulti(random_beeper(4, 2));
        let config = SyncConfig::seeded(seed);
        let flat = run_sync(&protocol, &g, &config);
        let reference = run_sync_reference(&protocol, &g, &config);
        match (flat, reference) {
            (Ok(f), Ok(r)) => {
                prop_assert_eq!(f.outputs, r.outputs);
                prop_assert_eq!(f.rounds, r.rounds);
                prop_assert_eq!(f.messages_sent, r.messages_sent);
            }
            (f, r) => prop_assert!(false, "outcome kinds diverge: {:?} vs {:?}", f, r),
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use stoneage_core::MultiFsm;
    use stoneage_sim::{MergeStrategy, ParallelPolicy, RoundMode, Simulation};
    use stoneage_testkit::{adversarial_worker_counts as worker_counts, round_modes};

    /// Builder twin of the legacy `run_sync_parallel` (default policy).
    fn run_sync_parallel<P>(
        protocol: &P,
        graph: &Graph,
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .parallel(ParallelPolicy::default())
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_parallel_with_policy`.
    fn run_sync_parallel_with_policy<P>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
        policy: &ParallelPolicy,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .parallel(*policy)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Seed determinism of the auto `rayon`/`parallel` path: chunked
    /// phase 1 plus the sharded-buffer phase 2 must be indistinguishable
    /// from the serial engine for every seed.
    #[test]
    fn parallel_matches_serial_exactly() {
        for (name, g) in graph_family() {
            for seed in 100..104 {
                let config = SyncConfig::seeded(seed);
                let det = AsMulti(count_neighbors(2));
                assert_same_outcome(
                    &format!("par-det/{name}/seed{seed}"),
                    run_sync_parallel(&det, &g, &config),
                    run_sync(&det, &g, &config),
                );
                let rnd = AsMulti(random_beeper(5, 2));
                assert_same_outcome(
                    &format!("par-rnd/{name}/seed{seed}"),
                    run_sync_parallel(&rnd, &g, &config),
                    run_sync(&rnd, &g, &config),
                );
            }
        }
    }

    /// Forced worker counts × both merge strategies × both round modes,
    /// on graphs far below the serial-fallback floor: every cell of the
    /// matrix must reproduce the serial outcome bit for bit. This is the
    /// tentpole's differential guard — `DestinationSharded` is pitted
    /// against the `BufferReplay` oracle, and the one-join `Fused`
    /// pipeline against the two-join `Joined` oracle, by sharing the
    /// serial expectation.
    #[test]
    fn forced_worker_matrix_matches_serial() {
        let p = AsMulti(random_beeper(5, 2));
        for (name, g) in graph_family() {
            let inputs = vec![0usize; g.node_count()];
            for seed in 200..203 {
                let config = SyncConfig::seeded(seed);
                let serial = run_sync(&p, &g, &config);
                for workers in worker_counts() {
                    for merge in [
                        MergeStrategy::DestinationSharded,
                        MergeStrategy::BufferReplay,
                    ] {
                        for round in round_modes() {
                            let policy = ParallelPolicy::forced(workers, merge).with_round(round);
                            assert_same_outcome(
                                &format!("matrix/{name}/seed{seed}/w{workers}/{merge:?}/{round:?}"),
                                run_sync_parallel_with_policy(&p, &g, &inputs, &config, &policy),
                                serial.clone(),
                            );
                        }
                    }
                }
            }
        }
    }

    /// The parallel path also reproduces the pinned fingerprints — at
    /// every adversarial worker count and in both round modes, through
    /// the real buffered phase 2.
    #[test]
    fn parallel_reproduces_pinned_fingerprints() {
        use stoneage_graph::generators;
        let g = generators::gnp(120, 0.06, 9);
        let p = AsMulti(count_neighbors(3));
        let inputs = vec![0usize; g.node_count()];
        for workers in worker_counts() {
            for round in round_modes() {
                let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                    .with_round(round);
                let out =
                    run_sync_parallel_with_policy(&p, &g, &inputs, &SyncConfig::seeded(1), &policy)
                        .unwrap();
                assert_eq!(
                    sync_fingerprint(&out),
                    PINNED[0].2,
                    "workers {workers} / {round:?}"
                );
            }
        }
    }

    /// Above the small-graph fallback threshold (4096 nodes) the auto
    /// chunked path actually runs — and must still be bit-identical to
    /// the serial engine, in both round modes.
    #[test]
    fn parallel_chunked_path_matches_serial() {
        let g = generators::gnp(6000, 8.0 / 6000.0, 5);
        for seed in 0..3 {
            let config = SyncConfig::seeded(seed);
            let rnd = AsMulti(random_beeper(5, 2));
            assert_same_outcome(
                &format!("par-chunked/seed{seed}"),
                run_sync_parallel(&rnd, &g, &config),
                run_sync(&rnd, &g, &config),
            );
            let inputs = vec![0usize; g.node_count()];
            let fused = ParallelPolicy {
                round: RoundMode::Fused,
                ..ParallelPolicy::default()
            };
            assert_same_outcome(
                &format!("par-chunked-fused/seed{seed}"),
                run_sync_parallel_with_policy(&rnd, &g, &inputs, &config, &fused),
                run_sync(&rnd, &g, &config),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Differential property over random instances, seeds, worker
        /// counts, merge strategies, and round modes: the forced parallel
        /// sync engine is bit-identical to the serial engine (fingerprint
        /// equality covers outputs, rounds, and message counts).
        #[test]
        fn parallel_matches_serial_on_random_instances(
            n in 2usize..60,
            pr in 0.0f64..0.35,
            gseed in 0u64..300,
            seed in 0u64..300,
            widx in 0usize..4,
            sharded in 0usize..2,
            fused in 0usize..2,
        ) {
            let g = generators::gnp(n, pr, gseed);
            let protocol = AsMulti(random_beeper(4, 2));
            let config = SyncConfig::seeded(seed);
            let workers = worker_counts()[widx % worker_counts().len()];
            let merge = if sharded == 1 {
                MergeStrategy::DestinationSharded
            } else {
                MergeStrategy::BufferReplay
            };
            let round = if fused == 1 { RoundMode::Fused } else { RoundMode::Joined };
            let policy = ParallelPolicy::forced(workers, merge).with_round(round);
            let inputs = vec![0usize; n];
            let par = run_sync_parallel_with_policy(&protocol, &g, &inputs, &config, &policy);
            let serial = run_sync(&protocol, &g, &config);
            match (par, serial) {
                (Ok(p), Ok(s)) => {
                    prop_assert_eq!(sync_fingerprint(&p), sync_fingerprint(&s));
                    prop_assert_eq!(p.outputs, s.outputs);
                }
                (p, s) => prop_assert!(false, "outcome kinds diverge: {:?} vs {:?}", p, s),
            }
        }
    }
}
