//! Equivalence and determinism tests for the flat delivery engine.
//!
//! The contract under test: [`stoneage_sim::run_sync`] (flat CSR port
//! store, reverse-port-map deliveries, incremental observation counts,
//! undecided-node termination counter) produces outcomes **bit-identical
//! per seed** to the naive pre-flat executor preserved in
//! [`stoneage_sim::reference`] — across graph families, protocols
//! (deterministic and randomized), and failure modes (round-limit).
//! A pinned snapshot additionally guards against silent drift in future
//! engine changes, and the `parallel` feature path must match the serial
//! engine exactly.

use proptest::prelude::*;
use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocol, TableProtocolBuilder, Transitions};
use stoneage_graph::{generators, Graph};
use stoneage_sim::{
    run_sync, run_sync_reference, run_sync_reference_with_inputs, run_sync_with_inputs, ExecError,
    SyncConfig, SyncOutcome,
};

/// Deterministic protocol: beep once, then output 1 + f_b(#beeps).
fn count_neighbors(b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep"]);
    let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(0));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=b {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    builder.build().unwrap()
}

/// Randomized protocol: for `phases` rounds each node flips a coin
/// between beeping and staying silent (exercising the per-node RNG
/// streams), then outputs the truncated count of beeps it heard last.
fn random_beeper(phases: usize, b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "idle"]);
    let mut builder = TableProtocolBuilder::new("rbeep", alphabet, b, Letter(1));
    let states: Vec<_> = (0..phases)
        .map(|i| builder.add_state(format!("r{i}"), Letter(0)))
        .collect();
    builder.add_input_state(states[0]);
    for i in 0..phases {
        let next = if i + 1 < phases {
            states[i + 1]
        } else {
            states[i]
        };
        if i + 1 < phases {
            builder.set_transition_all(
                states[i],
                Transitions::uniform(vec![
                    (next, Some(Letter(0))),
                    (next, None),
                    (next, Some(Letter(1))),
                ]),
            );
        } else {
            for o in 0..=b {
                let out = builder.add_output_state(format!("out{o}"), Letter(0), o as u64);
                builder.set_transition(states[i], o, Transitions::det(out, None));
                builder.set_transition_all(out, Transitions::det(out, None));
            }
        }
    }
    builder.build().unwrap()
}

/// Protocol that never reaches an output state (round-limit path).
fn spinner() -> TableProtocol {
    let alphabet = Alphabet::new(["x"]);
    let mut b = TableProtocolBuilder::new("spin", alphabet, 1, Letter(0));
    let s = b.add_state("s", Letter(0));
    b.add_input_state(s);
    b.set_transition_all(s, Transitions::det(s, Some(Letter(0))));
    b.build().unwrap()
}

fn assert_same_outcome(
    ctx: &str,
    flat: Result<SyncOutcome, ExecError>,
    reference: Result<SyncOutcome, ExecError>,
) {
    match (flat, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.outputs, r.outputs, "{ctx}: outputs diverge");
            assert_eq!(f.rounds, r.rounds, "{ctx}: rounds diverge");
            assert_eq!(
                f.messages_sent, r.messages_sent,
                "{ctx}: message counts diverge"
            );
        }
        (Err(f), Err(r)) => assert_eq!(f, r, "{ctx}: errors diverge"),
        (f, r) => panic!("{ctx}: outcome kinds diverge: flat {f:?} vs reference {r:?}"),
    }
}

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(150, 0.05, 3)),
        ("gnp-dense", generators::gnp(60, 0.3, 17)),
        ("tree", generators::random_tree(200, 11)),
        ("grid", generators::grid(12, 13)),
        ("star", generators::star(40)),
        ("empty", Graph::empty(25)),
    ]
}

#[test]
fn flat_engine_matches_reference_on_deterministic_protocol() {
    let p = AsMulti(count_neighbors(3));
    for (name, g) in graph_family() {
        for seed in 0..5 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_on_randomized_protocol() {
    let p = AsMulti(random_beeper(6, 2));
    for (name, g) in graph_family() {
        for seed in 40..46 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_on_round_limit() {
    let p = AsMulti(spinner());
    let g = generators::gnp(30, 0.2, 1);
    let config = SyncConfig {
        seed: 5,
        max_rounds: 20,
    };
    assert_same_outcome(
        "spinner",
        run_sync(&p, &g, &config),
        run_sync_reference(&p, &g, &config),
    );
}

#[test]
fn sparse_count_layout_matches_reference_executor() {
    // A beeper protocol over an alphabet padded past
    // `stoneage_sim::engine::SPARSE_SIGMA_THRESHOLD`, so the flat engine
    // runs its *sparse* per-node observation counts end-to-end. The naive
    // reference executor has no count layout at all, so agreement pins
    // sparse correctness through a whole execution, not just unit ops.
    let names: Vec<String> = (0..60).map(|i| format!("l{i}")).collect();
    let alphabet = Alphabet::new(names);
    let mut builder = TableProtocolBuilder::new("padded", alphabet, 2, Letter(59));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=2 {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    let p = AsMulti(builder.build().unwrap());
    for (name, g) in graph_family() {
        for seed in 20..23 {
            let config = SyncConfig::seeded(seed);
            assert_same_outcome(
                &format!("sparse/{name}/seed{seed}"),
                run_sync(&p, &g, &config),
                run_sync_reference(&p, &g, &config),
            );
        }
    }
}

#[test]
fn flat_engine_matches_reference_with_inputs() {
    let p = AsMulti(count_neighbors(2));
    let g = generators::random_tree(80, 4);
    let inputs = vec![0usize; 80];
    let config = SyncConfig::seeded(9);
    assert_same_outcome(
        "with-inputs",
        run_sync_with_inputs(&p, &g, &inputs, &config),
        run_sync_reference_with_inputs(&p, &g, &inputs, &config),
    );
}

fn fnv1a(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn outcome_fingerprint(out: &SyncOutcome) -> u64 {
    fnv1a(
        out.rounds ^ (out.messages_sent << 20),
        out.outputs.iter().copied(),
    )
}

/// Pinned end-to-end snapshot: these fingerprints were recorded when the
/// flat engine landed and must never change for a fixed seed — they pin
/// the "outputs are bit-identical per seed before/after" acceptance
/// criterion against future engine rewrites. If a deliberate
/// semantics-affecting change ever invalidates them, re-derive the
/// constants with the debug helper below and justify the change in the
/// commit message.
#[test]
fn pinned_outcome_fingerprints() {
    let expected: [(&str, u64, u64); 6] = PINNED;
    let mut drift = Vec::new();
    for (name, seed, want) in expected {
        let got = fingerprint_for(name, seed);
        if got != want {
            drift.push(format!("(\"{name}\", {seed}, {got:#018x}) != {want:#018x}"));
        }
    }
    assert!(
        drift.is_empty(),
        "pinned fingerprints changed:\n{}",
        drift.join("\n")
    );
}

const PINNED: [(&str, u64, u64); 6] = [
    ("gnp-count", 1, 0xc85fc85bcd116721),
    ("gnp-count2", 2, 0xcd6d79cac8f4bf07),
    ("tree-rbeep", 1, 0x46f361ad3970fc82),
    ("tree-rbeep", 2, 0x61aeeecf8ca512a2),
    ("grid-rbeep", 7, 0xb6d1c231dc733bc1),
    ("grid-rbeep", 8, 0x095411f9df84d0a0),
];

fn fingerprint_for(name: &str, seed: u64) -> u64 {
    let out = match name {
        "gnp-count" => run_sync(
            &AsMulti(count_neighbors(3)),
            &generators::gnp(120, 0.06, 9),
            &SyncConfig::seeded(seed),
        ),
        "gnp-count2" => run_sync(
            &AsMulti(count_neighbors(2)),
            &generators::gnp(90, 0.1, 23),
            &SyncConfig::seeded(seed),
        ),
        "tree-rbeep" => run_sync(
            &AsMulti(random_beeper(5, 2)),
            &generators::random_tree(150, 21),
            &SyncConfig::seeded(seed),
        ),
        "grid-rbeep" => run_sync(
            &AsMulti(random_beeper(4, 3)),
            &generators::grid(10, 14),
            &SyncConfig::seeded(seed),
        ),
        other => panic!("unknown pinned case {other}"),
    }
    .expect("pinned cases terminate");
    outcome_fingerprint(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property: on arbitrary gnp instances and seeds, the
    /// flat engine and the reference engine agree exactly (which in turn
    /// exercises the incremental-count and reverse-port-map paths against
    /// the scan-and-search baseline every round).
    #[test]
    fn flat_matches_reference_on_random_instances(
        n in 1usize..70,
        p in 0.0f64..0.35,
        gseed in 0u64..400,
        seed in 0u64..400,
    ) {
        let g = generators::gnp(n, p, gseed);
        let protocol = AsMulti(random_beeper(4, 2));
        let config = SyncConfig::seeded(seed);
        let flat = run_sync(&protocol, &g, &config);
        let reference = run_sync_reference(&protocol, &g, &config);
        match (flat, reference) {
            (Ok(f), Ok(r)) => {
                prop_assert_eq!(f.outputs, r.outputs);
                prop_assert_eq!(f.rounds, r.rounds);
                prop_assert_eq!(f.messages_sent, r.messages_sent);
            }
            (f, r) => prop_assert!(false, "outcome kinds diverge: {:?} vs {:?}", f, r),
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use stoneage_sim::run_sync_parallel;

    /// Seed determinism of the `rayon`/`parallel` path: the chunked
    /// phase-1 execution must be indistinguishable from the serial
    /// engine for every seed.
    #[test]
    fn parallel_matches_serial_exactly() {
        for (name, g) in graph_family() {
            for seed in 100..104 {
                let config = SyncConfig::seeded(seed);
                let det = AsMulti(count_neighbors(2));
                assert_same_outcome(
                    &format!("par-det/{name}/seed{seed}"),
                    run_sync_parallel(&det, &g, &config),
                    run_sync(&det, &g, &config),
                );
                let rnd = AsMulti(random_beeper(5, 2));
                assert_same_outcome(
                    &format!("par-rnd/{name}/seed{seed}"),
                    run_sync_parallel(&rnd, &g, &config),
                    run_sync(&rnd, &g, &config),
                );
            }
        }
    }

    /// The parallel path also reproduces the pinned fingerprints.
    #[test]
    fn parallel_reproduces_pinned_fingerprints() {
        let out = run_sync_parallel(
            &AsMulti(count_neighbors(3)),
            &generators::gnp(120, 0.06, 9),
            &SyncConfig::seeded(1),
        )
        .unwrap();
        assert_eq!(outcome_fingerprint(&out), PINNED[0].2);
    }

    /// Above the small-graph fallback threshold (4096 nodes) the chunked
    /// `std::thread::scope` phase 1 actually runs — and must still be
    /// bit-identical to the serial engine.
    #[test]
    fn parallel_chunked_path_matches_serial() {
        let g = generators::gnp(6000, 8.0 / 6000.0, 5);
        for seed in 0..3 {
            let config = SyncConfig::seeded(seed);
            let rnd = AsMulti(random_beeper(5, 2));
            assert_same_outcome(
                &format!("par-chunked/seed{seed}"),
                run_sync_parallel(&rnd, &g, &config),
                run_sync(&rnd, &g, &config),
            );
        }
    }
}
