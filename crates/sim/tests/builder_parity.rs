//! Builder-parity suite: `Simulation::run()` is **bit-identical** to the
//! retired legacy `run_*` free functions.
//!
//! The legacy functions are gone (see the README migration table), so
//! parity is pinned the only way that survives their removal: against
//! **recorded fingerprint constants**. Every constant below was captured
//! from the legacy entry points while they still existed, then verified
//! unchanged against the builder — a builder regression that diverges
//! from the retired semantics moves a fingerprint and fails the suite.
//! The scheduler-differential and parallel-vs-serial tests additionally
//! pin the builder against its own independent engines, and the
//! `ExecError::Config` tests pin the builder's invalid-state reporting
//! (mismatched backend, zero budget, parallel policy on the Async
//! backend) — errors, not panics.

use proptest::prelude::*;
use stoneage_core::{AsMulti, Synchronized};
use stoneage_graph::{generators, Graph};
use stoneage_sim::adversary::{standard_panel, UniformRandom};
use stoneage_sim::{
    AsyncOptions, Backend, Cost, ExecError, SchedulerKind, Simulation, SyncObserver,
};
use stoneage_testkit::{
    async_fingerprint, count_neighbors, count_neighbors_quiet, fnv1a, random_beeper,
    scoped_fingerprint, sync_fingerprint, Poke,
};

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(90, 0.07, 5)),
        ("tree", generators::random_tree(120, 9)),
        ("grid", generators::grid(9, 11)),
    ]
}

/// Combined fingerprints over (protocol × graph family × seeds 0..4) of
/// the sync backend, recorded from the legacy `run_sync` entry point
/// before its removal. The builder must keep reproducing them forever.
const SYNC_LEGACY_PINNED: [(&str, u64); 2] = [
    ("count_neighbors(3)", 0x419bb613ae9b2325),
    ("random_beeper(5,2)", 0xf985923346c7f302),
];

#[test]
fn sync_builder_reproduces_legacy_pinned_fingerprints() {
    for (name, pinned) in SYNC_LEGACY_PINNED {
        let protocol = match name {
            "count_neighbors(3)" => count_neighbors(3),
            _ => random_beeper(5, 2),
        };
        let p = AsMulti(protocol);
        let mut prints = Vec::new();
        for (gname, g) in graph_family() {
            let inputs = vec![0usize; g.node_count()];
            for seed in 0..4 {
                let built = Simulation::sync(&p, &g)
                    .seed(seed)
                    .run()
                    .unwrap()
                    .into_sync_outcome()
                    .unwrap();
                // Explicit all-zero inputs are the documented default:
                // the two call shapes must not diverge.
                let built_inputs = Simulation::sync(&p, &g)
                    .seed(seed)
                    .inputs(&inputs)
                    .run()
                    .unwrap()
                    .into_sync_outcome()
                    .unwrap();
                assert_eq!(
                    sync_fingerprint(&built),
                    sync_fingerprint(&built_inputs),
                    "{name}/{gname}/seed{seed} (inputs)"
                );
                prints.push(sync_fingerprint(&built));
            }
        }
        assert_eq!(fnv1a(0, prints), pinned, "{name}");
    }
}

/// A counting observer shared by the observed and unobserved runs.
struct LastRound(u64);

impl<S> SyncObserver<S> for LastRound {
    fn on_round_end(&mut self, round: u64, _states: &[S]) {
        self.0 = round;
    }
}

#[test]
fn observed_runs_agree_and_fire_identically() {
    let p = AsMulti(count_neighbors(2));
    let g = generators::gnp(60, 0.1, 3);
    let inputs = vec![0usize; g.node_count()];

    let plain = Simulation::sync(&p, &g)
        .seed(11)
        .inputs(&inputs)
        .run()
        .unwrap()
        .into_sync_outcome()
        .unwrap();

    let mut built_obs = stoneage_sim::AdaptSync(LastRound(0));
    let built = Simulation::sync(&p, &g)
        .seed(11)
        .inputs(&inputs)
        .observe(&mut built_obs)
        .run()
        .unwrap()
        .into_sync_outcome()
        .unwrap();

    assert_eq!(
        sync_fingerprint(&plain),
        sync_fingerprint(&built),
        "attaching an observer must not perturb the run"
    );
    assert_eq!(built_obs.0 .0, built.rounds, "observer saw every round");
}

/// Combined fingerprint over (graph family × standard adversary panel)
/// of the async backend, recorded from the legacy `run_async` entry
/// point before its removal. Both schedulers must reproduce it.
const ASYNC_LEGACY_PINNED: u64 = 0xc0f7be3f8b4b0b30;

#[test]
fn async_builder_reproduces_legacy_pinned_on_both_schedulers() {
    let p = Synchronized::new(count_neighbors_quiet(2));
    let mut prints = Vec::new();
    for (name, g) in graph_family() {
        for (i, adv) in standard_panel(19).iter().enumerate() {
            let seed = 400 + i as u64;
            let mut by_scheduler = Vec::new();
            for scheduler in [SchedulerKind::CalendarWheel, SchedulerKind::BinaryHeap] {
                let built = Simulation::asynchronous(&p, &g, adv)
                    .seed(seed)
                    .backend(Backend::Async(
                        AsyncOptions::new(adv).with_scheduler(scheduler),
                    ))
                    .run()
                    .unwrap()
                    .into_async_outcome()
                    .unwrap();
                by_scheduler.push(async_fingerprint(&built));
            }
            assert_eq!(
                by_scheduler[0],
                by_scheduler[1],
                "{name}/{}: wheel and heap must agree bit-for-bit",
                adv.name()
            );
            prints.push(by_scheduler[0]);
        }
    }
    assert_eq!(fnv1a(0, prints), ASYNC_LEGACY_PINNED);
}

#[test]
fn async_explicit_zero_inputs_match_the_default() {
    let p = Synchronized::new(count_neighbors_quiet(2));
    let g = generators::gnp(50, 0.12, 7);
    let inputs = vec![0usize; g.node_count()];
    let adv = UniformRandom { seed: 9 };
    let defaulted = Simulation::asynchronous(&p, &g, &adv)
        .seed(3)
        .run()
        .unwrap()
        .into_async_outcome()
        .unwrap();
    let explicit = Simulation::asynchronous(&p, &g, &adv)
        .seed(3)
        .inputs(&inputs)
        .run()
        .unwrap()
        .into_async_outcome()
        .unwrap();
    assert_eq!(async_fingerprint(&defaulted), async_fingerprint(&explicit));
}

/// Combined fingerprint over (graph family × seeds 0..4) of the scoped
/// backend — witness transcript included in each per-case hash —
/// recorded from the legacy `run_scoped` entry point before its removal.
const SCOPED_LEGACY_PINNED: u64 = 0xe738dfa3ac68d68c;

#[test]
fn scoped_builder_reproduces_legacy_pinned_including_the_witness() {
    let mut prints = Vec::new();
    for (name, g) in graph_family() {
        for seed in 0..4 {
            let built = Simulation::scoped(&Poke::new(), &g)
                .seed(seed)
                .budget(100)
                .run()
                .unwrap()
                .into_scoped_outcome()
                .unwrap();
            let again = Simulation::scoped(&Poke::new(), &g)
                .seed(seed)
                .budget(100)
                .run()
                .unwrap()
                .into_scoped_outcome()
                .unwrap();
            assert_eq!(
                built.scoped_deliveries, again.scoped_deliveries,
                "{name}/seed{seed}: witness transcript must be reproducible"
            );
            prints.push(scoped_fingerprint(&built));
        }
    }
    assert_eq!(fnv1a(0, prints), SCOPED_LEGACY_PINNED);
}

#[test]
fn unified_outcome_carries_states_cost_and_workers() {
    let p = AsMulti(count_neighbors(2));
    let g = generators::gnp(40, 0.15, 2);
    let out = Simulation::sync(&p, &g).seed(1).run().unwrap();
    assert_eq!(out.states.len(), g.node_count());
    assert_eq!(out.workers, 1, "serial path reports one worker");
    // Final states decode to exactly the reported outputs.
    use stoneage_core::Protocol;
    let decoded: Vec<u64> = out.states.iter().map(|s| p.output(s).unwrap()).collect();
    assert_eq!(decoded, out.outputs);
    assert!(matches!(out.cost, Cost::Rounds(r) if r == out.rounds().unwrap()));
}

#[test]
fn builder_validates_inputs_for_every_backend() {
    let bad = vec![0usize; 3];
    let g = generators::path(5);

    let p = AsMulti(count_neighbors(1));
    let err = Simulation::sync(&p, &g).inputs(&bad).run().unwrap_err();
    assert_eq!(
        err,
        ExecError::InputLengthMismatch {
            nodes: 5,
            inputs: 3
        }
    );

    let pf = count_neighbors_quiet(1);
    let adv = UniformRandom { seed: 1 };
    let err = Simulation::asynchronous(&pf, &g, &adv)
        .inputs(&bad)
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::InputLengthMismatch {
            nodes: 5,
            inputs: 3
        }
    );

    let err = Simulation::scoped(&Poke::new(), &g)
        .inputs(&bad)
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::InputLengthMismatch {
            nodes: 5,
            inputs: 3
        }
    );
}

#[test]
fn invalid_builder_states_are_config_errors_not_panics() {
    let g = generators::path(4);
    let p = AsMulti(count_neighbors(1));

    // Zero budget.
    let err = Simulation::sync(&p, &g).budget(0).run().unwrap_err();
    assert!(matches!(err, ExecError::Config { .. }), "{err}");

    // Zero checkpoint cadence.
    let err = Simulation::sync(&p, &g)
        .checkpoint_every(0)
        .run()
        .unwrap_err();
    assert!(matches!(err, ExecError::Config { .. }), "{err}");

    // Backend the protocol's transition flavor cannot drive.
    let err = Simulation::sync(&p, &g)
        .backend(Backend::Scoped)
        .run()
        .unwrap_err();
    assert!(matches!(err, ExecError::Config { .. }), "{err}");

    let pf = count_neighbors_quiet(1);
    let adv = UniformRandom { seed: 2 };
    let err = Simulation::asynchronous(&pf, &g, &adv)
        .backend(Backend::Sync)
        .run()
        .unwrap_err();
    assert!(matches!(err, ExecError::Config { .. }), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Builder setters are order-independent: any permutation of the
    /// configuration chain yields the bit-identical outcome.
    #[test]
    fn builder_field_order_does_not_affect_outcomes(
        n in 2usize..50,
        pr in 0.0f64..0.3,
        gseed in 0u64..200,
        seed in 0u64..200,
        budget in 50u64..5000,
        perm in 0usize..6,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let p = AsMulti(random_beeper(4, 2));
        let inputs = vec![0usize; n];

        // Reference order: seed, budget, inputs.
        let reference = Simulation::sync(&p, &g)
            .seed(seed)
            .budget(budget)
            .inputs(&inputs)
            .run();

        // One of the five other permutations of the same three setters.
        let permuted = match perm {
            0 => Simulation::sync(&p, &g).seed(seed).inputs(&inputs).budget(budget).run(),
            1 => Simulation::sync(&p, &g).budget(budget).seed(seed).inputs(&inputs).run(),
            2 => Simulation::sync(&p, &g).budget(budget).inputs(&inputs).seed(seed).run(),
            3 => Simulation::sync(&p, &g).inputs(&inputs).seed(seed).budget(budget).run(),
            4 => Simulation::sync(&p, &g).inputs(&inputs).budget(budget).seed(seed).run(),
            _ => Simulation::sync(&p, &g).seed(seed).budget(budget).inputs(&inputs).run(),
        };

        match (reference, permuted) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.outputs, &b.outputs);
                prop_assert_eq!(
                    sync_fingerprint(&a.into_sync_outcome().unwrap()),
                    sync_fingerprint(&b.into_sync_outcome().unwrap())
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "outcome kinds diverge: {:?} vs {:?}", a, b),
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use stoneage_sim::{MergeStrategy, ParallelPolicy};
    use stoneage_testkit::adversarial_worker_counts;

    #[test]
    fn parallel_builder_matches_the_serial_oracle_for_every_worker_count() {
        let p = AsMulti(random_beeper(5, 2));
        for (name, g) in graph_family() {
            let serial = Simulation::sync(&p, &g)
                .seed(7)
                .run()
                .unwrap()
                .into_sync_outcome()
                .unwrap();
            let scoped_serial = Simulation::scoped(&Poke::new(), &g)
                .seed(7)
                .budget(100)
                .run()
                .unwrap()
                .into_scoped_outcome()
                .unwrap();
            for workers in adversarial_worker_counts() {
                let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded);
                let built = Simulation::sync(&p, &g)
                    .seed(7)
                    .parallel(policy)
                    .run()
                    .unwrap();
                assert_eq!(
                    built.workers,
                    workers.min(g.node_count()),
                    "{name}/w{workers}: Outcome::workers must surface the count the \
                     shard plan actually runs"
                );
                assert_eq!(
                    sync_fingerprint(&serial),
                    sync_fingerprint(&built.into_sync_outcome().unwrap()),
                    "{name}/w{workers}"
                );

                let built = Simulation::scoped(&Poke::new(), &g)
                    .seed(7)
                    .budget(100)
                    .parallel(policy)
                    .run()
                    .unwrap();
                assert_eq!(
                    built.workers,
                    workers.min(g.node_count()),
                    "{name}/w{workers} (scoped)"
                );
                assert_eq!(
                    scoped_fingerprint(&scoped_serial),
                    scoped_fingerprint(&built.into_scoped_outcome().unwrap()),
                    "{name}/w{workers} (scoped)"
                );
            }
        }
    }

    #[test]
    fn default_policy_clamps_workers_to_available_parallelism() {
        let hw = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let resolved = ParallelPolicy::default().resolve_workers();
        assert_eq!(resolved, hw.max(1), "documented floor of 1, clamp to hw");
        // The small-instance fallback reports the serial path.
        let p = AsMulti(count_neighbors(2));
        let g = generators::gnp(30, 0.2, 1);
        let out = Simulation::sync(&p, &g)
            .parallel(ParallelPolicy::default())
            .run()
            .unwrap();
        assert_eq!(out.workers, 1, "small instance delegates to serial");
    }

    #[test]
    fn parallel_policy_on_async_backend_is_a_config_error() {
        let p = count_neighbors_quiet(1);
        let g = generators::path(4);
        let adv = UniformRandom { seed: 1 };
        let err = Simulation::asynchronous(&p, &g, &adv)
            .parallel(ParallelPolicy::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, ExecError::Config { .. }), "{err}");
    }
}
