//! Checkpoint/resume determinism suite for `stoneage_sim::snapshot`.
//!
//! The contract under test, from strongest to weakest:
//!
//! 1. **Resume ≡ uninterrupted.** Run to boundary `k`, capture a
//!    [`Snapshot`], resume from it — the final outcome (outputs, states,
//!    cost, backend detail) is bit-identical to the run that never
//!    stopped, for every backend × worker count × round mode × churn
//!    combination, *including* when the frame round-trips through
//!    [`Snapshot::to_bytes`] / [`Snapshot::from_bytes`] first.
//! 2. **Checkpointing is free.** Attaching a cadence must not perturb
//!    the run it observes, and the observer hook never fires without
//!    one.
//! 3. **Rejection is typed.** A snapshot from the wrong graph,
//!    protocol, backend, or configuration is a typed
//!    [`ExecError::Snapshot`]; corrupted or truncated bytes are a typed
//!    [`SnapshotError`]. Never a panic, never a silently divergent run.

use proptest::prelude::*;
use stoneage_core::{AsMulti, Protocol, Synchronized, TableProtocol};
use stoneage_graph::{generators, Graph, TopologyEvent};
use stoneage_sim::adversary::UniformRandom;
use stoneage_sim::{
    AsyncOptions, Backend, ChurnPlan, ExecError, Observer, Outcome, SchedulerKind, Simulation,
    Snapshot, SnapshotError,
};
#[cfg(feature = "parallel")]
use stoneage_sim::{MergeStrategy, ParallelPolicy, RoundMode};
use stoneage_testkit::{count_neighbors, count_neighbors_quiet, Poke};

type SyncP = AsMulti<TableProtocol>;
type AsyncP = Synchronized<TableProtocol>;

#[cfg(feature = "parallel")]
type PolicyOpt = Option<ParallelPolicy>;
#[cfg(not(feature = "parallel"))]
type PolicyOpt = Option<()>;

/// A canonical rendering of everything an [`Outcome`] carries except
/// the worker count — resuming under a different parallel policy is a
/// supported configuration change, and must not move anything else.
fn transcript<P: Protocol>(out: &Outcome<P>) -> String {
    format!(
        "{:?} | {:?} | {:?} | {:?}",
        out.outputs, out.states, out.cost, out.detail
    )
}

/// Collects every checkpoint frame the run hands out.
#[derive(Default)]
struct Collect {
    snaps: Vec<Snapshot>,
}

impl<S> Observer<S> for Collect {
    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.snaps.push(snapshot.clone());
    }
}

/// A seeded random plan plus a deliberate crash → restart pair so every
/// churn run exercises both lifecycle events.
fn plan_for(g: &Graph, seed: u64) -> ChurnPlan {
    ChurnPlan::random(g, seed, 8, 6)
        .at(1, TopologyEvent::Crash(0))
        .at(3, TopologyEvent::Restart(0))
}

/// The execution-policy axis of the acceptance matrix: the serial path
/// always, plus workers {1, 2, hw} × {Joined, Fused} under the
/// `parallel` feature.
#[cfg(feature = "parallel")]
fn policies() -> Vec<(String, PolicyOpt)> {
    let hw = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut out = vec![("serial".to_string(), None)];
    for workers in [1, 2, hw] {
        for mode in [RoundMode::Joined, RoundMode::Fused] {
            let policy =
                ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded).with_round(mode);
            out.push((format!("w{workers}-{mode:?}"), Some(policy)));
        }
    }
    out
}

#[cfg(not(feature = "parallel"))]
fn policies() -> Vec<(String, PolicyOpt)> {
    vec![("serial".to_string(), None)]
}

/// One sync-backend builder cell. A free function (not a closure) so
/// every call picks fresh borrow lifetimes.
fn mk_sync<'a>(
    p: &'a SyncP,
    g: &'a Graph,
    seed: u64,
    churn: Option<&'a ChurnPlan>,
    policy: &PolicyOpt,
) -> Simulation<'a, SyncP> {
    let mut b = Simulation::sync(p, g).seed(seed);
    if let Some(plan) = churn {
        b = b.with_churn(plan);
    }
    #[cfg(feature = "parallel")]
    if let Some(pol) = policy {
        b = b.parallel(*pol);
    }
    #[cfg(not(feature = "parallel"))]
    let _ = policy;
    b
}

/// One scoped-backend builder cell.
fn mk_scoped<'a>(
    p: &'a Poke,
    g: &'a Graph,
    seed: u64,
    churn: Option<&'a ChurnPlan>,
    policy: &PolicyOpt,
) -> Simulation<'a, Poke> {
    let mut b = Simulation::scoped(p, g).seed(seed).budget(100);
    if let Some(plan) = churn {
        b = b.with_churn(plan);
    }
    #[cfg(feature = "parallel")]
    if let Some(pol) = policy {
        b = b.parallel(*pol);
    }
    #[cfg(not(feature = "parallel"))]
    let _ = policy;
    b
}

/// One async-backend builder cell.
fn mk_async<'a>(
    p: &'a AsyncP,
    g: &'a Graph,
    adv: &'a UniformRandom,
    seed: u64,
    scheduler: SchedulerKind,
    churn: Option<&'a ChurnPlan>,
) -> Simulation<'a, AsyncP> {
    let mut b = Simulation::asynchronous(p, g, adv)
        .seed(seed)
        .backend(Backend::Async(
            AsyncOptions::new(adv).with_scheduler(scheduler),
        ));
    if let Some(plan) = churn {
        b = b.with_churn(plan);
    }
    b
}

/// Drives one cell of the matrix: uninterrupted run, checkpointed run
/// (must be unperturbed), then a resume from **every** captured frame —
/// both the in-memory `Snapshot` and its byte round-trip — each of
/// which must land on the uninterrupted transcript. `$mk` is
/// re-evaluated per run so each builder borrows afresh.
macro_rules! check_cell {
    ($name:expr, $mk:expr, $every:expr) => {{
        let full = $mk.run().expect("uninterrupted run terminates");
        let want = transcript(&full);

        let every = $every(&full);
        let snaps = {
            let mut obs = Collect::default();
            let out = $mk
                .checkpoint_every(every)
                .observe(&mut obs)
                .run()
                .expect("checkpointed run terminates");
            assert_eq!(
                transcript(&out),
                want,
                "{}: attaching a checkpoint cadence perturbed the run",
                $name
            );
            obs.snaps
        };
        assert!(
            !snaps.is_empty(),
            "{}: cadence {every} produced no frames",
            $name
        );

        for snap in &snaps {
            let resumed = $mk.resume_from(snap).run().expect("resume terminates");
            assert_eq!(
                transcript(&resumed),
                want,
                "{}: resume at boundary {} diverged",
                $name,
                snap.boundary()
            );

            let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            assert_eq!(
                &decoded, snap,
                "{}: byte round-trip must be lossless",
                $name
            );
            let resumed = $mk
                .resume_from(&decoded)
                .run()
                .expect("resume from bytes terminates");
            assert_eq!(
                transcript(&resumed),
                want,
                "{}: resume from deserialized bytes at boundary {} diverged",
                $name,
                snap.boundary()
            );
        }
        snaps
    }};
}

#[test]
fn sync_resume_matrix_is_bit_identical() {
    let p = AsMulti(count_neighbors(3));
    let g = generators::gnp(60, 0.08, 5);
    let plan = plan_for(&g, 9);
    for churn in [None, Some(&plan)] {
        for (pname, policy) in policies() {
            let name = format!("sync/{pname}/churn={}", churn.is_some());
            check_cell!(
                &name,
                mk_sync(&p, &g, 7, churn, &policy),
                |full: &Outcome<SyncP>| (full.rounds().unwrap() / 3).max(1)
            );
        }
    }
}

#[test]
fn scoped_resume_matrix_is_bit_identical() {
    let p = Poke::new();
    let g = generators::gnp(60, 0.08, 5);
    let plan = plan_for(&g, 4);
    for churn in [None, Some(&plan)] {
        for (pname, policy) in policies() {
            let name = format!("scoped/{pname}/churn={}", churn.is_some());
            check_cell!(
                &name,
                mk_scoped(&p, &g, 7, churn, &policy),
                |_full: &Outcome<Poke>| 1u64
            );
        }
    }
}

#[test]
fn async_resume_is_bit_identical_on_both_schedulers() {
    let p = Synchronized::new(count_neighbors_quiet(2));
    let g = generators::gnp(40, 0.1, 3);
    let adv = UniformRandom { seed: 11 };
    let plan = plan_for(&g, 2);
    for churn in [None, Some(&plan)] {
        for scheduler in [SchedulerKind::CalendarWheel, SchedulerKind::BinaryHeap] {
            let name = format!("async/{scheduler:?}/churn={}", churn.is_some());
            check_cell!(
                &name,
                mk_async(&p, &g, &adv, 5, scheduler, churn),
                |full: &Outcome<AsyncP>| {
                    let steps = full
                        .clone()
                        .into_async_outcome()
                        .expect("async backend")
                        .total_steps;
                    (steps / 3).max(1)
                }
            );
        }
    }
}

/// The config digest deliberately excludes performance-only knobs, so a
/// frame captured on one execution policy resumes under any other —
/// serial → parallel, across worker counts, across round modes — and
/// still lands on the same transcript.
#[cfg(feature = "parallel")]
#[test]
fn snapshots_resume_across_worker_counts_and_round_modes() {
    let p = AsMulti(count_neighbors(3));
    let g = generators::gnp(60, 0.08, 5);
    let full = Simulation::sync(&p, &g).seed(7).run().unwrap();
    let want = transcript(&full);

    let mut obs = Collect::default();
    Simulation::sync(&p, &g)
        .seed(7)
        .checkpoint_every(1)
        .observe(&mut obs)
        .run()
        .unwrap();
    let snaps = obs.snaps;
    assert!(!snaps.is_empty(), "cadence 1 must hit a non-terminal round");
    let snap = &snaps[snaps.len() / 2];

    for (pname, policy) in policies() {
        let resumed = mk_sync(&p, &g, 7, None, &policy)
            .resume_from(snap)
            .run()
            .unwrap();
        assert_eq!(
            transcript(&resumed),
            want,
            "serial frame resumed under {pname} diverged"
        );
    }
}

#[test]
fn observer_hook_never_fires_without_a_cadence() {
    let p = AsMulti(count_neighbors(2));
    let g = generators::gnp(30, 0.15, 1);
    let mut obs = Collect::default();
    Simulation::sync(&p, &g)
        .seed(3)
        .observe(&mut obs)
        .run()
        .unwrap();
    assert!(obs.snaps.is_empty());
}

/// One committed sync frame to corrupt and mis-route in the rejection
/// tests below.
fn captured_sync_snapshot() -> (SyncP, Graph, Snapshot) {
    let p = AsMulti(count_neighbors(3));
    let g = generators::gnp(30, 0.12, 5);
    let mut obs = Collect::default();
    Simulation::sync(&p, &g)
        .seed(7)
        .checkpoint_every(1)
        .observe(&mut obs)
        .run()
        .unwrap();
    let snap = obs.snaps.first().expect("at least one frame").clone();
    (p, g, snap)
}

#[test]
fn resume_header_mismatches_are_typed_errors() {
    let (p, g, snap) = captured_sync_snapshot();

    let expect = |err: ExecError, field: &'static str| {
        assert_eq!(
            err,
            ExecError::Snapshot(SnapshotError::DigestMismatch { field })
        );
    };

    // Same shape, different graph.
    let g2 = generators::gnp(30, 0.12, 6);
    expect(
        Simulation::sync(&p, &g2)
            .seed(7)
            .resume_from(&snap)
            .run()
            .unwrap_err(),
        "graph fingerprint",
    );

    // Different protocol (bound 2 instead of 3).
    let p2 = AsMulti(count_neighbors(2));
    expect(
        Simulation::sync(&p2, &g)
            .seed(7)
            .resume_from(&snap)
            .run()
            .unwrap_err(),
        "protocol id",
    );

    // Different backend entirely.
    expect(
        Simulation::scoped(&Poke::new(), &g)
            .seed(7)
            .resume_from(&snap)
            .run()
            .unwrap_err(),
        "backend",
    );

    // Same everything, different seed.
    expect(
        Simulation::sync(&p, &g)
            .seed(8)
            .resume_from(&snap)
            .run()
            .unwrap_err(),
        "config digest",
    );

    // Same everything, different churn plan.
    let plan = plan_for(&g, 1);
    expect(
        Simulation::sync(&p, &g)
            .seed(7)
            .with_churn(&plan)
            .resume_from(&snap)
            .run()
            .unwrap_err(),
        "config digest",
    );
}

#[test]
fn corrupted_bytes_are_rejected_never_panicking() {
    let (_, _, snap) = captured_sync_snapshot();
    let bytes = snap.to_bytes();

    // Every strict prefix is a typed error (the trailing checksum can
    // never survive truncation).
    for cut in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }

    // Every single-bit flip is a typed error: the FNV checksum covers
    // the full frame, and header corruption is caught field-by-field.
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << bit;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "bit {bit} of byte {i} flipped, frame must be rejected"
            );
        }
    }

    // A future format version is specifically a VersionMismatch (the
    // version field is validated before the checksum so old readers
    // give the right diagnosis for new frames).
    let mut future = bytes.clone();
    future[4] = future[4].wrapping_add(1);
    assert!(matches!(
        Snapshot::from_bytes(&future),
        Err(SnapshotError::VersionMismatch { supported, .. })
            if supported == stoneage_sim::SNAPSHOT_VERSION
    ));

    // Appending trailing garbage breaks the length accounting.
    let mut long = bytes.clone();
    long.extend_from_slice(b"junk");
    assert!(matches!(
        Snapshot::from_bytes(&long),
        Err(SnapshotError::Truncated { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Resume ≡ uninterrupted at a *random* boundary, on random graphs
    /// and seeds, with and without churn, for both lockstep backends —
    /// including through the byte round-trip.
    #[test]
    fn lockstep_resume_at_random_boundary_matches_uninterrupted(
        n in 8usize..40,
        pr in 0.05f64..0.25,
        gseed in 0u64..100,
        seed in 0u64..100,
        churn_sel in 0u8..2,
        pick in 0usize..1000,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let plan = plan_for(&g, seed ^ 0x55);
        let churn = (churn_sel == 1).then_some(&plan);
        let none: PolicyOpt = None;

        // Sync backend.
        let p = AsMulti(count_neighbors(2));
        let full = mk_sync(&p, &g, seed, churn, &none).run().expect("terminates");
        let want = transcript(&full);
        let snaps = {
            let mut obs = Collect::default();
            mk_sync(&p, &g, seed, churn, &none)
                .checkpoint_every(1)
                .observe(&mut obs)
                .run()
                .expect("terminates");
            obs.snaps
        };
        if !snaps.is_empty() {
            let snap = &snaps[pick % snaps.len()];
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            prop_assert_eq!(&decoded, snap);
            let resumed = mk_sync(&p, &g, seed, churn, &none)
                .resume_from(&decoded)
                .run()
                .expect("terminates");
            prop_assert_eq!(transcript(&resumed), want);
        }

        // Scoped backend.
        let p = Poke::new();
        let full = mk_scoped(&p, &g, seed, churn, &none).run().expect("terminates");
        let want = transcript(&full);
        let snaps = {
            let mut obs = Collect::default();
            mk_scoped(&p, &g, seed, churn, &none)
                .checkpoint_every(1)
                .observe(&mut obs)
                .run()
                .expect("terminates");
            obs.snaps
        };
        if !snaps.is_empty() {
            let snap = &snaps[pick % snaps.len()];
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            let resumed = mk_scoped(&p, &g, seed, churn, &none)
                .resume_from(&decoded)
                .run()
                .expect("terminates");
            prop_assert_eq!(transcript(&resumed), want);
        }
    }

    /// The async twin: resume at a random step boundary under a random
    /// adversary seed, with and without churn.
    #[test]
    fn async_resume_at_random_boundary_matches_uninterrupted(
        n in 8usize..30,
        pr in 0.08f64..0.3,
        gseed in 0u64..100,
        seed in 0u64..100,
        adv_seed in 0u64..100,
        churn_sel in 0u8..2,
        pick in 0usize..1000,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let p = Synchronized::new(count_neighbors_quiet(2));
        let adv = UniformRandom { seed: adv_seed };
        let plan = plan_for(&g, seed ^ 0xA5);
        let churn = (churn_sel == 1).then_some(&plan);
        let scheduler = SchedulerKind::CalendarWheel;

        let full = mk_async(&p, &g, &adv, seed, scheduler, churn)
            .run()
            .expect("terminates");
        let want = transcript(&full);
        let steps = full.clone().into_async_outcome().expect("async").total_steps;
        let every = (steps / 5).max(1);
        let snaps = {
            let mut obs = Collect::default();
            mk_async(&p, &g, &adv, seed, scheduler, churn)
                .checkpoint_every(every)
                .observe(&mut obs)
                .run()
                .expect("terminates");
            obs.snaps
        };
        if !snaps.is_empty() {
            let snap = &snaps[pick % snaps.len()];
            let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trip");
            let resumed = mk_async(&p, &g, &adv, seed, scheduler, churn)
                .resume_from(&decoded)
                .run()
                .expect("terminates");
            prop_assert_eq!(transcript(&resumed), want);
        }
    }
}
