//! Differential and determinism tests for the calendar-wheel async
//! scheduler.
//!
//! The contract under test: the async backend of
//! [`stoneage_sim::Simulation`] on
//! [`SchedulerKind::CalendarWheel`] (hierarchical timing wheel, per-edge
//! batched delivery) produces outcomes **bit-identical per seed** to the
//! preserved [`SchedulerKind::BinaryHeap`] path — across graph families,
//! adversary policies (including latency schedules that collide many
//! arrivals into one bucket), protocols, event budgets, and bucket
//! widths. Pinned fingerprints on gnp/tree/grid additionally guard both
//! paths against silent drift.
//!
//! The protocol builders, fnv1a hash, and pinned case instances live in
//! `stoneage-testkit` (shared with `tests/flat_engine.rs` and the
//! `stoneage-bench` fingerprint bin); the pinned hash *constants* stay
//! here so this suite fails on its own recorded numbers. These tests
//! also pin the wheel drain's per-receiver coalescing: the quantized and
//! constant adversaries collide many different senders' arrivals onto
//! one instant at shared receivers, which is exactly the grouped-write
//! path.

use proptest::prelude::*;
use stoneage_core::Synchronized;
use stoneage_graph::{generators, Graph, NodeId};
use stoneage_sim::{Adversary, AsyncConfig, AsyncOutcome, ExecError, SchedulerKind};
use stoneage_testkit::harness::run_async;
use stoneage_testkit::{
    async_fingerprint, count_neighbors_quiet as count_neighbors, random_beeper, run_async_pinned,
    ASYNC_PINNED_CASES,
};

/// An adversary whose parameters are all multiples of one quantum: whole
/// neighborhoods of arrivals collide onto identical instants, so the
/// wheel files them into shared buckets and batched per-edge runs — the
/// stress case for the batching path (and, historically, for calendar
/// queue implementations).
#[derive(Clone, Copy)]
struct Quantized {
    seed: u64,
    quantum: f64,
}

fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed ^ 0x9E3779B97F4A7C15 ^ a.rotate_left(17) ^ b.rotate_left(31) ^ c;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Adversary for Quantized {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        self.quantum * (1 + mix(self.seed, 1, v as u64, t) % 8) as f64
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        self.quantum * (1 + mix(self.seed, 2, (v as u64) << 32 | u as u64, t) % 4) as f64
    }

    fn name(&self) -> &'static str {
        "quantized"
    }
}

/// A constant-parameter adversary: *every* arrival of a broadcast lands
/// on the same instant, so each broadcast drains as a single batched run.
#[derive(Clone, Copy)]
struct Constant {
    step: f64,
    delay: f64,
}

impl Adversary for Constant {
    fn step_length(&self, _v: NodeId, _t: u64) -> f64 {
        self.step
    }

    fn delay(&self, _v: NodeId, _t: u64, _u: NodeId) -> f64 {
        self.delay
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

fn heap_cfg(seed: u64) -> AsyncConfig {
    AsyncConfig::seeded(seed).with_scheduler(SchedulerKind::BinaryHeap)
}

fn wheel_cfg(seed: u64) -> AsyncConfig {
    AsyncConfig::seeded(seed).with_scheduler(SchedulerKind::CalendarWheel)
}

/// Bit-exact equality over every outcome field.
fn assert_same(ctx: &str, wheel: &AsyncOutcome, heap: &AsyncOutcome) {
    assert_eq!(wheel.outputs, heap.outputs, "{ctx}: outputs");
    assert_eq!(
        wheel.completion_time.to_bits(),
        heap.completion_time.to_bits(),
        "{ctx}: completion_time {} vs {}",
        wheel.completion_time,
        heap.completion_time
    );
    assert_eq!(
        wheel.time_unit.to_bits(),
        heap.time_unit.to_bits(),
        "{ctx}: time_unit"
    );
    assert_eq!(wheel.total_steps, heap.total_steps, "{ctx}: total_steps");
    assert_eq!(
        wheel.messages_sent, heap.messages_sent,
        "{ctx}: messages_sent"
    );
    assert_eq!(wheel.deliveries, heap.deliveries, "{ctx}: deliveries");
    assert_eq!(
        wheel.lost_overwrites, heap.lost_overwrites,
        "{ctx}: lost_overwrites"
    );
}

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(120, 0.05, 3)),
        ("gnp-dense", generators::gnp(50, 0.3, 17)),
        ("tree", generators::random_tree(150, 11)),
        ("grid", generators::grid(10, 12)),
        ("star", generators::star(40)),
        ("empty", Graph::empty(20)),
    ]
}

#[test]
fn wheel_matches_heap_across_families_and_adversaries() {
    let p = Synchronized::new(count_neighbors(2));
    for (name, g) in graph_family() {
        for (i, adv) in stoneage_sim::adversary::standard_panel(13)
            .iter()
            .enumerate()
        {
            let seed = 900 + i as u64;
            let heap = run_async(&p, &g, adv, &heap_cfg(seed)).unwrap();
            let wheel = run_async(&p, &g, adv, &wheel_cfg(seed)).unwrap();
            assert_same(&format!("{name}/{}", adv.name()), &wheel, &heap);
        }
    }
}

#[test]
fn wheel_matches_heap_on_randomized_protocol() {
    let p = Synchronized::new(random_beeper(4, 2));
    for (name, g) in graph_family() {
        for seed in 70..73 {
            let adv = stoneage_sim::adversary::Exponential { seed, mean: 0.4 };
            let heap = run_async(&p, &g, &adv, &heap_cfg(seed)).unwrap();
            let wheel = run_async(&p, &g, &adv, &wheel_cfg(seed)).unwrap();
            assert_same(&format!("{name}/seed{seed}"), &wheel, &heap);
        }
    }
}

#[test]
fn colliding_arrivals_agree_and_do_collide() {
    // Quantized and constant schedules funnel many arrivals onto shared
    // instants — shared buckets and batched runs in the wheel. Outcomes
    // must not move by a bit.
    let p = Synchronized::new(count_neighbors(3));
    for (name, g) in [
        ("star", generators::star(40)),
        ("grid", generators::grid(8, 9)),
        ("gnp", generators::gnp(80, 0.08, 5)),
    ] {
        for quantum in [0.25, 1.0] {
            let adv = Quantized { seed: 31, quantum };
            let heap = run_async(&p, &g, &adv, &heap_cfg(6)).unwrap();
            let wheel = run_async(&p, &g, &adv, &wheel_cfg(6)).unwrap();
            assert_same(&format!("{name}/q{quantum}"), &wheel, &heap);
        }
        let adv = Constant {
            step: 1.0,
            delay: 0.5,
        };
        let heap = run_async(&p, &g, &adv, &heap_cfg(6)).unwrap();
        let wheel = run_async(&p, &g, &adv, &wheel_cfg(6)).unwrap();
        assert_same(&format!("{name}/constant"), &wheel, &heap);
        // Sanity: the collision workload actually delivers in bulk.
        assert!(wheel.deliveries > 0, "{name}");
    }
}

#[test]
fn event_limit_is_identical_under_the_wheel() {
    // Sweep budgets so the limit lands on step events, single deliveries,
    // and mid-batch under the wheel; the reported error (budget and
    // unfinished count) must equal the heap path's exactly.
    let p = Synchronized::new(count_neighbors(2));
    let star = generators::star(40); // center broadcast = 40-wide batch
    let grid = generators::grid(7, 8);
    let adv = Constant {
        step: 1.0,
        delay: 0.5,
    };
    for g in [&star, &grid] {
        for budget in [1u64, 7, 40, 41, 97, 150, 400, 1000] {
            let mk = |scheduler| AsyncConfig {
                max_events: budget,
                ..AsyncConfig::seeded(2).with_scheduler(scheduler)
            };
            let heap = run_async(&p, g, &adv, &mk(SchedulerKind::BinaryHeap));
            let wheel = run_async(&p, g, &adv, &mk(SchedulerKind::CalendarWheel));
            match (wheel, heap) {
                (Ok(w), Ok(h)) => assert_same(&format!("budget {budget}"), &w, &h),
                (Err(w), Err(h)) => {
                    assert_eq!(w, h, "budget {budget}");
                    assert!(matches!(w, ExecError::EventLimit { limit, .. } if limit == budget));
                }
                (w, h) => panic!("budget {budget}: outcome kinds diverge: {w:?} vs {h:?}"),
            }
        }
    }
}

/// Pinned end-to-end async snapshots, recorded from the binary-heap path
/// when the wheel scheduler landed. Both schedulers must reproduce them
/// for every future engine change — they pin the "wheel is bit-identical
/// to the heap" acceptance criterion (the case instances live in
/// `stoneage-testkit`; the hashes stay here). If a deliberate
/// semantics-affecting change ever invalidates them, re-derive with
/// `cargo run -p stoneage-bench --bin fingerprint` and justify it in the
/// commit message.
const PINNED_ASYNC: [(&str, u64, u64); 3] = [
    ("gnp-async", 4242, 0x60e34de0e0452e83),
    ("tree-async", 77, 0x9029fac0b9986de3),
    ("grid-async", 9000, 0x03f42295c27060d3),
];

#[test]
fn pinned_async_fingerprints_on_both_schedulers() {
    // The hash constants pin the same (name, seed) pairs the shared case
    // table enumerates — a drifted table would fail here immediately.
    assert_eq!(
        ASYNC_PINNED_CASES.map(|(name, seed)| (name, seed)),
        PINNED_ASYNC.map(|(name, seed, _)| (name, seed)),
    );
    let mut drift = Vec::new();
    for (name, seed, want) in PINNED_ASYNC {
        for scheduler in [SchedulerKind::BinaryHeap, SchedulerKind::CalendarWheel] {
            let got = async_fingerprint(&run_async_pinned(name, seed, scheduler));
            if got != want {
                drift.push(format!(
                    "(\"{name}\", {seed}, {got:#018x}) != {want:#018x} [{scheduler:?}]"
                ));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "pinned async fingerprints changed:\n{}",
        drift.join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential property: on arbitrary gnp instances, adversaries,
    /// and seeds, the wheel and heap schedulers agree bit-exactly.
    #[test]
    fn wheel_matches_heap_on_random_instances(
        n in 1usize..50,
        pr in 0.0f64..0.35,
        gseed in 0u64..300,
        seed in 0u64..300,
        mean in 0.05f64..2.0,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let p = Synchronized::new(random_beeper(3, 2));
        let adv = stoneage_sim::adversary::Exponential { seed, mean };
        let heap = run_async(&p, &g, &adv, &heap_cfg(seed)).unwrap();
        let wheel = run_async(&p, &g, &adv, &wheel_cfg(seed)).unwrap();
        prop_assert_eq!(wheel.outputs, heap.outputs);
        prop_assert_eq!(wheel.completion_time.to_bits(), heap.completion_time.to_bits());
        prop_assert_eq!(wheel.total_steps, heap.total_steps);
        prop_assert_eq!(wheel.deliveries, heap.deliveries);
        prop_assert_eq!(wheel.lost_overwrites, heap.lost_overwrites);
    }
}
