//! Regression tests for the synchronizer's **retained-letter** semantics.
//!
//! Synchronization property (S2) lets a port keep the last non-ε letter
//! indefinitely: a node that beeped once and went silent must remain
//! visible to a neighbor that only looks many rounds later. An early
//! version of `Synchronized` transmitted literal per-round emissions
//! inside `M_v(t)` — which made silent neighbors invisible and broke the
//! MIS pipeline. These tests pin the fixed behavior with a protocol whose
//! correctness *depends* on retention.

use stoneage_core::{
    Alphabet, AsMulti, Letter, Synchronized, TableProtocol, TableProtocolBuilder, Transitions,
};
use stoneage_graph::generators;
use stoneage_sim::adversary::{standard_panel, Lockstep};
use stoneage_sim::{AsyncConfig, SyncConfig};
use stoneage_testkit::harness::{run_async, run_sync};

/// Every node beeps exactly once (at step 1) and then stays silent; after
/// `delay` further silent steps it outputs `10 + f₁(#BEEP)`. Only port
/// retention can make the count 1: by observation time, the beeps are
/// `delay` rounds stale.
fn beep_then_look(delay: usize) -> TableProtocol {
    let alphabet = Alphabet::new(["BEEP", "QUIET"]);
    let beep = Letter(0);
    let quiet = Letter(1);
    let mut b = TableProtocolBuilder::new("beep-then-look", alphabet, 1, quiet);
    let start = b.add_state("start", beep);
    b.add_input_state(start);
    let mut prev = start;
    for i in 0..delay {
        let w = b.add_state(format!("wait{i}"), beep);
        let emission = if prev == start { Some(beep) } else { None };
        b.set_transition_all(prev, Transitions::det(w, emission));
        prev = w;
    }
    let none = b.add_output_state("saw_none", beep, 10);
    let some = b.add_output_state("saw_some", beep, 11);
    b.set_transition(prev, 0, Transitions::det(none, None));
    b.set_transition(prev, 1, Transitions::det(some, None));
    b.set_transition_all(none, Transitions::det(none, None));
    b.set_transition_all(some, Transitions::det(some, None));
    b.build().unwrap()
}

#[test]
fn sync_engine_retains_stale_letters() {
    let g = generators::cycle(8);
    let out = run_sync(&AsMulti(beep_then_look(6)), &g, &SyncConfig::seeded(0)).unwrap();
    assert!(out.outputs.iter().all(|&o| o == 11), "{:?}", out.outputs);
}

#[test]
fn synchronizer_preserves_retention_under_lockstep() {
    let g = generators::cycle(8);
    let p = Synchronized::new(beep_then_look(6));
    let out = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(1)).unwrap();
    assert!(
        out.outputs.iter().all(|&o| o == 11),
        "a 6-round-stale beep must still be counted: {:?}",
        out.outputs
    );
}

#[test]
fn synchronizer_preserves_retention_under_every_adversary() {
    let g = generators::path(6);
    let p = Synchronized::new(beep_then_look(9));
    for adv in standard_panel(23) {
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(2)).unwrap();
        assert!(
            out.outputs.iter().all(|&o| o == 11),
            "adversary {}: {:?}",
            adv.name(),
            out.outputs
        );
    }
}

#[test]
fn isolated_nodes_see_nothing_even_with_retention() {
    let g = stoneage_graph::Graph::empty(3);
    let p = Synchronized::new(beep_then_look(4));
    let out = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(0)).unwrap();
    assert!(out.outputs.iter().all(|&o| o == 10));
}
