//! Differential and determinism tests for the churn fault-injection
//! subsystem (`stoneage_sim::churn`).
//!
//! The contract under test, from strongest to weakest:
//!
//! 1. **Patched ≡ rebuilt.** For every plan, the incrementally patched
//!    engine (`PatchMode::Incremental` — per-slot retire/revive on the
//!    live `FlatPorts`) is bit-identical to the full-rebuild reference
//!    path (`PatchMode::Rebuild` — `ChurnOracle::rebuild` reconstructs
//!    the port store from the overlay after every boundary), across
//!    graph families, protocols, seeds, and backends.
//! 2. **Serial ≡ parallel.** Under the `parallel` feature the same plan
//!    reproduces the serial outcome for every adversarial worker count
//!    and both round modes (epoch-boundary event application keeps the
//!    frozen-read-plane argument intact — see the `churn` module docs).
//! 3. **Empty plan ≡ churn-free engine.** `with_churn(&ChurnPlan::new())`
//!    is bit-identical to not calling `with_churn` at all, on all three
//!    backends — the churn drivers are pure supersets.
//! 4. **Pinned fingerprints.** A recorded churn panel guards against
//!    silent drift, exactly like the churn-free pinned panels.

use proptest::prelude::*;
use stoneage_core::{AsMulti, Synchronized};
use stoneage_graph::{generators, Graph, TopologyEvent};
use stoneage_sim::adversary::UniformRandom;
use stoneage_sim::{ChurnPlan, ChurnSummary, PatchMode, ScopedOutcome, Simulation, SyncOutcome};
use stoneage_testkit::{
    async_fingerprint, churn_fingerprint, count_neighbors, count_neighbors_quiet, random_beeper,
    run_churn_pinned, scoped_fingerprint, sync_fingerprint, Poke, CHURN_PINNED_CASES,
};

fn graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp(120, 0.06, 3)),
        ("tree", generators::random_tree(150, 11)),
        ("grid", generators::grid(10, 12)),
    ]
}

/// A seeded random plan for `g`, plus a deliberate crash → restart pair
/// on node 0 so every run exercises both lifecycle events even when the
/// random schedule happens to skip one.
fn plan_for(g: &Graph, seed: u64) -> ChurnPlan {
    let mut plan = ChurnPlan::random(g, seed, 8, 6);
    plan = plan.at(1, TopologyEvent::Crash(0));
    plan = plan.at(3, TopologyEvent::Restart(0));
    plan
}

fn run_sync_churn(
    protocol: &AsMulti<stoneage_core::TableProtocol>,
    g: &Graph,
    seed: u64,
    plan: &ChurnPlan,
) -> (SyncOutcome, ChurnSummary) {
    let outcome = Simulation::sync(protocol, g)
        .seed(seed)
        .with_churn(plan)
        .run()
        .expect("churn runs terminate");
    let summary = outcome.churn().expect("plan was set").clone();
    (outcome.into_sync_outcome().expect("sync backend"), summary)
}

fn run_scoped_churn(
    protocol: &Poke,
    g: &Graph,
    seed: u64,
    plan: &ChurnPlan,
) -> (ScopedOutcome, ChurnSummary) {
    let outcome = Simulation::scoped(protocol, g)
        .seed(seed)
        .with_churn(plan)
        .run()
        .expect("churn runs terminate");
    let summary = outcome.churn().expect("plan was set").clone();
    (
        outcome.into_scoped_outcome().expect("scoped backend"),
        summary,
    )
}

/// Contract 1 on the synchronous backend: incremental patching ≡ the
/// `ChurnOracle` full rebuild, bit for bit, on every family × protocol ×
/// seed cell.
#[test]
fn sync_incremental_patch_matches_oracle_rebuild() {
    for (name, g) in graph_family() {
        for seed in 0..4 {
            let plan = plan_for(&g, 100 + seed);
            let inc = plan.clone().with_mode(PatchMode::Incremental);
            let reb = plan.clone().with_mode(PatchMode::Rebuild);
            for protocol in [AsMulti(count_neighbors(3)), AsMulti(random_beeper(5, 2))] {
                let (a, sa) = run_sync_churn(&protocol, &g, seed, &inc);
                let (b, sb) = run_sync_churn(&protocol, &g, seed, &reb);
                assert_eq!(a.outputs, b.outputs, "{name}/seed{seed}: outputs");
                assert_eq!(a.rounds, b.rounds, "{name}/seed{seed}: rounds");
                assert_eq!(
                    a.messages_sent, b.messages_sent,
                    "{name}/seed{seed}: messages"
                );
                assert_eq!(sa, sb, "{name}/seed{seed}: summaries");
            }
        }
    }
}

/// Contract 1 on the scoped backend, including the full scoped-delivery
/// witness transcript.
#[test]
fn scoped_incremental_patch_matches_oracle_rebuild() {
    let p = Poke::new();
    for (name, g) in graph_family() {
        for seed in 0..3 {
            let plan = plan_for(&g, 300 + seed);
            let (a, sa) = run_scoped_churn(
                &p,
                &g,
                seed,
                &plan.clone().with_mode(PatchMode::Incremental),
            );
            let (b, sb) =
                run_scoped_churn(&p, &g, seed, &plan.clone().with_mode(PatchMode::Rebuild));
            assert_eq!(
                scoped_fingerprint(&a),
                scoped_fingerprint(&b),
                "{name}/seed{seed}"
            );
            assert_eq!(sa, sb, "{name}/seed{seed}: summaries");
        }
    }
}

/// Contract 1 on the asynchronous backend (heap-driven): the patched
/// event loop matches the oracle rebuild on every counter and the exact
/// completion-time bits.
#[test]
fn async_incremental_patch_matches_oracle_rebuild() {
    let p = Synchronized::new(count_neighbors_quiet(2));
    for (name, g) in graph_family() {
        let adv = UniformRandom { seed: 13 };
        for seed in 0..3 {
            let plan = plan_for(&g, 500 + seed);
            let run = |plan: &ChurnPlan| {
                let outcome = Simulation::asynchronous(&p, &g, &adv)
                    .seed(seed)
                    .with_churn(plan)
                    .run()
                    .expect("churn runs terminate");
                let summary = outcome.churn().expect("plan was set").clone();
                (
                    outcome.into_async_outcome().expect("async backend"),
                    summary,
                )
            };
            let (a, sa) = run(&plan.clone().with_mode(PatchMode::Incremental));
            let (b, sb) = run(&plan.clone().with_mode(PatchMode::Rebuild));
            assert_eq!(
                async_fingerprint(&a),
                async_fingerprint(&b),
                "{name}/seed{seed}"
            );
            assert_eq!(sa, sb, "{name}/seed{seed}: summaries");
        }
    }
}

/// Contract 3: the empty plan is bit-identical to the churn-free engine
/// on all three backends, and reports an all-live, all-zero summary.
#[test]
fn empty_plan_is_bit_identical_to_churn_free_engine() {
    let empty = ChurnPlan::new();
    for (name, g) in graph_family() {
        let sync_p = AsMulti(random_beeper(4, 2));
        let (with, summary) = run_sync_churn(&sync_p, &g, 7, &empty);
        let without = Simulation::sync(&sync_p, &g)
            .seed(7)
            .run()
            .unwrap()
            .into_sync_outcome()
            .unwrap();
        assert_eq!(
            sync_fingerprint(&with),
            sync_fingerprint(&without),
            "{name}: sync"
        );
        assert_eq!(summary.live_count(), g.node_count(), "{name}: all live");
        assert_eq!(
            summary.crashes + summary.restarts + summary.edge_inserts + summary.edge_deletes,
            0,
            "{name}: no events"
        );

        let poke = Poke::new();
        let (with, _) = run_scoped_churn(&poke, &g, 7, &empty);
        let without = Simulation::scoped(&poke, &g)
            .seed(7)
            .run()
            .unwrap()
            .into_scoped_outcome()
            .unwrap();
        assert_eq!(
            scoped_fingerprint(&with),
            scoped_fingerprint(&without),
            "{name}: scoped"
        );

        let async_p = Synchronized::new(count_neighbors_quiet(2));
        let adv = UniformRandom { seed: 5 };
        let with = Simulation::asynchronous(&async_p, &g, &adv)
            .seed(7)
            .with_churn(&empty)
            .run()
            .unwrap()
            .into_async_outcome()
            .unwrap();
        let without = Simulation::asynchronous(&async_p, &g, &adv)
            .seed(7)
            .backend(stoneage_sim::Backend::Async(
                stoneage_sim::AsyncOptions::new(&adv)
                    .with_scheduler(stoneage_sim::SchedulerKind::BinaryHeap),
            ))
            .run()
            .unwrap()
            .into_async_outcome()
            .unwrap();
        assert_eq!(
            async_fingerprint(&with),
            async_fingerprint(&without),
            "{name}: async (vs heap scheduler)"
        );
    }
}

/// Crashed-undecided nodes report `DEAD_OUTPUT`; dead-but-decided nodes
/// keep their last output; the summary's live set matches the plan.
#[test]
fn dead_node_outputs_and_live_set() {
    let g = generators::cycle(6);
    let p = AsMulti(count_neighbors(3));
    // Crash node 2 before it can decide (its decision lands at round 2).
    let plan = ChurnPlan::new().at(1, TopologyEvent::Crash(2));
    let (out, summary) = run_sync_churn(&p, &g, 0, &plan);
    assert_eq!(out.outputs[2], stoneage_sim::churn::DEAD_OUTPUT);
    assert!(!summary.live_nodes[2]);
    assert_eq!(summary.live_count(), 5);
    // Crash it after everyone decided: the decided output survives.
    let plan = ChurnPlan::new().at(4, TopologyEvent::Crash(2));
    let (out, summary) = run_sync_churn(&p, &g, 0, &plan);
    assert_eq!(out.outputs[2], 3, "cycle node heard both neighbors");
    assert!(!summary.live_nodes[2]);
}

/// Contract 4: pinned churn fingerprints. Recorded when the subsystem
/// landed; a fixed (case, seed) cell must reproduce its hash forever. If
/// a deliberate semantics change invalidates them, re-derive with
/// `cargo run -p stoneage-bench --bin fingerprint` and justify in the
/// commit message.
#[test]
fn pinned_churn_fingerprints() {
    let mut drift = Vec::new();
    for (i, (name, seed)) in CHURN_PINNED_CASES.iter().enumerate() {
        let (out, summary) = run_churn_pinned(name, *seed);
        let got = churn_fingerprint(&out, &summary);
        let want = PINNED_CHURN[i].2;
        if got != want {
            drift.push(format!("(\"{name}\", {seed}, {got:#018x}) != {want:#018x}"));
        }
    }
    assert!(
        drift.is_empty(),
        "pinned churn fingerprints changed:\n{}",
        drift.join("\n")
    );
}

const PINNED_CHURN: [(&str, u64, u64); 4] = [
    ("gnp-churn", 1, 0x443c24bf21b2d369),
    ("tree-churn", 3, 0xe4bf85e47318fa80),
    ("tree-churn", 4, 0x2745995fb1ece220),
    ("grid-churn", 5, 0x5ac2ede07da7ce10),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property over random instances and random plans: the
    /// incrementally patched sync engine is bit-identical to the oracle
    /// rebuild (and the summaries agree).
    #[test]
    fn patched_matches_oracle_on_random_instances(
        n in 2usize..60,
        pr in 0.0f64..0.35,
        gseed in 0u64..300,
        pseed in 0u64..300,
        seed in 0u64..300,
        events in 1usize..10,
    ) {
        let g = generators::gnp(n, pr, gseed);
        let plan = ChurnPlan::random(&g, pseed, events, 6);
        let protocol = AsMulti(random_beeper(4, 2));
        let (a, sa) = run_sync_churn(&protocol, &g, seed, &plan.clone().with_mode(PatchMode::Incremental));
        let (b, sb) = run_sync_churn(&protocol, &g, seed, &plan.clone().with_mode(PatchMode::Rebuild));
        prop_assert_eq!(churn_fingerprint(&a, &sa), churn_fingerprint(&b, &sb));
        prop_assert_eq!(a.outputs, b.outputs);
    }
}

#[cfg(feature = "parallel")]
mod parallel {
    use super::*;
    use stoneage_sim::{MergeStrategy, ParallelPolicy};
    use stoneage_testkit::{adversarial_worker_counts as worker_counts, round_modes};

    fn run_sync_churn_par(
        protocol: &AsMulti<stoneage_core::TableProtocol>,
        g: &Graph,
        seed: u64,
        plan: &ChurnPlan,
        policy: &ParallelPolicy,
    ) -> (SyncOutcome, ChurnSummary) {
        let outcome = Simulation::sync(protocol, g)
            .seed(seed)
            .with_churn(plan)
            .parallel(*policy)
            .run()
            .expect("churn runs terminate");
        let summary = outcome.churn().expect("plan was set").clone();
        (outcome.into_sync_outcome().expect("sync backend"), summary)
    }

    fn run_scoped_churn_par(
        protocol: &Poke,
        g: &Graph,
        seed: u64,
        plan: &ChurnPlan,
        policy: &ParallelPolicy,
    ) -> (ScopedOutcome, ChurnSummary) {
        let outcome = Simulation::scoped(protocol, g)
            .seed(seed)
            .with_churn(plan)
            .parallel(*policy)
            .run()
            .expect("churn runs terminate");
        let summary = outcome.churn().expect("plan was set").clone();
        (
            outcome.into_scoped_outcome().expect("scoped backend"),
            summary,
        )
    }

    /// Contract 2: the full adversarial matrix — worker counts × round
    /// modes × patch modes — reproduces the serial churn outcome bit for
    /// bit, on both lockstep backends.
    #[test]
    fn parallel_churn_matrix_matches_serial() {
        let sync_p = AsMulti(random_beeper(5, 2));
        let poke = Poke::new();
        for (name, g) in graph_family() {
            for seed in 0..2 {
                let plan = plan_for(&g, 700 + seed);
                let (serial_sync, serial_sync_sum) = run_sync_churn(&sync_p, &g, seed, &plan);
                let (serial_scoped, serial_scoped_sum) = run_scoped_churn(&poke, &g, seed, &plan);
                for workers in worker_counts() {
                    for round in round_modes() {
                        for mode in [PatchMode::Incremental, PatchMode::Rebuild] {
                            let cell = plan.clone().with_mode(mode);
                            let policy =
                                ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                                    .with_round(round);
                            let ctx = format!("{name}/seed{seed}/w{workers}/{round:?}/{mode:?}");
                            let (p_out, p_sum) =
                                run_sync_churn_par(&sync_p, &g, seed, &cell, &policy);
                            assert_eq!(
                                sync_fingerprint(&p_out),
                                sync_fingerprint(&serial_sync),
                                "{ctx}: sync"
                            );
                            assert_eq!(p_sum, serial_sync_sum, "{ctx}: sync summary");
                            let (s_out, s_sum) =
                                run_scoped_churn_par(&poke, &g, seed, &cell, &policy);
                            assert_eq!(
                                scoped_fingerprint(&s_out),
                                scoped_fingerprint(&serial_scoped),
                                "{ctx}: scoped"
                            );
                            assert_eq!(s_sum, serial_scoped_sum, "{ctx}: scoped summary");
                        }
                    }
                }
            }
        }
    }

    /// The parallel path reproduces the pinned churn fingerprints at
    /// every worker count and in both round modes.
    #[test]
    fn parallel_reproduces_pinned_churn_fingerprints() {
        for (i, (name, seed)) in CHURN_PINNED_CASES.iter().enumerate() {
            let (g, p, plan) = stoneage_testkit::churn_pinned_case(name);
            let p = AsMulti(p);
            for workers in worker_counts() {
                for round in round_modes() {
                    let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                        .with_round(round);
                    let (out, summary) = run_sync_churn_par(&p, &g, *seed, &plan, &policy);
                    assert_eq!(
                        churn_fingerprint(&out, &summary),
                        PINNED_CHURN[i].2,
                        "{name}/seed{seed}/w{workers}/{round:?}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random instances × random plans × the parallel matrix: every
        /// cell matches the serial churn engine.
        #[test]
        fn parallel_churn_matches_serial_on_random_instances(
            n in 2usize..50,
            pr in 0.0f64..0.3,
            gseed in 0u64..200,
            pseed in 0u64..200,
            seed in 0u64..200,
            widx in 0usize..4,
            fused in 0usize..2,
        ) {
            let g = generators::gnp(n, pr, gseed);
            let plan = ChurnPlan::random(&g, pseed, 6, 5);
            let protocol = AsMulti(random_beeper(4, 2));
            let workers = worker_counts()[widx % worker_counts().len()];
            let round = round_modes()[fused];
            let policy = ParallelPolicy::forced(workers, MergeStrategy::DestinationSharded)
                .with_round(round);
            let (a, sa) = run_sync_churn(&protocol, &g, seed, &plan);
            let (b, sb) = run_sync_churn_par(&protocol, &g, seed, &plan, &policy);
            prop_assert_eq!(churn_fingerprint(&a, &sa), churn_fingerprint(&b, &sb));
        }
    }
}
