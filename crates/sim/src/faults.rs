//! Seeded, deterministic **message-fault injection** on the delivery
//! boundary of every backend.
//!
//! The stone-age model is pitched as robust to weak, unreliable
//! communication, but until this module the simulator only injected
//! *topology* faults ([`crate::churn`]) over perfectly reliable channels.
//! A [`FaultPlan`] describes per-edge channel faults — message loss,
//! duplication, and corruption ([`LinkFault`]) — with per-class rates,
//! and [`crate::Simulation::with_faults`] applies them at the single
//! point every backend already funnels deliveries through:
//!
//! * **sync / scoped** — the [`crate::pipeline`] delivery sinks. Phase-2a
//!   writes pass through a fault wrapper before they reach the serial
//!   replay buffer or a worker's sharded [`crate::parbuf::DeliveryBuffer`],
//!   so the frozen-read-plane bit-identity argument (serial ≡ joined ≡
//!   fused, any worker count) is preserved *by construction*: the fault
//!   decision for a delivery is a pure hash of `(plan seed, receiver
//!   slot, round, rule index)` and consumes no sequential RNG stream.
//! * **async** — the event emission site, after the adversary's arrival
//!   times are fixed: dropped deliveries are never enqueued, corrupted
//!   ones carry the substituted letter, duplicates are extra
//!   incarnation-stamped events scheduled FIFO-after the original. The
//!   decision hash uses the sender's step index as its time coordinate.
//!   Faulted runs always execute on the binary-heap scheduler (the
//!   calendar wheel's `DeliverRun` batching assumes one letter per run
//!   and pairwise-distinct slots, which duplication and corruption
//!   violate) — the same precedent churn set, and sound because the two
//!   schedulers are pinned bit-identical.
//!
//! Counting semantics: a faulted transmission still counts as *sent* (the
//! fault is on the channel, not the sender), `Drop` removes the port
//! write, `Duplicate(k)` adds `k` extra same-letter writes (observable
//! through overwrite-loss accounting in the async backend; idempotent but
//! counted on the lockstep last-letter ports), and `Corrupt(l)`
//! substitutes `l` for the transmitted letter. The accumulated
//! [`FaultSummary`] is surfaced on [`crate::Outcome`] and captured in
//! boundary snapshots (format version ≥ 2) so checkpoint/resume stays
//! bit-identical mid-plan.
//!
//! # Example
//!
//! ```
//! use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocolBuilder, Transitions};
//! use stoneage_graph::generators;
//! use stoneage_sim::{FaultPlan, LinkFault, Simulation};
//!
//! // Beep once, then output 1 + f_b(#beeps heard).
//! let mut b = TableProtocolBuilder::new("count", Alphabet::new(["beep"]), 3, Letter(0));
//! let start = b.add_state("start", Letter(0));
//! let listen = b.add_state("listen", Letter(0));
//! b.add_input_state(start);
//! b.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
//! for o in 0..=3 {
//!     let out = b.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
//!     b.set_transition(listen, o, Transitions::det(out, None));
//!     b.set_transition_all(out, Transitions::det(out, None));
//! }
//! let protocol = AsMulti(b.build().unwrap());
//! let graph = generators::cycle(8);
//!
//! // Drop 30% of all messages, corrupt 5%, and deterministically
//! // duplicate everything the channel 0 → 1 carries.
//! let plan = FaultPlan::new(11)
//!     .drop_rate(0.3)
//!     .corrupt_rate(0.05, Letter(0))
//!     .on_edge(0, 1, LinkFault::Duplicate(2), 1.0);
//! let outcome = Simulation::sync(&protocol, &graph)
//!     .seed(7)
//!     .with_faults(&plan)
//!     .run()
//!     .unwrap();
//! let faults = outcome.faults().expect("the fault layer was active");
//! assert_eq!(
//!     faults.injected(),
//!     faults.dropped + faults.duplicated + faults.corrupted
//! );
//! ```

use std::collections::HashMap;

use stoneage_core::Letter;
use stoneage_graph::{Graph, NodeId};

use crate::pipeline::DeliverySink;
use crate::splitmix64;

/// Salt deriving the dedicated fault-decision stream from the plan seed,
/// disjoint from every per-node RNG stream and the churn plan stream.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0000_0001;

/// One kind of channel fault a [`FaultPlan`] rule can inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkFault {
    /// The message is lost: the port write never happens.
    Drop,
    /// The message is delivered, followed by this many extra copies of
    /// the same letter on the same channel (FIFO-after the original in
    /// the async backend; idempotent but counted on lockstep ports).
    Duplicate(u8),
    /// The message is delivered as this letter instead.
    Corrupt(Letter),
}

/// Which channels one [`FaultPlan`] rule covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultScope {
    /// Every directed channel of the graph.
    AllEdges,
    /// The single directed channel `from → to`.
    Edge {
        /// The transmitting endpoint.
        from: NodeId,
        /// The receiving endpoint.
        to: NodeId,
    },
}

/// One rule of a [`FaultPlan`]: a fault class fired with probability
/// `rate` on every delivery its scope covers. Rules are evaluated in
/// plan order; the first rule that fires decides the delivery.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultRule {
    /// The channels this rule covers.
    pub scope: FaultScope,
    /// The fault injected when the rule fires.
    pub fault: LinkFault,
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
}

/// Why a [`FaultPlan`] cannot be applied to a run. Detected eagerly when
/// the plan is wired into an execution (surfaced as
/// [`crate::ExecError::Config`]) instead of panicking mid-run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultPlanError {
    /// A rule's rate is not a probability.
    Rate {
        /// Index of the offending rule.
        rule: usize,
        /// The out-of-range rate.
        rate: f64,
    },
    /// A `Corrupt` letter lies outside the protocol's alphabet.
    Letter {
        /// Index of the offending rule.
        rule: usize,
        /// The out-of-alphabet letter.
        letter: Letter,
        /// The alphabet size of the run.
        sigma: usize,
    },
    /// A `Duplicate` rule with zero extra copies (a no-op; almost
    /// certainly a mistake).
    Copies {
        /// Index of the offending rule.
        rule: usize,
    },
    /// An edge rule names a node outside the graph.
    Node {
        /// Index of the offending rule.
        rule: usize,
        /// The out-of-range node.
        node: NodeId,
        /// The node count of the graph.
        nodes: usize,
    },
    /// An edge rule targets a channel the graph does not have.
    UnknownEdge {
        /// Index of the offending rule.
        rule: usize,
        /// The transmitting endpoint.
        from: NodeId,
        /// The receiving endpoint.
        to: NodeId,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Rate { rule, rate } => {
                write!(f, "rule {rule}: rate {rate} is not in [0, 1]")
            }
            FaultPlanError::Letter {
                rule,
                letter,
                sigma,
            } => write!(
                f,
                "rule {rule}: corrupt letter {} is outside the alphabet (|Σ| = {sigma})",
                letter.0
            ),
            FaultPlanError::Copies { rule } => {
                write!(f, "rule {rule}: Duplicate(0) injects nothing")
            }
            FaultPlanError::Node { rule, node, nodes } => {
                write!(
                    f,
                    "rule {rule}: node {node} is outside the graph ({nodes} nodes)"
                )
            }
            FaultPlanError::UnknownEdge { rule, from, to } => {
                write!(f, "rule {rule}: the graph has no edge {from} → {to}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Converts a plan error into the builder's configuration error.
pub(crate) fn fault_config(e: FaultPlanError) -> crate::ExecError {
    crate::ExecError::Config {
        reason: format!("fault plan: {e}"),
    }
}

/// A seeded, deterministic schedule of channel faults, applied by
/// [`crate::Simulation::with_faults`]. See the [module docs](self) for
/// the decision function and the per-backend injection points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing its fault decisions from `seed`'s dedicated
    /// stream. An empty plan injects nothing and leaves every execution
    /// bit-identical to a fault-free run.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule covering `scope`.
    pub fn rule(mut self, scope: FaultScope, fault: LinkFault, rate: f64) -> Self {
        self.rules.push(FaultRule { scope, fault, rate });
        self
    }

    /// Drops every message with probability `rate`, on every channel.
    pub fn drop_rate(self, rate: f64) -> Self {
        self.rule(FaultScope::AllEdges, LinkFault::Drop, rate)
    }

    /// Duplicates every message (`copies` extra deliveries) with
    /// probability `rate`, on every channel.
    pub fn duplicate_rate(self, rate: f64, copies: u8) -> Self {
        self.rule(FaultScope::AllEdges, LinkFault::Duplicate(copies), rate)
    }

    /// Corrupts every message into `letter` with probability `rate`, on
    /// every channel.
    pub fn corrupt_rate(self, rate: f64, letter: Letter) -> Self {
        self.rule(FaultScope::AllEdges, LinkFault::Corrupt(letter), rate)
    }

    /// Appends a rule covering only the directed channel `from → to`.
    pub fn on_edge(self, from: NodeId, to: NodeId, fault: LinkFault, rate: f64) -> Self {
        self.rule(FaultScope::Edge { from, to }, fault, rate)
    }

    /// The seed of the dedicated fault-decision stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Validates the plan against a graph and an alphabet size,
    /// reporting the first offending rule. The executors run this
    /// eagerly before the first round/step.
    pub fn validate(&self, graph: &Graph, sigma: usize) -> Result<(), FaultPlanError> {
        let n = graph.node_count();
        for (i, r) in self.rules.iter().enumerate() {
            if !(r.rate.is_finite() && (0.0..=1.0).contains(&r.rate)) {
                return Err(FaultPlanError::Rate {
                    rule: i,
                    rate: r.rate,
                });
            }
            match r.fault {
                LinkFault::Corrupt(l) if (l.0 as usize) >= sigma => {
                    return Err(FaultPlanError::Letter {
                        rule: i,
                        letter: l,
                        sigma,
                    });
                }
                LinkFault::Duplicate(0) => {
                    return Err(FaultPlanError::Copies { rule: i });
                }
                _ => {}
            }
            if let FaultScope::Edge { from, to } = r.scope {
                for node in [from, to] {
                    if node as usize >= n {
                        return Err(FaultPlanError::Node {
                            rule: i,
                            node,
                            nodes: n,
                        });
                    }
                }
                if from == to || !graph.has_edge(from, to) {
                    return Err(FaultPlanError::UnknownEdge { rule: i, from, to });
                }
            }
        }
        Ok(())
    }
}

/// Accumulated fault-layer counters of one run: how many deliveries the
/// layer examined and how many faults of each class fired. Surfaced on
/// [`crate::Outcome`] whenever a plan (even an empty one) was wired in,
/// and captured bit-exactly in boundary snapshots — `evaluated` is the
/// plan cursor a resumed run continues its accounting from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Deliveries examined against the plan (the plan cursor).
    pub evaluated: u64,
    /// `Drop` faults fired (deliveries lost).
    pub dropped: u64,
    /// `Duplicate` faults fired (each injecting its extra copies).
    pub duplicated: u64,
    /// `Corrupt` faults fired (letters substituted).
    pub corrupted: u64,
}

impl FaultSummary {
    /// Total faults injected, over all classes.
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.corrupted
    }

    /// Folds another tally into this one (worker-tally merge; addition,
    /// so any merge order produces the same sums).
    #[cfg_attr(not(any(test, feature = "parallel")), allow(dead_code))]
    pub(crate) fn merge(&mut self, other: &FaultSummary) {
        self.evaluated += other.evaluated;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
    }
}

/// A compiled, validated fault plan: the per-slot rule tables the
/// per-delivery decision reads. Immutable once built (workers share it
/// by reference), and decision state-free — see [`FaultCtx::decide`].
#[derive(Debug)]
pub(crate) struct FaultCtx {
    /// `splitmix64(seed ^ salt)`: the dedicated decision stream.
    stream: u64,
    /// Rules covering every channel, as `(plan index, fault, rate)`.
    global: Vec<(u32, LinkFault, f64)>,
    /// Channels with edge-specific rules: the *full* applicable rule
    /// list (global ∪ edge) in plan order, keyed by receiver slot.
    per_slot: HashMap<u32, Vec<(u32, LinkFault, f64)>>,
    /// Senders with at least one covered outgoing channel.
    sender_touched: Vec<bool>,
    /// Whether a global rule covers every sender.
    all: bool,
}

impl FaultCtx {
    /// Validates `plan` against the run and compiles the decision
    /// tables. `sigma` is the protocol's alphabet size.
    pub(crate) fn new(
        plan: &FaultPlan,
        graph: &Graph,
        sigma: usize,
    ) -> Result<FaultCtx, FaultPlanError> {
        plan.validate(graph, sigma)?;
        let n = graph.node_count();
        let mut global = Vec::new();
        let mut edge_rules: Vec<(u32, u32, LinkFault, f64)> = Vec::new();
        let mut sender_touched = vec![false; n];
        for (i, r) in plan.rules().iter().enumerate() {
            match r.scope {
                FaultScope::AllEdges => global.push((i as u32, r.fault, r.rate)),
                FaultScope::Edge { from, to } => {
                    let k = graph
                        .neighbors(to)
                        .iter()
                        .position(|&u| u == from)
                        .expect("validate() checked the edge exists");
                    let slot = (graph.csr_offset(to) + k) as u32;
                    edge_rules.push((i as u32, slot, r.fault, r.rate));
                    sender_touched[from as usize] = true;
                }
            }
        }
        // Channels with edge rules get their full applicable rule list
        // (plan order), so `decide` walks exactly one table either way.
        let mut per_slot: HashMap<u32, Vec<(u32, LinkFault, f64)>> = HashMap::new();
        for &(_, slot, _, _) in &edge_rules {
            per_slot.entry(slot).or_insert_with(|| {
                let mut rules: Vec<(u32, LinkFault, f64)> = global.clone();
                rules.extend(
                    edge_rules
                        .iter()
                        .filter(|&&(_, s, _, _)| s == slot)
                        .map(|&(i, _, f, r)| (i, f, r)),
                );
                rules.sort_by_key(|&(i, _, _)| i);
                rules
            });
        }
        Ok(FaultCtx {
            stream: splitmix64(plan.seed() ^ FAULT_STREAM_SALT),
            all: !global.is_empty(),
            global,
            per_slot,
            sender_touched,
        })
    }

    /// Whether any rule covers any outgoing channel of `v` — the fast
    /// path gate letting unaffected broadcasts skip the per-port
    /// decision loop entirely.
    #[inline]
    pub(crate) fn affects_sender(&self, v: NodeId) -> bool {
        self.all || self.sender_touched[v as usize]
    }

    /// The fault (if any) injected on the delivery into receiver `slot`
    /// at time coordinate `tindex` (the round for lockstep backends, the
    /// sender's step index for async). A pure hash of `(stream, slot,
    /// tindex, rule index)` — no sequential RNG — so any evaluation
    /// order (serial, per-worker, resumed) reaches identical decisions.
    #[inline]
    pub(crate) fn decide(&self, slot: u32, tindex: u64) -> Option<LinkFault> {
        let rules = match self.per_slot.get(&slot) {
            Some(rules) => rules.as_slice(),
            None => self.global.as_slice(),
        };
        for &(ri, fault, rate) in rules {
            if self.u01(slot, tindex, ri) < rate {
                return Some(fault);
            }
        }
        None
    }

    /// A uniform draw in `[0, 1)` for one `(slot, tindex, rule)` cell.
    #[inline]
    fn u01(&self, slot: u32, tindex: u64, ri: u32) -> f64 {
        let mut x = splitmix64(self.stream ^ slot as u64);
        x = splitmix64(x ^ tindex);
        x = splitmix64(x ^ ri as u64);
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The fault plumbing one lockstep execution carries: the compiled plan
/// (if any) and the accumulated tally, seeded from a resume snapshot
/// when the run continues mid-plan.
pub(crate) struct FaultLayer<'f> {
    pub(crate) ctx: Option<&'f FaultCtx>,
    pub(crate) tally: FaultSummary,
}

impl<'f> FaultLayer<'f> {
    pub(crate) fn new(ctx: Option<&'f FaultCtx>, tally: FaultSummary) -> Self {
        FaultLayer { ctx, tally }
    }

    /// Wraps a round's delivery sink in the fault filter.
    pub(crate) fn sink<'a, Sk: DeliverySink>(
        &'a mut self,
        inner: &'a mut Sk,
        round: u64,
    ) -> FaultSink<'a, Sk> {
        FaultSink {
            inner,
            ctx: self.ctx,
            tindex: round,
            tally: &mut self.tally,
        }
    }

    /// The tally as captured into boundary snapshots: present exactly
    /// when a plan is wired in.
    pub(crate) fn capture(&self) -> Option<FaultSummary> {
        self.ctx.map(|_| self.tally)
    }

    /// Folds a worker's round tally into the run tally.
    #[cfg(feature = "parallel")]
    pub(crate) fn absorb(&mut self, worker: &FaultSummary) {
        self.tally.merge(worker);
    }
}

/// A [`DeliverySink`] adapter applying the fault decisions between
/// phase-2a resolution and the underlying buffer. With no plan wired in
/// it forwards verbatim; with one, covered broadcasts decompose into
/// per-port decisions (the transmission still counts as one send).
pub(crate) struct FaultSink<'a, Sk> {
    inner: &'a mut Sk,
    ctx: Option<&'a FaultCtx>,
    tindex: u64,
    tally: &'a mut FaultSummary,
}

impl<'a, Sk: DeliverySink> FaultSink<'a, Sk> {
    /// Wraps one worker's sink for one round (the parallel schedules
    /// hold per-worker tallies and absorb them after the join).
    #[cfg(feature = "parallel")]
    pub(crate) fn wrap(
        inner: &'a mut Sk,
        ctx: Option<&'a FaultCtx>,
        tindex: u64,
        tally: &'a mut FaultSummary,
    ) -> Self {
        FaultSink {
            inner,
            ctx,
            tindex,
            tally,
        }
    }

    /// Applies the decision for one delivery into `slot`.
    #[inline]
    fn apply(&mut self, ctx: &FaultCtx, u: NodeId, slot: usize, letter: Letter) {
        self.tally.evaluated += 1;
        match ctx.decide(slot as u32, self.tindex) {
            None => self.inner.send_one(u, slot, letter),
            Some(LinkFault::Drop) => self.tally.dropped += 1,
            Some(LinkFault::Duplicate(k)) => {
                // Lockstep ports hold only the last letter, so the extra
                // copies are idempotent — but they are the same (node,
                // slot, letter) write, so replaying them in any schedule
                // preserves the parbuf order-independence argument.
                for _ in 0..=k {
                    self.inner.send_one(u, slot, letter);
                }
                self.tally.duplicated += 1;
            }
            Some(LinkFault::Corrupt(l)) => {
                self.inner.send_one(u, slot, l);
                self.tally.corrupted += 1;
            }
        }
    }
}

impl<Sk: DeliverySink> DeliverySink for FaultSink<'_, Sk> {
    #[inline]
    fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter) {
        let Some(ctx) = self.ctx else {
            return self.inner.broadcast(graph, v, letter);
        };
        if !ctx.affects_sender(v) {
            return self.inner.broadcast(graph, v, letter);
        }
        // The transmission happened; the faults are on the channels.
        self.inner.note_sent();
        let nbrs = graph.neighbors(v);
        let rev = graph.reverse_ports(v);
        for (&u, &rp) in nbrs.iter().zip(rev) {
            self.apply(ctx, u, graph.csr_offset(u) + rp as usize, letter);
        }
    }

    #[inline]
    fn send_one(&mut self, u: NodeId, slot: usize, letter: Letter) {
        // `u` is the *receiver* here (scoped port-selected sends land
        // through this method), so the gate is per-channel: a global
        // rule or an edge rule on this very slot.
        match self.ctx {
            Some(ctx) if ctx.all || ctx.per_slot.contains_key(&(slot as u32)) => {
                self.apply(ctx, u, slot, letter)
            }
            Some(_) | None => self.inner.send_one(u, slot, letter),
        }
    }

    #[inline]
    fn note_sent(&mut self) {
        self.inner.note_sent();
    }
}

/// The async emission-site fault application: evaluates every channel of
/// `v`'s step-`t` broadcast and fills `out` with the deliveries to
/// enqueue as `(receiver, receiver slot, arrival, letter)`. `arrivals`
/// are the adversary's (already FIFO-bumped) per-port arrival times;
/// extra `Duplicate` copies are scheduled FIFO-after the original by
/// advancing the sender-side `last_arrival` watermark with the same bump
/// the FIFO rule uses, so later transmissions on the edge stay ordered
/// after them. Only called when [`FaultCtx::affects_sender`] holds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn faulted_sends(
    ctx: &FaultCtx,
    tally: &mut FaultSummary,
    graph: &Graph,
    last_arrival: &mut [f64],
    v: NodeId,
    t: u64,
    arrivals: &[f64],
    letter: Letter,
    out: &mut Vec<(NodeId, u32, f64, Letter)>,
) {
    out.clear();
    let nbrs = graph.neighbors(v);
    let rev = graph.reverse_ports(v);
    let base = graph.csr_offset(v);
    for (k, (&u, &rp)) in nbrs.iter().zip(rev).enumerate() {
        let slot = (graph.csr_offset(u) + rp as usize) as u32;
        tally.evaluated += 1;
        match ctx.decide(slot, t) {
            None => out.push((u, slot, arrivals[k], letter)),
            Some(LinkFault::Drop) => tally.dropped += 1,
            Some(LinkFault::Duplicate(d)) => {
                out.push((u, slot, arrivals[k], letter));
                for _ in 0..d {
                    let a = last_arrival[base + k] * (1.0 + 1e-12) + 1e-12;
                    last_arrival[base + k] = a;
                    out.push((u, slot, a, letter));
                }
                tally.duplicated += 1;
            }
            Some(LinkFault::Corrupt(l)) => {
                out.push((u, slot, arrivals[k], l));
                tally.corrupted += 1;
            }
        }
    }
}

/// The builder-to-executor fault wiring: the plan to compile and the
/// out-slot the run's final [`FaultSummary`] is written into.
pub(crate) struct FaultWire<'a> {
    pub(crate) plan: &'a FaultPlan,
    pub(crate) out: &'a mut Option<FaultSummary>,
}

/// The optional fault argument every executor entry point takes.
pub(crate) type FaultsArg<'a> = Option<FaultWire<'a>>;

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::generators;

    #[test]
    fn validation_catches_bad_rules() {
        let g = generators::cycle(4);
        let bad_rate = FaultPlan::new(1).drop_rate(1.5);
        assert!(matches!(
            bad_rate.validate(&g, 3),
            Err(FaultPlanError::Rate { rule: 0, .. })
        ));
        let nan = FaultPlan::new(1).drop_rate(f64::NAN);
        assert!(matches!(
            nan.validate(&g, 3),
            Err(FaultPlanError::Rate { .. })
        ));
        let bad_letter = FaultPlan::new(1).corrupt_rate(0.5, Letter(3));
        assert!(matches!(
            bad_letter.validate(&g, 3),
            Err(FaultPlanError::Letter {
                rule: 0,
                sigma: 3,
                ..
            })
        ));
        let no_copies = FaultPlan::new(1).duplicate_rate(0.5, 0);
        assert!(matches!(
            no_copies.validate(&g, 3),
            Err(FaultPlanError::Copies { rule: 0 })
        ));
        let bad_node = FaultPlan::new(1).on_edge(0, 9, LinkFault::Drop, 0.5);
        assert!(matches!(
            bad_node.validate(&g, 3),
            Err(FaultPlanError::Node {
                rule: 0,
                node: 9,
                ..
            })
        ));
        // cycle(4): 0 — 1 — 2 — 3 — 0; (0, 2) is not an edge.
        let no_edge = FaultPlan::new(1).on_edge(0, 2, LinkFault::Drop, 0.5);
        assert!(matches!(
            no_edge.validate(&g, 3),
            Err(FaultPlanError::UnknownEdge {
                rule: 0,
                from: 0,
                to: 2
            })
        ));
        // The first offending rule is reported.
        let second = FaultPlan::new(1).drop_rate(0.5).drop_rate(-0.1);
        assert!(matches!(
            second.validate(&g, 3),
            Err(FaultPlanError::Rate { rule: 1, .. })
        ));
        let fine = FaultPlan::new(1)
            .drop_rate(0.0)
            .duplicate_rate(1.0, 3)
            .corrupt_rate(0.25, Letter(2))
            .on_edge(0, 1, LinkFault::Drop, 1.0);
        assert!(fine.validate(&g, 3).is_ok());
    }

    #[test]
    fn decisions_are_pure_functions_of_the_cell() {
        let g = generators::complete(5);
        let plan = FaultPlan::new(42)
            .drop_rate(0.5)
            .corrupt_rate(0.5, Letter(0));
        let a = FaultCtx::new(&plan, &g, 2).unwrap();
        let b = FaultCtx::new(&plan, &g, 2).unwrap();
        for slot in 0..g.port_slot_count() as u32 {
            for t in 0..64 {
                assert_eq!(a.decide(slot, t), b.decide(slot, t));
            }
        }
        // A different seed produces a different schedule somewhere.
        let c = FaultCtx::new(
            &FaultPlan::new(43)
                .drop_rate(0.5)
                .corrupt_rate(0.5, Letter(0)),
            &g,
            2,
        )
        .unwrap();
        let differs = (0..g.port_slot_count() as u32)
            .any(|s| (0..64).any(|t| a.decide(s, t) != c.decide(s, t)));
        assert!(differs);
    }

    #[test]
    fn rate_extremes_are_exact() {
        let g = generators::complete(4);
        let never = FaultCtx::new(&FaultPlan::new(7).drop_rate(0.0), &g, 2).unwrap();
        let always = FaultCtx::new(&FaultPlan::new(7).drop_rate(1.0), &g, 2).unwrap();
        for slot in 0..g.port_slot_count() as u32 {
            for t in 0..32 {
                assert_eq!(never.decide(slot, t), None);
                assert_eq!(always.decide(slot, t), Some(LinkFault::Drop));
            }
        }
    }

    #[test]
    fn first_firing_rule_wins_and_edge_rules_merge_in_plan_order() {
        let g = generators::cycle(4);
        // Rule 0 always fires globally; the edge rule can never win.
        let plan =
            FaultPlan::new(9)
                .drop_rate(1.0)
                .on_edge(0, 1, LinkFault::Corrupt(Letter(0)), 1.0);
        let ctx = FaultCtx::new(&plan, &g, 2).unwrap();
        // Slot of the channel 0 → 1 (receiver 1's port facing 0).
        let k = g.neighbors(1).iter().position(|&u| u == 0).unwrap();
        let slot = (g.csr_offset(1) + k) as u32;
        assert_eq!(ctx.decide(slot, 5), Some(LinkFault::Drop));
        // Reversed plan order: the edge rule shadows the global one on
        // its channel, while other channels still drop.
        let plan = FaultPlan::new(9)
            .on_edge(0, 1, LinkFault::Corrupt(Letter(0)), 1.0)
            .drop_rate(1.0);
        let ctx = FaultCtx::new(&plan, &g, 2).unwrap();
        assert_eq!(ctx.decide(slot, 5), Some(LinkFault::Corrupt(Letter(0))));
        assert_eq!(ctx.decide(slot ^ 1, 5), Some(LinkFault::Drop));
    }

    #[test]
    fn affects_sender_gates_the_slow_path() {
        let g = generators::cycle(6);
        let edge_only = FaultCtx::new(
            &FaultPlan::new(3).on_edge(2, 3, LinkFault::Drop, 1.0),
            &g,
            2,
        )
        .unwrap();
        assert!(edge_only.affects_sender(2));
        assert!(!edge_only.affects_sender(3));
        assert!(!edge_only.affects_sender(0));
        let global = FaultCtx::new(&FaultPlan::new(3).drop_rate(0.1), &g, 2).unwrap();
        for v in 0..6 {
            assert!(global.affects_sender(v));
        }
        let empty = FaultCtx::new(&FaultPlan::new(3), &g, 2).unwrap();
        for v in 0..6 {
            assert!(!empty.affects_sender(v));
        }
    }

    #[test]
    fn summary_merge_is_componentwise_addition() {
        let mut a = FaultSummary {
            evaluated: 10,
            dropped: 1,
            duplicated: 2,
            corrupted: 3,
        };
        let b = FaultSummary {
            evaluated: 5,
            dropped: 4,
            duplicated: 0,
            corrupted: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FaultSummary {
                evaluated: 15,
                dropped: 5,
                duplicated: 2,
                corrupted: 4,
            }
        );
        assert_eq!(a.injected(), 11);
    }

    #[test]
    fn plan_error_messages_render() {
        let e = FaultPlanError::Rate { rule: 2, rate: 1.5 };
        assert!(e.to_string().contains("rate 1.5"));
        let e = FaultPlanError::UnknownEdge {
            rule: 0,
            from: 3,
            to: 7,
        };
        assert!(e.to_string().contains("3 → 7"));
    }
}
