//! The fully asynchronous event-driven executor.
//!
//! Implements the execution semantics of the paper's Section 2 faithfully:
//!
//! * node `v`'s step `t` lasts `L_{v,t}` time (adversary-chosen); the
//!   transition function is applied instantaneously at the end of the step;
//! * a transmitted letter is delivered to the port `ψ_u(v)` of each
//!   neighbor `u` after a delay `D_{v,t,u}` (adversary-chosen), subject to
//!   per-edge FIFO order;
//! * a port stores **only the last delivered letter** — there is no buffer,
//!   so a message can be overwritten before the receiver ever observes it
//!   (the executor counts these losses);
//! * at its step, a node observes `f_b(#λ(q))`, the truncated count of its
//!   query letter over its ports.
//!
//! The run-time is reported both as raw completion time and normalized by
//! the largest `L`/`D` parameter consumed — the paper's **time unit**.
//!
//! # Scheduling
//!
//! Two schedulers drive the event loop, selected by
//! [`AsyncConfig::scheduler`]:
//!
//! * [`SchedulerKind::CalendarWheel`] (the default) — the hierarchical
//!   timing wheel of [`crate::schedule`]. Pushes and pops are O(1)
//!   amortized, and a broadcast's same-arrival-time deliveries are
//!   **batched per edge run**: one bucket entry drains a whole run with a
//!   single [`FlatPorts`] write pass instead of one heap pop per letter
//!   (under quantized or lockstep-like latency schedules this collapses a
//!   `deg(v)`-way fan-out into one event). On top of the per-edge runs,
//!   the drain **coalesces per receiver**: consecutive same-instant
//!   deliveries *to one node* from different senders merge their
//!   pending-flag and count updates into a single grouped write pass
//!   ([`FlatPorts::deliver_run`]) — safe because per-edge FIFO makes
//!   same-instant slots distinct, so the grouped application is
//!   bit-identical to the heap path's per-letter order.
//! * [`SchedulerKind::BinaryHeap`] — the original single global
//!   `BinaryHeap<Reverse<Event>>`, preserved verbatim as the differential
//!   oracle and benchmark baseline; its push/pop costs the `O(log m)`
//!   factor the wheel removes.
//!
//! Both paths share every piece of execution state and apply events in the
//! **exact same `(time, seq)` order**: the wheel orders candidate events
//! of the current bucket by their exact time and tie-breaking sequence
//! number, and batches occupy contiguous `seq` ranges, so no foreign event
//! can interleave a batch that the heap would have split. Outcomes are
//! bit-identical per seed — pinned by differential and fingerprint tests
//! in `tests/async_wheel.rs`.
//!
//! Delivery runs on the flat engine ([`crate::engine`]): each transmission
//! resolves its receiver-side port slot through the graph's precomputed
//! reverse-port map at *enqueue* time, and a step's observation reads the
//! incrementally maintained letter count in O(1) instead of scanning the
//! node's ports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{BoundedCount, Fsm, Letter};
use stoneage_graph::{Graph, NodeId};

use crate::engine::FlatPorts;
use crate::faults::{faulted_sends, FaultLayer, FaultSummary, FaultsArg};
use crate::schedule::CalendarQueue;
use crate::snapshot::{
    self, AsyncCapture, BacklogEvent, BacklogKind, SnapArgs, Snapshot, SnapshotError,
};
use crate::sync_exec::compile_faults;
use crate::{splitmix64, Adversary, ExecError};

/// Which event queue drives the asynchronous executor. See the module
/// docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The calendar-queue / hierarchical timing wheel of
    /// [`crate::schedule`], with per-edge batched delivery.
    #[default]
    CalendarWheel,
    /// The preserved global binary-heap path: the differential oracle and
    /// benchmark baseline.
    BinaryHeap,
}

/// Configuration of an asynchronous execution.
#[derive(Clone, Copy, Debug)]
pub struct AsyncConfig {
    /// Master seed for the per-node protocol RNGs (the adversary carries
    /// its own seed — obliviousness demands the streams be independent).
    pub seed: u64,
    /// Event budget: exceeding it aborts with [`ExecError::EventLimit`].
    pub max_events: u64,
    /// Event queue driving the run. Outcomes are bit-identical across
    /// kinds; only throughput differs.
    pub scheduler: SchedulerKind,
    /// Explicit calendar bucket width in simulated time units, overriding
    /// the executor's estimate (see [`crate::schedule`] for the
    /// trade-off). Ignored by the heap scheduler. Performance-only: it
    /// cannot affect outcomes.
    pub bucket_width: Option<f64>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            seed: 0,
            max_events: 200_000_000,
            scheduler: SchedulerKind::CalendarWheel,
            bucket_width: None,
        }
    }
}

impl AsyncConfig {
    /// A config with the given seed and the default event budget.
    pub fn seeded(seed: u64) -> Self {
        AsyncConfig {
            seed,
            ..Default::default()
        }
    }

    /// This config with the given scheduler kind.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Result of an asynchronous execution that reached an output
/// configuration.
#[derive(Clone, Debug)]
pub struct AsyncOutcome {
    /// Per-node outputs, decoded from the output states.
    pub outputs: Vec<u64>,
    /// Raw time at which the first output configuration was reached.
    pub completion_time: f64,
    /// The paper's **time unit**: the largest step-length or delay
    /// parameter consumed before completion.
    pub time_unit: f64,
    /// `completion_time / time_unit` — the paper's run-time measure
    /// `T_Π(I, A, R)`.
    pub normalized_time: f64,
    /// Total node steps executed.
    pub total_steps: u64,
    /// Total non-`ε` transmissions (each fans out to all neighbors).
    pub messages_sent: u64,
    /// Total port writes.
    pub deliveries: u64,
    /// Deliveries that overwrote a letter the receiving node had not yet
    /// had a step to observe — messages *lost* to the no-buffer semantics.
    pub lost_overwrites: u64,
}

/// Events of the preserved binary-heap path: one entry per delivery.
#[derive(Clone, Copy, Debug)]
enum HeapKind {
    /// Node applies its next transition.
    Step(NodeId),
    /// A letter lands in the flat port store at `slot` (a CSR slot of
    /// `node`, precomputed from the reverse-port map at transmission
    /// time — no lookup happens at delivery time).
    Deliver {
        node: NodeId,
        slot: u32,
        letter: Letter,
    },
}

/// Events of the calendar-wheel path. Identical to [`HeapKind`] except
/// that a run of same-arrival-time deliveries of one broadcast collapses
/// into a single [`WheelKind::DeliverRun`] occupying the run's contiguous
/// `seq` range.
#[derive(Clone, Copy, Debug)]
enum WheelKind {
    /// Node applies its next transition.
    Step(NodeId),
    /// A single delivery (run of length 1), slot precomputed.
    Deliver {
        node: NodeId,
        slot: u32,
        letter: Letter,
    },
    /// Deliveries to neighbors `from..from + len` of `v` (sender-side
    /// port indices), all arriving at the same instant: drained with one
    /// flat write pass. Consumes `len` consecutive `seq` values starting
    /// at the event's own.
    DeliverRun {
        v: NodeId,
        from: u32,
        len: u32,
        letter: Letter,
    },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: HeapKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Hook invoked by the asynchronous executor after every applied node
/// step, with the event time and the node's post-transition state. Used
/// by the Lemma 3.2 / (S1) validation tests to watch phase skew between
/// neighbors without touching the engine. Subsumed by the unified
/// [`crate::sim::Observer`]; kept so existing observers keep compiling
/// (adapt them with [`crate::sim::AdaptAsync`]).
pub trait AsyncObserver<S> {
    /// Called after node `v` applied its step `t` at time `time`.
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S);

    /// Called with each checkpoint snapshot the executor captures (only
    /// when [`crate::Simulation::checkpoint_every`] is set). The default
    /// does nothing.
    fn on_checkpoint(&mut self, _snapshot: &Snapshot) {}
}

impl<S, O: AsyncObserver<S> + ?Sized> AsyncObserver<S> for &mut O {
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        (**self).on_step(time, v, t, state);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        (**self).on_checkpoint(snapshot);
    }
}

/// An observer that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopAsyncObserver;

impl<S> AsyncObserver<S> for NoopAsyncObserver {
    fn on_step(&mut self, _time: f64, _v: NodeId, _t: u64, _state: &S) {}
}

/// The shared execution state of both scheduler paths: everything except
/// the event queue itself. Keeping it single ensures the wheel rewrite
/// cannot drift from the preserved heap semantics.
struct Exec<'a, P: Fsm> {
    protocol: &'a P,
    graph: &'a Graph,
    b: u8,
    states: Vec<P::State>,
    /// Flat CSR-indexed port store with incremental per-letter counts:
    /// a step's observation is an O(1) count lookup, not a port scan.
    ports: FlatPorts,
    /// `pending[slot]`: a letter arrived at this port after the owner's
    /// last step. Flat, same CSR layout as the port store.
    pending: Vec<bool>,
    /// FIFO watermark per directed edge, indexed by the *sender's* CSR
    /// slot for `v → neighbors(v)[k]`.
    last_arrival: Vec<f64>,
    rngs: Vec<SmallRng>,
    step_counts: Vec<u64>,
    unfinished: usize,
    max_param: f64,
    total_steps: u64,
    messages_sent: u64,
    deliveries: u64,
    lost_overwrites: u64,
}

impl<'a, P: Fsm> Exec<'a, P> {
    fn new(protocol: &'a P, graph: &'a Graph, inputs: &[usize], seed: u64) -> Self {
        let n = graph.node_count();
        let sigma = protocol.alphabet().len();
        let sigma0 = protocol.initial_letter();
        let states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
        let unfinished = states
            .iter()
            .filter(|q| protocol.output(q).is_none())
            .count();
        Exec {
            protocol,
            graph,
            b: protocol.bound(),
            states,
            ports: FlatPorts::new(graph, sigma, sigma0),
            pending: vec![false; graph.port_slot_count()],
            last_arrival: vec![0.0; graph.port_slot_count()],
            rngs: (0..n as u64)
                .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v ^ 0xABCD))))
                .collect(),
            step_counts: vec![1; n],
            unfinished,
            max_param: 0.0,
            total_steps: 0,
            messages_sent: 0,
            deliveries: 0,
            lost_overwrites: 0,
        }
    }

    /// Splices a decoded snapshot into a fresh engine: every field the
    /// capture serialized, with the port counts recomputed canonically
    /// from the letter array.
    fn from_resume(
        protocol: &'a P,
        graph: &'a Graph,
        res: snapshot::AsyncResume<P::State>,
    ) -> Self {
        Exec {
            protocol,
            graph,
            b: protocol.bound(),
            states: res.states,
            ports: FlatPorts::from_letters(graph, protocol.alphabet().len(), res.letters),
            pending: res.pending,
            last_arrival: res.last_arrival,
            rngs: res.rngs,
            step_counts: res.step_counts,
            unfinished: res.unfinished as usize,
            max_param: res.max_param,
            total_steps: res.total_steps,
            messages_sent: res.messages_sent,
            deliveries: res.deliveries,
            lost_overwrites: res.lost_overwrites,
        }
    }

    /// Serializes a step boundary into a [`Snapshot`]: the shared state
    /// plus the loop counters and the caller-collected event backlog.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint<S2>(
        &self,
        snap: &SnapArgs<'_, P::State>,
        events: u64,
        seq: u64,
        churn: Option<(&[u32], u64)>,
        faults: Option<FaultSummary>,
        backlog: Vec<BacklogEvent>,
        observer: &mut S2,
    ) where
        S2: AsyncObserver<P::State> + ?Sized,
    {
        let codec = snap.codec();
        let s = snapshot::encode_async(
            snap.meta,
            &codec,
            AsyncCapture {
                total_steps: self.total_steps,
                events,
                seq,
                messages_sent: self.messages_sent,
                deliveries: self.deliveries,
                lost_overwrites: self.lost_overwrites,
                max_param: self.max_param,
                unfinished: self.unfinished as u64,
                states: &self.states,
                letters: self.ports.letters(),
                pending: &self.pending,
                last_arrival: &self.last_arrival,
                step_counts: &self.step_counts,
                rngs: &self.rngs,
                churn,
                faults,
                backlog,
            },
        );
        observer.on_checkpoint(&s);
    }

    /// One port write with overwrite-loss accounting.
    #[inline]
    fn deliver(&mut self, node: NodeId, slot: usize, letter: Letter) {
        if self.pending[slot] {
            self.lost_overwrites += 1;
        }
        self.pending[slot] = true;
        self.ports.deliver(node as usize, slot, letter);
        self.deliveries += 1;
    }

    /// Applies a group of same-instant deliveries **to one receiver**
    /// (from different senders) with a single count-update pass — the
    /// wheel loop's per-receiver coalescing. The slots are pairwise
    /// distinct (per-edge FIFO forbids two same-instant arrivals on one
    /// directed edge), so the pending flags, overwrite-loss accounting,
    /// letter swaps, and net count deltas are all order-independent:
    /// the result is bit-identical to per-letter [`Exec::deliver`] calls
    /// in the heap path's order.
    #[inline]
    fn deliver_grouped(
        &mut self,
        node: NodeId,
        writes: &[(u32, Letter)],
        deltas: &mut Vec<(u16, i64)>,
    ) {
        for &(slot, _) in writes {
            let slot = slot as usize;
            if self.pending[slot] {
                self.lost_overwrites += 1;
            }
            self.pending[slot] = true;
        }
        self.ports.deliver_run(node as usize, writes, deltas);
        self.deliveries += writes.len() as u64;
    }

    /// Applies node `v`'s pending transition: clears its pending marks,
    /// observes the query-letter count, samples δ, and maintains the
    /// undecided counter. Returns the step index and the emission.
    #[inline]
    fn apply_step(&mut self, v: NodeId) -> (u64, Option<Letter>) {
        let vi = v as usize;
        let t = self.step_counts[vi];
        self.total_steps += 1;
        let base = self.graph.csr_offset(v);
        self.pending[base..base + self.graph.degree(v)]
            .iter_mut()
            .for_each(|p| *p = false);

        let query = self.protocol.query(&self.states[vi]);
        let count = self.ports.count(vi, query) as usize;
        let transitions = self
            .protocol
            .delta(&self.states[vi], BoundedCount::from_count(count, self.b));
        let (next, emission) = transitions.sample(&mut self.rngs[vi]);
        let was_output = self.protocol.output(&self.states[vi]).is_some();
        let is_output = self.protocol.output(next).is_some();
        self.states[vi] = next.clone();
        match (was_output, is_output) {
            (false, true) => self.unfinished -= 1,
            (true, false) => self.unfinished += 1,
            _ => {}
        }
        (t, *emission)
    }

    /// Computes the FIFO-bumped arrival time of `v`'s step-`t` broadcast
    /// at every neighbor, in port order, into `arrivals`. The delay draws,
    /// `max_param` folding, and the per-edge watermark update are the
    /// single transcription both scheduler paths share.
    fn compute_arrivals<A: Adversary + ?Sized>(
        &mut self,
        adversary: &A,
        v: NodeId,
        t: u64,
        now: f64,
        arrivals: &mut Vec<f64>,
    ) {
        let nbrs = self.graph.neighbors(v);
        let base = self.graph.csr_offset(v);
        arrivals.clear();
        arrivals.resize(nbrs.len(), 0.0);
        adversary.fill_delays(v, t, nbrs, arrivals);
        for (k, a) in arrivals.iter_mut().enumerate() {
            let d = *a;
            debug_assert!(
                d.is_finite() && d >= 0.0,
                "adversary delay must be finite and non-negative, got {d} for \
                 step {t} of node {v} toward port {k}"
            );
            self.max_param = self.max_param.max(d);
            // FIFO: never deliver before an earlier transmission on the
            // same directed edge.
            let mut arrival = now + d;
            if arrival <= self.last_arrival[base + k] {
                arrival = self.last_arrival[base + k] * (1.0 + 1e-12) + 1e-12;
            }
            self.last_arrival[base + k] = arrival;
            *a = arrival;
        }
    }

    /// The next step length for `(v, t)`, folded into the time unit.
    #[inline]
    fn step_length<A: Adversary + ?Sized>(&mut self, adversary: &A, v: NodeId, t: u64) -> f64 {
        let l = adversary.step_length(v, t);
        debug_assert!(
            l.is_finite() && l > 0.0,
            "adversary step length must be finite and positive, got {l} for \
             step {t} of node {v}"
        );
        self.max_param = self.max_param.max(l);
        l
    }

    fn outcome(self, completion_time: f64) -> (AsyncOutcome, Vec<P::State>) {
        let outputs = self
            .states
            .iter()
            .map(|q| self.protocol.output(q).expect("output configuration"))
            .collect();
        (
            AsyncOutcome {
                outputs,
                completion_time,
                time_unit: self.max_param,
                normalized_time: completion_time / self.max_param,
                total_steps: self.total_steps,
                messages_sent: self.messages_sent,
                deliveries: self.deliveries,
                lost_overwrites: self.lost_overwrites,
            },
            self.states,
        )
    }
}

/// Target mean events per calendar bucket; see [`crate::schedule`] for
/// why a small handful is the sweet spot.
const TARGET_EVENTS_PER_TICK: f64 = 4.0;

/// Picks the calendar bucket width for `adversary` on `graph`:
/// `target / rate` with `rate ≈ (|V| + Σ deg) / mean_step` — every step
/// reschedules itself and fans out at most `deg(v)` deliveries per unit
/// of simulated time. The step scale comes from the policy's
/// [`Adversary::time_scale_hint`] or a small deterministic sample.
/// Performance-only: any positive width yields identical outcomes.
fn choose_bucket_width<A: Adversary + ?Sized>(
    adversary: &A,
    graph: &Graph,
    override_width: Option<f64>,
) -> f64 {
    if let Some(w) = override_width {
        if w.is_finite() && w > 0.0 {
            return w;
        }
    }
    let n = graph.node_count().max(1);
    let scale = adversary.time_scale_hint().unwrap_or_else(|| {
        // Deterministic probe of the oblivious parameter sequences: a
        // handful of early step lengths across a node stride.
        let probes = n.min(16);
        let stride = (n / probes).max(1);
        let mut sum = 0.0;
        let mut count = 0u32;
        for i in 0..probes {
            let v = (i * stride) as NodeId;
            for t in 1..=2u64 {
                sum += adversary.step_length(v, t);
                count += 1;
            }
        }
        sum / count as f64
    });
    let rate = (n + graph.degree_sum()) as f64 / scale.max(f64::MIN_POSITIVE);
    TARGET_EVENTS_PER_TICK / rate
}

/// The asynchronous engine: runs `protocol` under `adversary`, invoking
/// `observer` after every node step, and returns the final per-node
/// state vector next to the legacy outcome. The single transcription of
/// the event loop — the [`crate::Simulation`] builder and (through it)
/// every legacy `run_async*` shim land here.
///
/// Inputs are validated by the builder; this function assumes
/// `inputs.len() == graph.node_count()`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_async<P: Fsm, A: Adversary + ?Sized, O: AsyncObserver<P::State>>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>), ExecError> {
    let n = graph.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");

    // Deliver events carry the receiver's flat CSR slot as u32; fail fast
    // rather than silently wrapping on graphs beyond that addressing limit
    // (~2.1B directed port slots).
    assert!(
        u32::try_from(graph.port_slot_count()).is_ok(),
        "graph has {} directed port slots, exceeding the async engine's u32 slot addressing",
        graph.port_slot_count()
    );

    let (fctx, fout) = compile_faults(faults, graph, protocol.alphabet().len())?;
    let (ex, seed, tally) = match snap.resume {
        Some(s) => {
            let mut res = snapshot::decode_async(s, &snap.codec(), n, graph.port_slot_count())?;
            if res.churn.is_some() || res.faults.is_some() != fctx.is_some() {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                    field: "snapshot body kind",
                }));
            }
            let seed = AsyncSeed {
                backlog: std::mem::take(&mut res.backlog),
                events: res.events,
                seq: res.seq,
            };
            let tally = res.faults.unwrap_or_default();
            (Exec::from_resume(protocol, graph, res), Some(seed), tally)
        }
        None => (
            Exec::new(protocol, graph, inputs, config.seed),
            None,
            FaultSummary::default(),
        ),
    };

    if seed.is_none() && ex.unfinished == 0 {
        if let Some(out) = fout {
            *out = Some(tally);
        }
        let outputs = ex
            .states
            .iter()
            .map(|q| protocol.output(q).expect("checked"))
            .collect();
        return Ok((
            AsyncOutcome {
                outputs,
                completion_time: 0.0,
                time_unit: 1.0,
                normalized_time: 0.0,
                total_steps: 0,
                messages_sent: 0,
                deliveries: 0,
                lost_overwrites: 0,
            },
            ex.states,
        ));
    }

    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let result = if layer.ctx.is_some() {
        // Faulted runs always drive the heap: the wheel's `DeliverRun`
        // batching assumes one letter per run and pairwise-distinct
        // receiver slots, which corruption and duplication break. Sound
        // because the two schedulers are pinned bit-identical.
        run_heap_loop(ex, adversary, config, observer, snap, seed, &mut layer)
    } else {
        match config.scheduler {
            SchedulerKind::BinaryHeap => {
                run_heap_loop(ex, adversary, config, observer, snap, seed, &mut layer)
            }
            SchedulerKind::CalendarWheel => {
                run_wheel_loop(ex, adversary, config, observer, snap, seed, &mut layer)
            }
        }
    };
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    result
}

/// The queue-side remainder of a decoded async snapshot: the serialized
/// event backlog and the loop-owned global counters. The loops seed their
/// queue from the backlog *instead of* the per-node initial step events.
struct AsyncSeed {
    backlog: Vec<BacklogEvent>,
    events: u64,
    seq: u64,
}

/// The preserved binary-heap event loop: one heap entry per delivery,
/// `O(log m)` per push/pop. Kept as the oracle the wheel is differentially
/// tested against, and as the benchmark baseline.
fn run_heap_loop<P: Fsm, A: Adversary + ?Sized, O: AsyncObserver<P::State>>(
    mut ex: Exec<'_, P>,
    adversary: &A,
    config: &AsyncConfig,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    resume: Option<AsyncSeed>,
    faults: &mut FaultLayer<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>), ExecError> {
    let n = ex.graph.node_count();
    let mut seq = 0u64;
    let mut events = 0u64;
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: f64, kind| {
        heap.push(Reverse(Event {
            time,
            seq: *seq,
            kind,
        }));
        *seq += 1;
    };

    match resume {
        Some(seed) => {
            for e in seed.backlog {
                heap.push(Reverse(Event {
                    time: e.time,
                    seq: e.seq,
                    kind: match e.kind {
                        BacklogKind::Step { node, .. } => HeapKind::Step(node),
                        BacklogKind::Deliver {
                            node, slot, letter, ..
                        } => HeapKind::Deliver { node, slot, letter },
                    },
                }));
            }
            events = seed.events;
            seq = seed.seq;
        }
        None => {
            for v in 0..n as NodeId {
                let l = ex.step_length(adversary, v, 1);
                push(&mut heap, &mut seq, l, HeapKind::Step(v));
            }
        }
    }

    let mut arrivals: Vec<f64> = Vec::new();
    let mut fan: Vec<(NodeId, u32, f64, Letter)> = Vec::new();
    let mut completion_time = None;
    while let Some(Reverse(event)) = heap.pop() {
        events += 1;
        if events > config.max_events {
            return Err(ExecError::EventLimit {
                limit: config.max_events,
                unfinished: ex.unfinished,
            });
        }
        match event.kind {
            HeapKind::Deliver { node, slot, letter } => {
                ex.deliver(node, slot as usize, letter);
            }
            HeapKind::Step(v) => {
                let vi = v as usize;
                let (t, emission) = ex.apply_step(v);

                if let Some(letter) = emission {
                    ex.messages_sent += 1;
                    ex.compute_arrivals(adversary, v, t, event.time, &mut arrivals);
                    match faults.ctx {
                        Some(ctx) if ctx.affects_sender(v) => {
                            faulted_sends(
                                ctx,
                                &mut faults.tally,
                                ex.graph,
                                &mut ex.last_arrival,
                                v,
                                t,
                                &arrivals,
                                letter,
                                &mut fan,
                            );
                            for &(u, slot, arrival, l) in &fan {
                                push(
                                    &mut heap,
                                    &mut seq,
                                    arrival,
                                    HeapKind::Deliver {
                                        node: u,
                                        slot,
                                        letter: l,
                                    },
                                );
                            }
                        }
                        _ => {
                            let nbrs = ex.graph.neighbors(v);
                            let rev = ex.graph.reverse_ports(v);
                            for (k, (&u, &rp)) in nbrs.iter().zip(rev).enumerate() {
                                // The receiver-side flat slot, via the
                                // precomputed reverse-port map.
                                let slot = (ex.graph.csr_offset(u) + rp as usize) as u32;
                                push(
                                    &mut heap,
                                    &mut seq,
                                    arrivals[k],
                                    HeapKind::Deliver {
                                        node: u,
                                        slot,
                                        letter,
                                    },
                                );
                            }
                        }
                    }
                }

                observer.on_step(event.time, v, t, &ex.states[vi]);

                if ex.unfinished == 0 {
                    completion_time = Some(event.time);
                    break;
                }

                ex.step_counts[vi] = t + 1;
                let l = ex.step_length(adversary, v, t + 1);
                push(&mut heap, &mut seq, event.time + l, HeapKind::Step(v));

                if snap.every > 0 && ex.total_steps.is_multiple_of(snap.every) {
                    let backlog = heap
                        .iter()
                        .map(|Reverse(e)| BacklogEvent {
                            time: e.time,
                            seq: e.seq,
                            kind: match e.kind {
                                HeapKind::Step(node) => BacklogKind::Step { node, inc: 0 },
                                HeapKind::Deliver { node, slot, letter } => BacklogKind::Deliver {
                                    node,
                                    slot,
                                    letter,
                                    inc: 0,
                                },
                            },
                        })
                        .collect();
                    ex.checkpoint(snap, events, seq, None, faults.capture(), backlog, observer);
                }
            }
        }
    }

    let completion_time = completion_time.expect(
        "event queue cannot drain before an output configuration: every \
         unfinished node always has a pending step event",
    );
    Ok(ex.outcome(completion_time))
}

/// The calendar-wheel event loop: O(1) amortized scheduling, and runs of
/// same-arrival deliveries of one broadcast drain as a single batched
/// flat-write pass. Bit-identical to [`run_heap_loop`] per seed.
fn run_wheel_loop<P: Fsm, A: Adversary + ?Sized, O: AsyncObserver<P::State>>(
    mut ex: Exec<'_, P>,
    adversary: &A,
    config: &AsyncConfig,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    resume: Option<AsyncSeed>,
    faults: &mut FaultLayer<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>), ExecError> {
    // Faulted runs are routed to the heap loop by `exec_async`.
    debug_assert!(faults.ctx.is_none());
    let n = ex.graph.node_count();
    let width = choose_bucket_width(adversary, ex.graph, config.bucket_width);
    let mut wheel: CalendarQueue<WheelKind> = CalendarQueue::new(width);
    let mut seq = 0u64;
    let mut events = 0u64;

    match resume {
        Some(seed) => {
            // The snapshot backlog carries each delivery individually with
            // its exact `(time, seq)`, so re-pushing them (no runs) drains
            // in the same order — a run's grouped drain and its expanded
            // per-letter events gather into the identical batch.
            for e in seed.backlog {
                let kind = match e.kind {
                    BacklogKind::Step { node, .. } => WheelKind::Step(node),
                    BacklogKind::Deliver {
                        node, slot, letter, ..
                    } => WheelKind::Deliver { node, slot, letter },
                };
                wheel.push(e.time, e.seq, kind);
            }
            events = seed.events;
            seq = seed.seq;
        }
        None => {
            for v in 0..n as NodeId {
                let l = ex.step_length(adversary, v, 1);
                wheel.push(l, seq, WheelKind::Step(v));
                seq += 1;
            }
        }
    }

    let mut arrivals: Vec<f64> = Vec::new();
    let mut completion_time = None;
    // Per-receiver coalescing scratch: `batch` gathers the maximal run of
    // consecutive same-instant delivery events (across senders), `held`
    // parks the one event popped past the run's end, `deltas` is the
    // count-merge scratch of `deliver_grouped`.
    let mut held: Option<(f64, u64, WheelKind)> = None;
    let mut batch: Vec<(NodeId, u32, Letter)> = Vec::new();
    let mut group: Vec<(u32, Letter)> = Vec::new();
    let mut deltas: Vec<(u16, i64)> = Vec::new();
    while let Some((time, _, kind)) = held.take().or_else(|| wheel.pop()) {
        match kind {
            WheelKind::Deliver { .. } | WheelKind::DeliverRun { .. } => {
                // Gather every consecutive delivery event at exactly this
                // instant, then apply them grouped by receiver: arrivals
                // of *different* broadcasts colliding on one node merge
                // their pending-flag and count updates into one pass.
                // Deliveries never change `unfinished` and the budget is
                // counted per delivery as it is gathered, so hitting the
                // event limit mid-batch reports exactly what the heap
                // path's per-letter pops would have; and because same-
                // instant deliveries always hit distinct slots (per-edge
                // FIFO), the grouped application is bit-identical.
                batch.clear();
                let mut next = Some(kind);
                while let Some(kind) = next.take() {
                    match kind {
                        WheelKind::Deliver { node, slot, letter } => {
                            events += 1;
                            if events > config.max_events {
                                return Err(ExecError::EventLimit {
                                    limit: config.max_events,
                                    unfinished: ex.unfinished,
                                });
                            }
                            batch.push((node, slot, letter));
                        }
                        WheelKind::DeliverRun {
                            v,
                            from,
                            len,
                            letter,
                        } => {
                            let nbrs = ex.graph.neighbors(v);
                            let rev = ex.graph.reverse_ports(v);
                            for k in from as usize..(from + len) as usize {
                                events += 1;
                                if events > config.max_events {
                                    return Err(ExecError::EventLimit {
                                        limit: config.max_events,
                                        unfinished: ex.unfinished,
                                    });
                                }
                                let u = nbrs[k];
                                let slot = (ex.graph.csr_offset(u) + rev[k] as usize) as u32;
                                batch.push((u, slot, letter));
                            }
                        }
                        WheelKind::Step(_) => unreachable!("steps never enter a delivery batch"),
                    }
                    if let Some((t2, s2, k2)) = wheel.pop() {
                        if t2 == time && !matches!(k2, WheelKind::Step(_)) {
                            next = Some(k2);
                        } else {
                            held = Some((t2, s2, k2));
                        }
                    }
                }
                if let [(node, slot, letter)] = batch[..] {
                    ex.deliver(node, slot as usize, letter);
                } else {
                    batch.sort_unstable_by_key(|&(node, slot, _)| (node, slot));
                    let mut i = 0;
                    while i < batch.len() {
                        let node = batch[i].0;
                        let mut j = i + 1;
                        while j < batch.len() && batch[j].0 == node {
                            j += 1;
                        }
                        if j - i == 1 {
                            ex.deliver(node, batch[i].1 as usize, batch[i].2);
                        } else {
                            group.clear();
                            group.extend(
                                batch[i..j].iter().map(|&(_, slot, letter)| (slot, letter)),
                            );
                            ex.deliver_grouped(node, &group, &mut deltas);
                        }
                        i = j;
                    }
                }
            }
            WheelKind::Step(v) => {
                events += 1;
                if events > config.max_events {
                    return Err(ExecError::EventLimit {
                        limit: config.max_events,
                        unfinished: ex.unfinished,
                    });
                }
                let vi = v as usize;
                let (t, emission) = ex.apply_step(v);

                if let Some(letter) = emission {
                    ex.messages_sent += 1;
                    ex.compute_arrivals(adversary, v, t, time, &mut arrivals);
                    // Partition the broadcast into maximal runs of equal
                    // arrival time (bitwise-equal f64s — the adversary's
                    // latency schedule lands directly in shared buckets).
                    // A run of length `r` occupies `r` contiguous seqs, so
                    // its single event sorts exactly where the heap path's
                    // `r` per-letter events would, and nothing can
                    // interleave them.
                    let nbrs = ex.graph.neighbors(v);
                    let rev = ex.graph.reverse_ports(v);
                    let deg = nbrs.len();
                    let mut k = 0usize;
                    while k < deg {
                        let arrival = arrivals[k];
                        let mut end = k + 1;
                        while end < deg && arrivals[end] == arrival {
                            end += 1;
                        }
                        let run = (end - k) as u32;
                        if run == 1 {
                            let slot = (ex.graph.csr_offset(nbrs[k]) + rev[k] as usize) as u32;
                            wheel.push(
                                arrival,
                                seq,
                                WheelKind::Deliver {
                                    node: nbrs[k],
                                    slot,
                                    letter,
                                },
                            );
                        } else {
                            wheel.push(
                                arrival,
                                seq,
                                WheelKind::DeliverRun {
                                    v,
                                    from: k as u32,
                                    len: run,
                                    letter,
                                },
                            );
                        }
                        seq += run as u64;
                        k = end;
                    }
                }

                observer.on_step(time, v, t, &ex.states[vi]);

                if ex.unfinished == 0 {
                    completion_time = Some(time);
                    break;
                }

                ex.step_counts[vi] = t + 1;
                let l = ex.step_length(adversary, v, t + 1);
                wheel.push(time + l, seq, WheelKind::Step(v));
                seq += 1;

                if snap.every > 0 && ex.total_steps.is_multiple_of(snap.every) {
                    // `held` is provably `None` here: it is taken at the
                    // loop head and only re-set inside the delivery-batch
                    // arm, so the wheel holds the complete backlog. Runs
                    // are expanded into per-letter deliveries with their
                    // exact consecutive seqs — the snapshot bytes are
                    // identical to the heap scheduler's.
                    debug_assert!(held.is_none());
                    let mut backlog = Vec::new();
                    for (time, seq, kind) in wheel.entries() {
                        match *kind {
                            WheelKind::Step(node) => backlog.push(BacklogEvent {
                                time,
                                seq,
                                kind: BacklogKind::Step { node, inc: 0 },
                            }),
                            WheelKind::Deliver { node, slot, letter } => {
                                backlog.push(BacklogEvent {
                                    time,
                                    seq,
                                    kind: BacklogKind::Deliver {
                                        node,
                                        slot,
                                        letter,
                                        inc: 0,
                                    },
                                })
                            }
                            WheelKind::DeliverRun {
                                v,
                                from,
                                len,
                                letter,
                            } => {
                                let nbrs = ex.graph.neighbors(v);
                                let rev = ex.graph.reverse_ports(v);
                                for (i, k) in (from as usize..(from + len) as usize).enumerate() {
                                    let u = nbrs[k];
                                    let slot = (ex.graph.csr_offset(u) + rev[k] as usize) as u32;
                                    backlog.push(BacklogEvent {
                                        time,
                                        seq: seq + i as u64,
                                        kind: BacklogKind::Deliver {
                                            node: u,
                                            slot,
                                            letter,
                                            inc: 0,
                                        },
                                    });
                                }
                            }
                        }
                    }
                    ex.checkpoint(snap, events, seq, None, faults.capture(), backlog, observer);
                }
            }
        }
    }

    let completion_time = completion_time.expect(
        "event queue cannot drain before an output configuration: every \
         unfinished node always has a pending step event",
    );
    Ok(ex.outcome(completion_time))
}

/// Events of the churn-aware heap loop: like [`HeapKind`], plus the
/// receiver/stepper **incarnation** the event was enqueued under. A crash
/// bumps its node's incarnation, so every in-flight letter addressed to
/// the pre-crash node and every pending step of it goes stale and is
/// dropped on pop — exactly the "crash drops in-flight letters" semantics
/// — without purging the queue.
#[derive(Clone, Copy, Debug)]
enum ChurnKind {
    /// Node applies its next transition (if its incarnation still matches).
    Step(NodeId, u32),
    /// A letter lands at `slot` of `node` (if the incarnation matches and
    /// the slot is alive).
    Deliver {
        node: NodeId,
        slot: u32,
        letter: Letter,
        inc: u32,
    },
}

/// The asynchronous engine under a churn plan. Boundaries are expressed
/// in **absolute time**: the event stamped with round `r` applies at time
/// `t = r`, before any queue event with time ≥ `t` is processed (and
/// between same-instant events deterministically — the boundary always
/// wins the tie). Always drives a binary-heap loop regardless of
/// [`AsyncConfig::scheduler`]: the calendar wheel's batched
/// `DeliverRun` events resolve receiver slots lazily against a port map
/// assumed static for the run, an assumption churn breaks; the heap pays
/// `O(log m)` but needs no such invariant. In-flight letters crossing an
/// edge-delete boundary bounce off the tombstoned slot; letters in
/// flight across a delete + re-insert window do land (the channel was
/// re-established before arrival).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_async_churn<P, A, O>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
    plan: &crate::churn::ChurnPlan,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>, crate::churn::ChurnSummary), ExecError>
where
    P: Fsm,
    A: Adversary + ?Sized,
    O: AsyncObserver<P::State>,
{
    use crate::churn::{ChurnCtl, DEAD_OUTPUT};
    use crate::engine::TOMBSTONE;

    let universe = plan.universe(base).map_err(|e| ExecError::Config {
        reason: format!("churn plan: {e}"),
    })?;
    let n = universe.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    assert!(
        u32::try_from(universe.port_slot_count()).is_ok(),
        "universe graph has {} directed port slots, exceeding the async engine's u32 slot addressing",
        universe.port_slot_count()
    );

    let (fctx, fout) = compile_faults(faults, &universe, protocol.alphabet().len())?;
    let mut ctl = ChurnCtl::new(plan, base, &universe, protocol.initial_letter())?;
    let mut seq = 0u64;
    let mut events = 0u64;
    let mut heap: BinaryHeap<Reverse<Event2>> = BinaryHeap::new();
    let mut tally = FaultSummary::default();
    let (mut ex, mut incarnation) = match snap.resume {
        Some(s) => {
            let mut res = snapshot::decode_async(s, &snap.codec(), n, universe.port_slot_count())?;
            if res.faults.is_some() != fctx.is_some() {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                    field: "snapshot body kind",
                }));
            }
            tally = res.faults.unwrap_or_default();
            let Some((incarnation, cursor)) = res.churn.take() else {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                    field: "snapshot body kind",
                }));
            };
            // The restored store already reflects the setup patches and
            // every boundary up to the cursor; only the overlay replica,
            // effectiveness counters, and cursor need rebuilding.
            ctl.fast_forward(&universe, cursor)?;
            for e in std::mem::take(&mut res.backlog) {
                let kind = match e.kind {
                    BacklogKind::Step { node, inc } => ChurnKind::Step(node, inc),
                    BacklogKind::Deliver {
                        node,
                        slot,
                        letter,
                        inc,
                    } => ChurnKind::Deliver {
                        node,
                        slot,
                        letter,
                        inc,
                    },
                };
                heap.push(Reverse(Event2 {
                    time: e.time,
                    seq: e.seq,
                    kind,
                }));
            }
            events = res.events;
            seq = res.seq;
            (Exec::from_resume(protocol, &universe, res), incarnation)
        }
        None => {
            let mut ex = Exec::new(protocol, &universe, inputs, config.seed);
            ctl.setup(&mut ex.ports);
            for v in 0..n as NodeId {
                let l = ex.step_length(adversary, v, 1);
                heap.push(Reverse(Event2 {
                    time: l,
                    seq,
                    kind: ChurnKind::Step(v, 0),
                }));
                seq += 1;
            }
            (ex, vec![0u32; n])
        }
    };

    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let mut arrivals: Vec<f64> = Vec::new();
    let mut fan: Vec<(NodeId, u32, f64, Letter)> = Vec::new();
    let mut now = 0.0f64;
    let completion_time;
    'run: loop {
        let head = heap.pop();
        let horizon = head.as_ref().map_or(f64::INFINITY, |Reverse(e)| e.time);
        // Apply every boundary due at or before the next queue event
        // (or, with a drained queue, the next boundary outright — all
        // live nodes may be gone while a restart is still scheduled).
        while ctl.peek_round().is_some_and(|r| (r as f64) <= horizon) {
            let tb = ctl.peek_round().unwrap() as f64;
            now = now.max(tb);
            let (ev, effective) = ctl.apply_next(&universe);
            if !effective {
                continue;
            }
            match ev {
                stoneage_graph::TopologyEvent::Crash(v) => {
                    let vi = v as usize;
                    incarnation[vi] += 1;
                    if protocol.output(&ex.states[vi]).is_none() {
                        ex.unfinished -= 1;
                    }
                }
                stoneage_graph::TopologyEvent::Restart(v) => {
                    let vi = v as usize;
                    incarnation[vi] += 1;
                    ex.states[vi] = protocol.restart_state(inputs[vi]);
                    if protocol.output(&ex.states[vi]).is_none() {
                        ex.unfinished += 1;
                    }
                    let t = ex.step_counts[vi];
                    let l = ex.step_length(adversary, v, t);
                    heap.push(Reverse(Event2 {
                        time: tb + l,
                        seq,
                        kind: ChurnKind::Step(v, incarnation[vi]),
                    }));
                    seq += 1;
                }
                _ => {}
            }
            // A patched slot never carries a stale pending mark: retired
            // slots have no observable letter, revived ones hold σ₀ as a
            // fresh registration would.
            for p in ctl.patches() {
                ex.pending[p.slot as usize] = false;
            }
            ctl.patch_ports(&universe, &mut ex.ports);
            if ex.unfinished == 0 && ctl.exhausted() {
                completion_time = tb;
                break 'run;
            }
        }
        let Some(Reverse(event)) = head else {
            unreachable!(
                "the queue cannot drain while the run is incomplete: every \
                 live node always has a pending step event and pending \
                 boundaries are applied on a drained queue"
            );
        };
        now = event.time;
        events += 1;
        if events > config.max_events {
            return Err(ExecError::EventLimit {
                limit: config.max_events,
                unfinished: ex.unfinished,
            });
        }
        match event.kind {
            ChurnKind::Deliver {
                node,
                slot,
                letter,
                inc,
            } => {
                // Stale incarnation: the letter was in flight toward a
                // node that crashed; tombstoned slot: the edge (or the
                // receiver) is currently down. Either way the letter is
                // dropped without delivery accounting.
                if inc == incarnation[node as usize]
                    && ex.ports.letter_at(slot as usize) != TOMBSTONE
                {
                    ex.deliver(node, slot as usize, letter);
                }
            }
            ChurnKind::Step(v, inc) => {
                let vi = v as usize;
                if inc != incarnation[vi] {
                    // A pre-crash step of a crashed (possibly since
                    // restarted) node: dropped, not rescheduled — the
                    // restart boundary scheduled the fresh incarnation's
                    // first step.
                    continue;
                }
                let (t, emission) = ex.apply_step(v);

                if let Some(letter) = emission {
                    ex.messages_sent += 1;
                    ex.compute_arrivals(adversary, v, t, event.time, &mut arrivals);
                    match layer.ctx {
                        Some(ctx) if ctx.affects_sender(v) => {
                            faulted_sends(
                                ctx,
                                &mut layer.tally,
                                ex.graph,
                                &mut ex.last_arrival,
                                v,
                                t,
                                &arrivals,
                                letter,
                                &mut fan,
                            );
                            for &(u, slot, arrival, l) in &fan {
                                heap.push(Reverse(Event2 {
                                    time: arrival,
                                    seq,
                                    kind: ChurnKind::Deliver {
                                        node: u,
                                        slot,
                                        letter: l,
                                        inc: incarnation[u as usize],
                                    },
                                }));
                                seq += 1;
                            }
                        }
                        _ => {
                            let nbrs = ex.graph.neighbors(v);
                            let rev = ex.graph.reverse_ports(v);
                            for (k, (&u, &rp)) in nbrs.iter().zip(rev).enumerate() {
                                let slot = (ex.graph.csr_offset(u) + rp as usize) as u32;
                                heap.push(Reverse(Event2 {
                                    time: arrivals[k],
                                    seq,
                                    kind: ChurnKind::Deliver {
                                        node: u,
                                        slot,
                                        letter,
                                        inc: incarnation[u as usize],
                                    },
                                }));
                                seq += 1;
                            }
                        }
                    }
                }

                observer.on_step(event.time, v, t, &ex.states[vi]);

                if ex.unfinished == 0 && ctl.exhausted() {
                    completion_time = event.time;
                    break 'run;
                }

                ex.step_counts[vi] = t + 1;
                let l = ex.step_length(adversary, v, t + 1);
                heap.push(Reverse(Event2 {
                    time: event.time + l,
                    seq,
                    kind: ChurnKind::Step(v, inc),
                }));
                seq += 1;

                if snap.every > 0 && ex.total_steps.is_multiple_of(snap.every) {
                    let backlog = heap
                        .iter()
                        .map(|Reverse(e)| BacklogEvent {
                            time: e.time,
                            seq: e.seq,
                            kind: match e.kind {
                                ChurnKind::Step(node, inc) => BacklogKind::Step { node, inc },
                                ChurnKind::Deliver {
                                    node,
                                    slot,
                                    letter,
                                    inc,
                                } => BacklogKind::Deliver {
                                    node,
                                    slot,
                                    letter,
                                    inc,
                                },
                            },
                        })
                        .collect();
                    ex.checkpoint(
                        snap,
                        events,
                        seq,
                        Some((&incarnation, ctl.cursor())),
                        layer.capture(),
                        backlog,
                        observer,
                    );
                }
            }
        }
    }

    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    let summary = ctl.finish();
    let outputs = ex
        .states
        .iter()
        .zip(&summary.live_nodes)
        .map(|(q, &live)| {
            if live {
                protocol.output(q).expect("live nodes are decided")
            } else {
                protocol.output(q).unwrap_or(DEAD_OUTPUT)
            }
        })
        .collect();
    let time_unit = if ex.max_param > 0.0 {
        ex.max_param
    } else {
        1.0
    };
    let outcome = AsyncOutcome {
        outputs,
        completion_time,
        time_unit,
        normalized_time: completion_time / time_unit,
        total_steps: ex.total_steps,
        messages_sent: ex.messages_sent,
        deliveries: ex.deliveries,
        lost_overwrites: ex.lost_overwrites,
    };
    Ok((outcome, ex.states, summary))
}

/// The event record of the churn heap loop — [`Event`] with the
/// incarnation-stamped [`ChurnKind`].
#[derive(Clone, Copy, Debug)]
struct Event2 {
    time: f64,
    seq: u64,
    kind: ChurnKind,
}

impl PartialEq for Event2 {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event2 {}

impl PartialOrd for Event2 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event2 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Exponential, Lockstep, SlowEdges, SlowNodes, UniformRandom};
    use crate::sim::Simulation;
    use crate::SyncConfig;
    use stoneage_core::MultiFsm;
    use stoneage_core::{
        Alphabet, AsMulti, Synchronized, TableProtocol, TableProtocolBuilder, Transitions,
    };
    use stoneage_graph::generators;

    // In-crate builder twins (testkit's harness links the other build of
    // this crate; see the note in `sync_exec`'s tests).

    /// Builder twin of the legacy `run_async`.
    fn run_async<P: Fsm, A: Adversary + ?Sized>(
        protocol: &P,
        graph: &Graph,
        adversary: &A,
        config: &AsyncConfig,
    ) -> Result<AsyncOutcome, ExecError> {
        let mut options = crate::AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
        options.bucket_width = config.bucket_width;
        Simulation::asynchronous(protocol, graph, &adversary)
            .seed(config.seed)
            .budget(config.max_events)
            .backend(crate::Backend::Async(options))
            .run()
            .map(|o| o.into_async_outcome().expect("async backend"))
    }

    /// Builder twin of the legacy `run_async_with_inputs`.
    fn run_async_with_inputs<P: Fsm, A: Adversary + ?Sized>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        adversary: &A,
        config: &AsyncConfig,
    ) -> Result<AsyncOutcome, ExecError> {
        Simulation::asynchronous(protocol, graph, &adversary)
            .seed(config.seed)
            .budget(config.max_events)
            .inputs(inputs)
            .run()
            .map(|o| o.into_async_outcome().expect("async backend"))
    }

    /// Builder twin of the legacy `run_sync`.
    fn run_sync<P>(
        protocol: &P,
        graph: &Graph,
        config: &SyncConfig,
    ) -> Result<crate::SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Deterministic protocol: beep at step 1, then output 1 + f_b(#beeps).
    /// σ₀ is a distinct "quiet" letter, so the count genuinely reflects
    /// *delivered* beeps — which makes the protocol synchrony-dependent.
    fn count_neighbors(b: u8) -> TableProtocol {
        let alphabet = Alphabet::new(["beep", "quiet"]);
        let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(1));
        let start = builder.add_state("start", Letter(0));
        let listen = builder.add_state("listen", Letter(0));
        builder.add_input_state(start);
        builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
        for o in 0..=b {
            let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
            builder.set_transition(listen, o, Transitions::det(out, None));
            builder.set_transition_all(out, Transitions::det(out, None));
        }
        builder.build().unwrap()
    }

    #[test]
    fn lockstep_async_matches_sync_for_unsynchronized_protocol() {
        let g = generators::star(6);
        let p = count_neighbors(3);
        let sync_out = run_sync(&AsMulti(p.clone()), &g, &SyncConfig::seeded(1)).unwrap();
        let async_out = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(1)).unwrap();
        assert_eq!(async_out.outputs, sync_out.outputs);
    }

    #[test]
    fn unsynchronized_protocol_breaks_under_asynchrony() {
        // The raw counting protocol relies on synchrony; an adversarial
        // schedule derails it (this is exactly why Theorem 3.1 exists): a
        // node whose two steps both fire before any beep is delivered
        // observes 0 neighbors.
        let g = generators::star(8);
        let p = count_neighbors(3);
        let reference = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(0))
            .unwrap()
            .outputs;
        let mut any_diff = false;
        for seed in 0..20 {
            let adv = Exponential { seed, mean: 0.5 };
            let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(seed)).unwrap();
            if out.outputs != reference {
                any_diff = true;
                break;
            }
        }
        assert!(
            any_diff,
            "expected at least one adversarial schedule to break the \
             unsynchronized protocol"
        );
    }

    #[test]
    fn synchronized_protocol_is_correct_under_every_adversary() {
        // The synchronizer makes the deterministic counting protocol yield
        // its unique correct outputs under arbitrary schedules.
        let g = generators::star(5);
        let p = Synchronized::new(count_neighbors(3));
        let mut expected = vec![1 + 3u64]; // center, degree 4 truncated to ≥3
        expected.extend(std::iter::repeat_n(1 + 1, 4));
        for (i, adv) in crate::adversary::standard_panel(7).iter().enumerate() {
            let out = run_async(&p, &g, adv, &AsyncConfig::seeded(100 + i as u64)).unwrap();
            assert_eq!(out.outputs, expected, "adversary {}", adv.name());
            assert!(out.normalized_time > 0.0);
            assert!(out.time_unit > 0.0);
        }
    }

    #[test]
    fn async_execution_is_deterministic_per_seeds() {
        let g = generators::gnp(20, 0.2, 3);
        let p = Synchronized::new(count_neighbors(2));
        let adv = UniformRandom { seed: 5 };
        let a = run_async(&p, &g, &adv, &AsyncConfig::seeded(9)).unwrap();
        let b = run_async(&p, &g, &adv, &AsyncConfig::seeded(9)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn schedulers_agree_regardless_of_bucket_width() {
        // Pathological explicit widths (one giant bucket; every event past
        // the wheel horizon) must not change a single outcome field.
        let g = generators::gnp(18, 0.25, 2);
        let p = Synchronized::new(count_neighbors(2));
        let adv = UniformRandom { seed: 8 };
        let heap = run_async(
            &p,
            &g,
            &adv,
            &AsyncConfig::seeded(3).with_scheduler(SchedulerKind::BinaryHeap),
        )
        .unwrap();
        for width in [None, Some(1e9), Some(1e-9), Some(0.37)] {
            let cfg = AsyncConfig {
                bucket_width: width,
                ..AsyncConfig::seeded(3)
            };
            let wheel = run_async(&p, &g, &adv, &cfg).unwrap();
            assert_eq!(wheel.outputs, heap.outputs, "width {width:?}");
            assert_eq!(
                wheel.completion_time, heap.completion_time,
                "width {width:?}"
            );
            assert_eq!(wheel.total_steps, heap.total_steps, "width {width:?}");
            assert_eq!(wheel.deliveries, heap.deliveries, "width {width:?}");
            assert_eq!(
                wheel.lost_overwrites, heap.lost_overwrites,
                "width {width:?}"
            );
        }
    }

    #[test]
    fn event_limit_is_reported() {
        let g = generators::path(4);
        let p = Synchronized::new(count_neighbors(1));
        let adv = UniformRandom { seed: 1 };
        for scheduler in [SchedulerKind::CalendarWheel, SchedulerKind::BinaryHeap] {
            let err = run_async(
                &p,
                &g,
                &adv,
                &AsyncConfig {
                    max_events: 50,
                    ..AsyncConfig::seeded(0).with_scheduler(scheduler)
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ExecError::EventLimit { limit: 50, .. }),
                "{scheduler:?}"
            );
        }
    }

    #[test]
    fn normalized_time_is_scale_invariant() {
        // Scaling all adversary parameters by a constant must not change
        // the normalized run-time (the paper's measure).
        #[derive(Clone, Copy)]
        struct Scaled<A>(A, f64);
        impl<A: Adversary> Adversary for Scaled<A> {
            fn step_length(&self, v: NodeId, t: u64) -> f64 {
                self.1 * self.0.step_length(v, t)
            }
            fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
                self.1 * self.0.delay(v, t, u)
            }
            fn name(&self) -> &'static str {
                "scaled"
            }
        }
        let g = generators::cycle(6);
        let p = Synchronized::new(count_neighbors(1));
        let base = UniformRandom { seed: 2 };
        let a = run_async(&p, &g, &base, &AsyncConfig::seeded(4)).unwrap();
        let b = run_async(&p, &g, &Scaled(base, 100.0), &AsyncConfig::seeded(4)).unwrap();
        assert!((a.normalized_time - b.normalized_time).abs() < 1e-6);
        assert!((b.completion_time / a.completion_time - 100.0).abs() < 1e-3);
    }

    #[test]
    fn lost_overwrites_occur_on_slow_receivers() {
        // A very slow receiver cannot observe every message of a fast
        // sender; the no-buffer semantics must register losses.
        let g = generators::path(2);
        let p = Synchronized::new(count_neighbors(1));
        let adv = SlowNodes {
            seed: 3,
            fraction: 0.5,
            factor: 50.0,
        };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(8)).unwrap();
        // Not asserting a specific count — just exercising the path; with
        // factor 50 some loss is overwhelmingly likely but not certain.
        assert!(out.deliveries > 0);
    }

    #[test]
    fn isolated_nodes_complete_alone() {
        let g = stoneage_graph::Graph::empty(4);
        let p = Synchronized::new(count_neighbors(2));
        let adv = Exponential { seed: 1, mean: 0.3 };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(0)).unwrap();
        assert_eq!(out.outputs, vec![1, 1, 1, 1]);
    }

    #[test]
    fn slow_edges_still_converge() {
        let g = generators::complete(5);
        let p = Synchronized::new(count_neighbors(3));
        let adv = SlowEdges {
            seed: 6,
            fraction: 0.3,
            factor: 20.0,
        };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(2)).unwrap();
        assert_eq!(out.outputs, vec![4, 4, 4, 4, 4]);
    }

    #[test]
    fn input_mismatch_is_reported() {
        let g = generators::path(3);
        let p = count_neighbors(1);
        let err =
            run_async_with_inputs(&p, &g, &[0], &Lockstep, &AsyncConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InputLengthMismatch { .. }));
    }

    /// An adversary that violates the model contract with a NaN delay.
    #[derive(Clone, Copy)]
    struct NanDelay;
    impl Adversary for NanDelay {
        fn step_length(&self, _v: NodeId, _t: u64) -> f64 {
            1.0
        }
        fn delay(&self, _v: NodeId, _t: u64, _u: NodeId) -> f64 {
            f64::NAN
        }
        fn name(&self) -> &'static str {
            "nan-delay"
        }
    }

    /// An adversary that violates the model contract with a zero step
    /// length (which would wedge simulated time).
    #[derive(Clone, Copy)]
    struct ZeroStep;
    impl Adversary for ZeroStep {
        fn step_length(&self, _v: NodeId, _t: u64) -> f64 {
            0.0
        }
        fn delay(&self, _v: NodeId, _t: u64, _u: NodeId) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "zero-step"
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn misbehaving_adversary_delay_is_caught_on_heap() {
        let g = generators::path(2);
        let p = Synchronized::new(count_neighbors(1));
        let _ = run_async(
            &p,
            &g,
            &NanDelay,
            &AsyncConfig::seeded(0).with_scheduler(SchedulerKind::BinaryHeap),
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn misbehaving_adversary_delay_is_caught_on_wheel() {
        let g = generators::path(2);
        let p = Synchronized::new(count_neighbors(1));
        let _ = run_async(
            &p,
            &g,
            &NanDelay,
            &AsyncConfig::seeded(0).with_scheduler(SchedulerKind::CalendarWheel),
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite and positive")]
    fn misbehaving_adversary_step_length_is_caught() {
        let g = generators::path(2);
        let p = Synchronized::new(count_neighbors(1));
        let _ = run_async(&p, &g, &ZeroStep, &AsyncConfig::seeded(0));
    }

    #[test]
    fn chosen_bucket_width_is_positive_and_scales_with_rate() {
        let small = generators::gnp(20, 0.2, 1);
        let large = generators::gnp(2000, 4.0 / 2000.0, 1);
        let adv = UniformRandom { seed: 4 };
        let ws = choose_bucket_width(&adv, &small, None);
        let wl = choose_bucket_width(&adv, &large, None);
        assert!(ws > 0.0 && ws.is_finite());
        assert!(wl > 0.0 && wl.is_finite());
        // More nodes and edges → denser event stream → narrower buckets.
        assert!(wl < ws);
        // Explicit override wins.
        assert_eq!(choose_bucket_width(&adv, &small, Some(0.125)), 0.125);
    }
}
