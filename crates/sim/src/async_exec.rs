//! The fully asynchronous event-driven executor.
//!
//! Implements the execution semantics of the paper's Section 2 faithfully:
//!
//! * node `v`'s step `t` lasts `L_{v,t}` time (adversary-chosen); the
//!   transition function is applied instantaneously at the end of the step;
//! * a transmitted letter is delivered to the port `ψ_u(v)` of each
//!   neighbor `u` after a delay `D_{v,t,u}` (adversary-chosen), subject to
//!   per-edge FIFO order;
//! * a port stores **only the last delivered letter** — there is no buffer,
//!   so a message can be overwritten before the receiver ever observes it
//!   (the executor counts these losses);
//! * at its step, a node observes `f_b(#λ(q))`, the truncated count of its
//!   query letter over its ports.
//!
//! The run-time is reported both as raw completion time and normalized by
//! the largest `L`/`D` parameter consumed — the paper's **time unit**.
//!
//! Delivery runs on the flat engine ([`crate::engine`]): each transmission
//! resolves its receiver-side port slot through the graph's precomputed
//! reverse-port map at *enqueue* time (formerly a `port_of` binary search
//! per delivery event), and a step's observation reads the incrementally
//! maintained letter count in O(1) instead of scanning the node's ports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{BoundedCount, Fsm, Letter};
use stoneage_graph::{Graph, NodeId};

use crate::engine::FlatPorts;
use crate::{splitmix64, Adversary, ExecError};

/// Configuration of an asynchronous execution.
#[derive(Clone, Copy, Debug)]
pub struct AsyncConfig {
    /// Master seed for the per-node protocol RNGs (the adversary carries
    /// its own seed — obliviousness demands the streams be independent).
    pub seed: u64,
    /// Event budget: exceeding it aborts with [`ExecError::EventLimit`].
    pub max_events: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            seed: 0,
            max_events: 200_000_000,
        }
    }
}

impl AsyncConfig {
    /// A config with the given seed and the default event budget.
    pub fn seeded(seed: u64) -> Self {
        AsyncConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Result of an asynchronous execution that reached an output
/// configuration.
#[derive(Clone, Debug)]
pub struct AsyncOutcome {
    /// Per-node outputs, decoded from the output states.
    pub outputs: Vec<u64>,
    /// Raw time at which the first output configuration was reached.
    pub completion_time: f64,
    /// The paper's **time unit**: the largest step-length or delay
    /// parameter consumed before completion.
    pub time_unit: f64,
    /// `completion_time / time_unit` — the paper's run-time measure
    /// `T_Π(I, A, R)`.
    pub normalized_time: f64,
    /// Total node steps executed.
    pub total_steps: u64,
    /// Total non-`ε` transmissions (each fans out to all neighbors).
    pub messages_sent: u64,
    /// Total port writes.
    pub deliveries: u64,
    /// Deliveries that overwrote a letter the receiving node had not yet
    /// had a step to observe — messages *lost* to the no-buffer semantics.
    pub lost_overwrites: u64,
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    /// Node applies its next transition.
    Step(NodeId),
    /// A letter lands in the flat port store at `slot` (a CSR slot of
    /// `node`, precomputed from the reverse-port map at transmission
    /// time — no lookup happens at delivery time).
    Deliver {
        node: NodeId,
        slot: u32,
        letter: Letter,
    },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Runs `protocol` on `graph` under `adversary` with all-zero inputs.
pub fn run_async<P: Fsm, A: Adversary + ?Sized>(
    protocol: &P,
    graph: &Graph,
    adversary: &A,
    config: &AsyncConfig,
) -> Result<AsyncOutcome, ExecError> {
    let inputs = vec![0usize; graph.node_count()];
    run_async_with_inputs(protocol, graph, &inputs, adversary, config)
}

/// Hook invoked by [`run_async_observed`] after every applied node step,
/// with the event time and the node's post-transition state. Used by the
/// Lemma 3.2 / (S1) validation tests to watch phase skew between
/// neighbors without touching the engine.
pub trait AsyncObserver<S> {
    /// Called after node `v` applied its step `t` at time `time`.
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S);
}

/// An observer that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopAsyncObserver;

impl<S> AsyncObserver<S> for NoopAsyncObserver {
    fn on_step(&mut self, _time: f64, _v: NodeId, _t: u64, _state: &S) {}
}

/// Runs `protocol` on `graph` under `adversary` with per-node inputs.
pub fn run_async_with_inputs<P: Fsm, A: Adversary + ?Sized>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
) -> Result<AsyncOutcome, ExecError> {
    run_async_observed(
        protocol,
        graph,
        inputs,
        adversary,
        config,
        &mut NoopAsyncObserver,
    )
}

/// Runs `protocol` asynchronously, invoking `observer` after every node
/// step.
pub fn run_async_observed<P: Fsm, A: Adversary + ?Sized, O: AsyncObserver<P::State>>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
    observer: &mut O,
) -> Result<AsyncOutcome, ExecError> {
    let n = graph.node_count();
    if inputs.len() != n {
        return Err(ExecError::InputLengthMismatch {
            nodes: n,
            inputs: inputs.len(),
        });
    }
    let sigma0 = protocol.initial_letter();
    let sigma = protocol.alphabet().len();
    let b = protocol.bound();

    // Deliver events carry the receiver's flat CSR slot as u32; fail fast
    // rather than silently wrapping on graphs beyond that addressing limit
    // (~2.1B directed port slots).
    assert!(
        u32::try_from(graph.port_slot_count()).is_ok(),
        "graph has {} directed port slots, exceeding the async engine's u32 slot addressing",
        graph.port_slot_count()
    );

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    // Flat CSR-indexed port store with incremental per-letter counts:
    // a step's observation is an O(1) count lookup, not a port scan.
    let mut ports = FlatPorts::new(graph, sigma, sigma0);
    // pending[slot]: a letter arrived at this port after the owner's last
    // step. Flat, same CSR layout as the port store.
    let mut pending: Vec<bool> = vec![false; graph.port_slot_count()];
    // FIFO watermark per directed edge, indexed by the *sender's* CSR
    // slot for v → neighbors(v)[k].
    let mut last_arrival: Vec<f64> = vec![0.0; graph.port_slot_count()];
    let mut rngs: Vec<SmallRng> = (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(config.seed ^ splitmix64(v ^ 0xABCD))))
        .collect();
    let mut step_counts: Vec<u64> = vec![1; n];

    let mut unfinished = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count();
    let mut max_param = 0.0f64;
    let mut total_steps = 0u64;
    let mut messages_sent = 0u64;
    let mut deliveries = 0u64;
    let mut lost_overwrites = 0u64;
    let mut seq = 0u64;

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: f64, kind| {
        heap.push(Reverse(Event {
            time,
            seq: *seq,
            kind,
        }));
        *seq += 1;
    };

    if unfinished == 0 {
        let outputs = states
            .iter()
            .map(|q| protocol.output(q).expect("checked"))
            .collect();
        return Ok(AsyncOutcome {
            outputs,
            completion_time: 0.0,
            time_unit: 1.0,
            normalized_time: 0.0,
            total_steps: 0,
            messages_sent: 0,
            deliveries: 0,
            lost_overwrites: 0,
        });
    }

    for v in 0..n as NodeId {
        let l = adversary.step_length(v, 1);
        debug_assert!(l > 0.0 && l.is_finite());
        max_param = max_param.max(l);
        push(&mut heap, &mut seq, l, EventKind::Step(v));
    }

    let mut events = 0u64;
    let mut completion_time = None;
    while let Some(Reverse(event)) = heap.pop() {
        events += 1;
        if events > config.max_events {
            return Err(ExecError::EventLimit {
                limit: config.max_events,
                unfinished,
            });
        }
        match event.kind {
            EventKind::Deliver { node, slot, letter } => {
                let slot = slot as usize;
                if pending[slot] {
                    lost_overwrites += 1;
                }
                pending[slot] = true;
                ports.deliver(node as usize, slot, letter);
                deliveries += 1;
            }
            EventKind::Step(v) => {
                let vi = v as usize;
                let t = step_counts[v as usize];
                total_steps += 1;
                let base = graph.csr_offset(v);
                pending[base..base + graph.degree(v)]
                    .iter_mut()
                    .for_each(|p| *p = false);

                let query = protocol.query(&states[vi]);
                let count = ports.count(vi, query) as usize;
                let transitions = protocol.delta(&states[vi], BoundedCount::from_count(count, b));
                let (next, emission) = transitions.sample(&mut rngs[vi]);
                let was_output = protocol.output(&states[vi]).is_some();
                let is_output = protocol.output(next).is_some();
                states[vi] = next.clone();
                match (was_output, is_output) {
                    (false, true) => unfinished -= 1,
                    (true, false) => unfinished += 1,
                    _ => {}
                }

                if let Some(letter) = emission {
                    messages_sent += 1;
                    let nbrs = graph.neighbors(v);
                    let rev = graph.reverse_ports(v);
                    for (k, (&u, &rp)) in nbrs.iter().zip(rev).enumerate() {
                        let d = adversary.delay(v, t, u);
                        debug_assert!(d > 0.0 && d.is_finite());
                        max_param = max_param.max(d);
                        // FIFO: never deliver before an earlier transmission
                        // on the same directed edge.
                        let mut arrival = event.time + d;
                        if arrival <= last_arrival[base + k] {
                            arrival = last_arrival[base + k] * (1.0 + 1e-12) + 1e-12;
                        }
                        last_arrival[base + k] = arrival;
                        // The receiver-side flat slot, via the precomputed
                        // reverse-port map (formerly a per-event binary
                        // search through `port_of`).
                        let slot = (graph.csr_offset(u) + rp as usize) as u32;
                        push(
                            &mut heap,
                            &mut seq,
                            arrival,
                            EventKind::Deliver {
                                node: u,
                                slot,
                                letter: *letter,
                            },
                        );
                    }
                }

                observer.on_step(event.time, v, t, &states[vi]);

                if unfinished == 0 {
                    completion_time = Some(event.time);
                    break;
                }

                step_counts[vi] = t + 1;
                let l = adversary.step_length(v, t + 1);
                debug_assert!(l > 0.0 && l.is_finite());
                max_param = max_param.max(l);
                push(&mut heap, &mut seq, event.time + l, EventKind::Step(v));
            }
        }
    }

    let completion_time = completion_time.expect(
        "event heap cannot drain before an output configuration: every \
         unfinished node always has a pending step event",
    );
    let outputs = states
        .iter()
        .map(|q| protocol.output(q).expect("output configuration"))
        .collect();
    Ok(AsyncOutcome {
        outputs,
        completion_time,
        time_unit: max_param,
        normalized_time: completion_time / max_param,
        total_steps,
        messages_sent,
        deliveries,
        lost_overwrites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Exponential, Lockstep, SlowEdges, SlowNodes, UniformRandom};
    use crate::{run_sync, SyncConfig};
    use stoneage_core::{
        Alphabet, AsMulti, Synchronized, TableProtocol, TableProtocolBuilder, Transitions,
    };
    use stoneage_graph::generators;

    /// Deterministic protocol: beep at step 1, then output 1 + f_b(#beeps).
    /// σ₀ is a distinct "quiet" letter, so the count genuinely reflects
    /// *delivered* beeps — which makes the protocol synchrony-dependent.
    fn count_neighbors(b: u8) -> TableProtocol {
        let alphabet = Alphabet::new(["beep", "quiet"]);
        let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(1));
        let start = builder.add_state("start", Letter(0));
        let listen = builder.add_state("listen", Letter(0));
        builder.add_input_state(start);
        builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
        for o in 0..=b {
            let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
            builder.set_transition(listen, o, Transitions::det(out, None));
            builder.set_transition_all(out, Transitions::det(out, None));
        }
        builder.build().unwrap()
    }

    #[test]
    fn lockstep_async_matches_sync_for_unsynchronized_protocol() {
        let g = generators::star(6);
        let p = count_neighbors(3);
        let sync_out = run_sync(&AsMulti(p.clone()), &g, &SyncConfig::seeded(1)).unwrap();
        let async_out = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(1)).unwrap();
        assert_eq!(async_out.outputs, sync_out.outputs);
    }

    #[test]
    fn unsynchronized_protocol_breaks_under_asynchrony() {
        // The raw counting protocol relies on synchrony; an adversarial
        // schedule derails it (this is exactly why Theorem 3.1 exists): a
        // node whose two steps both fire before any beep is delivered
        // observes 0 neighbors.
        let g = generators::star(8);
        let p = count_neighbors(3);
        let reference = run_async(&p, &g, &Lockstep, &AsyncConfig::seeded(0))
            .unwrap()
            .outputs;
        let mut any_diff = false;
        for seed in 0..20 {
            let adv = Exponential { seed, mean: 0.5 };
            let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(seed)).unwrap();
            if out.outputs != reference {
                any_diff = true;
                break;
            }
        }
        assert!(
            any_diff,
            "expected at least one adversarial schedule to break the \
             unsynchronized protocol"
        );
    }

    #[test]
    fn synchronized_protocol_is_correct_under_every_adversary() {
        // The synchronizer makes the deterministic counting protocol yield
        // its unique correct outputs under arbitrary schedules.
        let g = generators::star(5);
        let p = Synchronized::new(count_neighbors(3));
        let mut expected = vec![1 + 3u64]; // center, degree 4 truncated to ≥3
        expected.extend(std::iter::repeat_n(1 + 1, 4));
        for (i, adv) in crate::adversary::standard_panel(7).iter().enumerate() {
            let out = run_async(&p, &g, adv, &AsyncConfig::seeded(100 + i as u64)).unwrap();
            assert_eq!(out.outputs, expected, "adversary {}", adv.name());
            assert!(out.normalized_time > 0.0);
            assert!(out.time_unit > 0.0);
        }
    }

    #[test]
    fn async_execution_is_deterministic_per_seeds() {
        let g = generators::gnp(20, 0.2, 3);
        let p = Synchronized::new(count_neighbors(2));
        let adv = UniformRandom { seed: 5 };
        let a = run_async(&p, &g, &adv, &AsyncConfig::seeded(9)).unwrap();
        let b = run_async(&p, &g, &adv, &AsyncConfig::seeded(9)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn event_limit_is_reported() {
        let g = generators::path(4);
        let p = Synchronized::new(count_neighbors(1));
        let adv = UniformRandom { seed: 1 };
        let err = run_async(
            &p,
            &g,
            &adv,
            &AsyncConfig {
                seed: 0,
                max_events: 50,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::EventLimit { limit: 50, .. }));
    }

    #[test]
    fn normalized_time_is_scale_invariant() {
        // Scaling all adversary parameters by a constant must not change
        // the normalized run-time (the paper's measure).
        #[derive(Clone, Copy)]
        struct Scaled<A>(A, f64);
        impl<A: Adversary> Adversary for Scaled<A> {
            fn step_length(&self, v: NodeId, t: u64) -> f64 {
                self.1 * self.0.step_length(v, t)
            }
            fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
                self.1 * self.0.delay(v, t, u)
            }
            fn name(&self) -> &'static str {
                "scaled"
            }
        }
        let g = generators::cycle(6);
        let p = Synchronized::new(count_neighbors(1));
        let base = UniformRandom { seed: 2 };
        let a = run_async(&p, &g, &base, &AsyncConfig::seeded(4)).unwrap();
        let b = run_async(&p, &g, &Scaled(base, 100.0), &AsyncConfig::seeded(4)).unwrap();
        assert!((a.normalized_time - b.normalized_time).abs() < 1e-6);
        assert!((b.completion_time / a.completion_time - 100.0).abs() < 1e-3);
    }

    #[test]
    fn lost_overwrites_occur_on_slow_receivers() {
        // A very slow receiver cannot observe every message of a fast
        // sender; the no-buffer semantics must register losses.
        let g = generators::path(2);
        let p = Synchronized::new(count_neighbors(1));
        let adv = SlowNodes {
            seed: 3,
            fraction: 0.5,
            factor: 50.0,
        };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(8)).unwrap();
        // Not asserting a specific count — just exercising the path; with
        // factor 50 some loss is overwhelmingly likely but not certain.
        assert!(out.deliveries > 0);
    }

    #[test]
    fn isolated_nodes_complete_alone() {
        let g = stoneage_graph::Graph::empty(4);
        let p = Synchronized::new(count_neighbors(2));
        let adv = Exponential { seed: 1, mean: 0.3 };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(0)).unwrap();
        assert_eq!(out.outputs, vec![1, 1, 1, 1]);
    }

    #[test]
    fn slow_edges_still_converge() {
        let g = generators::complete(5);
        let p = Synchronized::new(count_neighbors(3));
        let adv = SlowEdges {
            seed: 6,
            fraction: 0.3,
            factor: 20.0,
        };
        let out = run_async(&p, &g, &adv, &AsyncConfig::seeded(2)).unwrap();
        assert_eq!(out.outputs, vec![4, 4, 4, 4, 4]);
    }

    #[test]
    fn input_mismatch_is_reported() {
        let g = generators::path(3);
        let p = count_neighbors(1);
        let err =
            run_async_with_inputs(&p, &g, &[0], &Lockstep, &AsyncConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InputLengthMismatch { .. }));
    }
}
