//! Deterministic **churn fault injection** for the lockstep engines:
//! seeded schedules of node crash/restart and edge insert/delete events,
//! applied to a running simulation at round boundaries, with incremental
//! patching of the flat port store and a full-rebuild differential
//! oracle.
//!
//! # Model
//!
//! The CSR [`Graph`] stays immutable; a [`ChurnPlan`] names a *universe*
//! (the base graph plus any [`ChurnPlan::with_extra_edge`] edges, which
//! start disabled) and a seeded, round-stamped event schedule over it.
//! A [`stoneage_graph::DynamicGraph`] overlay tracks which nodes and
//! edges are currently live:
//!
//! * **Crash** — the node's state freezes, it stops taking rounds, and
//!   every incident port slot (both directions) is retired: the letters
//!   held in them are dropped and later deliveries to them bounce off
//!   ([`crate::engine::TOMBSTONE`]).
//! * **Restart** — the node reboots into its protocol's
//!   [`stoneage_core::Protocol::restart_state`] and re-registers: every
//!   incident live slot is revived to the initial letter `σ₀`, exactly
//!   the state a fresh registration would see.
//! * **EdgeInsert / EdgeDelete** — toggle one universe edge; the two
//!   directed slots are revived to `σ₀` / retired together.
//!
//! # Epoch-boundary bit-identity
//!
//! Events are applied **only at round boundaries** — after a round's
//! phase-2b deliveries have landed and the epoch has flipped, before the
//! next round's phase-1 observations. Inside any round the engine is
//! therefore exactly the churn-free pipeline of [`crate::pipeline`]: all
//! observations read a frozen plane, all RNG streams are per-node, and
//! the plane swap is a pure epoch flip. The boundary patch itself is a
//! deterministic pure function of the event sequence (the
//! [`stoneage_graph::DynamicGraph`] replica and the emitted
//! [`stoneage_graph::SlotPatch`]es are). Consequently the serial, joined,
//! and fused schedules stay **bit-identical** under churn:
//!
//! * the joined schedule patches right after its phase-2b merge and
//!   epoch flip — the same store state the serial engine patches;
//! * the fused schedule defers phase 2b of round *r* into round
//!   *r + 1*'s worker scope, so at a churn boundary it first **flushes**
//!   the deferred buffers serially (landing exactly the writes the next
//!   scope would have landed — order is immaterial by per-round slot
//!   uniqueness, but the flush replays the fixed shard-major worker
//!   order anyway), then patches. Flush-before-patch is load-bearing: a
//!   write buffered for a slot that the boundary *revives* must be
//!   dropped by the tombstone guard and then overwritten with `σ₀`, not
//!   land on the fresh slot;
//! * a crashed node is skipped without drawing from its RNG, so every
//!   other node's stream — and its own stream across a restart — is
//!   untouched on every schedule.
//!
//! The same argument covers the two [`PatchMode`]s: incremental
//! retire/revive patching and the full-rebuild [`ChurnOracle`] path
//! produce byte-identical stores after **every** event (both the flat
//! letters and the count representations are canonical), which the churn
//! differential matrix in `tests/churn.rs` pins across graph families,
//! backends, worker counts, and round modes. A run with an *empty* plan
//! is bit-identical to the plain engine: the universe CSR is canonical
//! (same edge set ⇒ same bytes), no slot is ever tombstoned, and the
//! tombstone guards compare against a letter value no alphabet contains.
//!
//! # Example
//!
//! ```
//! use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocolBuilder, Transitions};
//! use stoneage_graph::{generators, TopologyEvent};
//! use stoneage_sim::churn::ChurnPlan;
//! use stoneage_sim::Simulation;
//!
//! // Beep once, then output how many beeps were heard (truncated at 3).
//! let mut b = TableProtocolBuilder::new("count", Alphabet::new(["beep"]), 3, Letter(0));
//! let start = b.add_state("start", Letter(0));
//! let listen = b.add_state("listen", Letter(0));
//! b.add_input_state(start);
//! b.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
//! for o in 0..=3 {
//!     let out = b.add_output_state(format!("out{o}"), Letter(0), o as u64);
//!     b.set_transition(listen, o, Transitions::det(out, None));
//!     b.set_transition_all(out, Transitions::det(out, None));
//! }
//! let protocol = AsMulti(b.build().unwrap());
//!
//! // Crash node 0 after round 1, bring it back after round 3.
//! let graph = generators::cycle(6);
//! let plan = ChurnPlan::new()
//!     .at(1, TopologyEvent::Crash(0))
//!     .at(3, TopologyEvent::Restart(0));
//! let outcome = Simulation::sync(&protocol, &graph)
//!     .seed(7)
//!     .with_churn(&plan)
//!     .run()
//!     .unwrap();
//!
//! let summary = outcome.churn().expect("churn runs carry a summary");
//! assert_eq!((summary.crashes, summary.restarts), (1, 1));
//! assert!(summary.live_nodes.iter().all(|&l| l), "node 0 was restarted");
//! // Node 0's neighbors lost its port letters to the crash and observed
//! // one beep instead of two; node 0 itself re-ran after the restart.
//! assert_eq!(outcome.outputs, vec![2, 1, 2, 2, 2, 1]);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_core::{Letter, MultiFsm, ObsVec};
use stoneage_graph::{
    DynamicGraph, Graph, GraphBuilder, NodeId, SlotOp, SlotPatch, TopologyError, TopologyEvent,
};

use crate::engine::{FlatPorts, PortPlanes};
#[cfg(feature = "parallel")]
use crate::faults::FaultSink;
use crate::faults::{FaultLayer, FaultSummary, FaultsArg};
#[cfg(feature = "parallel")]
use crate::parbuf::{
    self, ChunkPlan, ChunkScheduler, DeliveryBuffer, ParallelPolicy, RoundMode, ShardPlan,
    StealStats,
};
#[cfg(feature = "parallel")]
use crate::pipeline::{
    absorb_steal_yields, next_task, seed_deques, ShardedSink, StealTask, StealYield,
};
use crate::pipeline::{boundary_checkpoint, node_round, RoundEnd, RoundStep, SerialWrites};
use crate::scoped::{scoped_rngs, ScopedDelivery, ScopedMultiFsm, ScopedOutcome, ScopedStep};
use crate::sim::Observer;
use crate::snapshot::{self, SnapArgs, SnapPlumb, SnapshotError};
use crate::sync_exec::{
    compile_faults, seed_rngs, SyncConfig, SyncObserver, SyncOutcome, SyncStep,
};
use crate::{splitmix64, ExecError};

/// The output value reported for a node that is **dead** (crashed and
/// never restarted) when a churn run terminates — crashed nodes are
/// exempt from the all-decided termination condition, so they may end in
/// a non-output state. No protocol output collides with it (outputs are
/// small decoded values).
pub const DEAD_OUTPUT: u64 = u64::MAX;

/// How the churn layer brings the port store up to date after an event.
///
/// Both modes produce byte-identical stores after every event (see the
/// [module docs](self)); `Rebuild` exists as the differential oracle and
/// as the baseline the `churn_sweep` benchmark measures patching against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PatchMode {
    /// Apply the exact [`SlotPatch`]es the event emitted —
    /// O(changed slots) per event.
    #[default]
    Incremental,
    /// Rebuild the whole store from scratch through [`ChurnOracle`] —
    /// O(|V| + |E|) per event.
    Rebuild,
}

/// A deterministic, round-stamped topology fault schedule.
///
/// Build one with the fluent methods ([`ChurnPlan::at`],
/// [`ChurnPlan::with_extra_edge`], [`ChurnPlan::with_mode`]) or generate
/// a seeded random one with [`ChurnPlan::random`]. Events stamped with
/// round `r` are applied at the boundary **after** round `r` completes
/// (round 0 = before the first round); events within one round apply in
/// insertion order, so `Crash(v)` followed by `Restart(v)` at the same
/// round models an instant reboot. Ineffective events (crashing a dead
/// node, inserting an enabled edge) are silent no-ops; malformed events
/// are rejected as [`ExecError::Config`] before the run starts.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    events: Vec<(u64, TopologyEvent)>,
    extra_edges: Vec<(NodeId, NodeId)>,
    mode: PatchMode,
}

impl ChurnPlan {
    /// An empty plan (no events, no extra edges, incremental patching).
    /// Running under an empty plan is bit-identical to the plain engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// This plan with `event` scheduled at the boundary after `round`.
    pub fn at(mut self, round: u64, event: TopologyEvent) -> Self {
        self.events.push((round, event));
        self
    }

    /// This plan with the edge `{u, v}` added to the universe graph in
    /// the **disabled** state, so a later
    /// [`TopologyEvent::EdgeInsert`] can bring it up. An extra edge
    /// already present in the base graph is ignored (it is part of the
    /// universe and starts enabled).
    pub fn with_extra_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.extra_edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// This plan with the given [`PatchMode`].
    pub fn with_mode(mut self, mode: PatchMode) -> Self {
        self.mode = mode;
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(u64, TopologyEvent)] {
        &self.events
    }

    /// The extra (initially disabled) universe edges.
    pub fn extra_edges(&self) -> &[(NodeId, NodeId)] {
        &self.extra_edges
    }

    /// The configured patch mode.
    pub fn mode(&self) -> PatchMode {
        self.mode
    }

    /// The largest event round, or `None` for an event-free plan.
    pub fn last_round(&self) -> Option<u64> {
        self.events.iter().map(|&(r, _)| r).max()
    }

    /// The **universe graph** of this plan over `base`: the base edges
    /// plus the extra edges, as a canonical CSR. With no extra edges
    /// this is byte-identical to `base` (the CSR construction is
    /// canonical in the edge set), which is what makes empty-plan churn
    /// runs bit-identical to the plain engine.
    pub fn universe(&self, base: &Graph) -> Result<Graph, TopologyError> {
        let mut b = GraphBuilder::new(base.node_count());
        for (u, v) in base.edges() {
            b.add_edge(u, v);
        }
        for &(u, v) in &self.extra_edges {
            b.try_add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// A seeded random plan over `base`: up to `events` *effective*
    /// events (each is replayed against a local liveness replica and
    /// kept only if it changes something) stamped with uniform rounds in
    /// `1..=max_round`, plus a few random non-edges as extra universe
    /// edges so `EdgeInsert` has something to insert. Deterministic in
    /// `(base, seed, events, max_round)`.
    pub fn random(base: &Graph, seed: u64, events: usize, max_round: u64) -> ChurnPlan {
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0xC0FF_EE00));
        let n = base.node_count();
        let mut plan = ChurnPlan::new();
        if n >= 2 {
            let want = (events / 4).clamp(1, 8);
            let mut tries = 0;
            while plan.extra_edges.len() < want && tries < 64 {
                tries += 1;
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                let key = if u < v { (u, v) } else { (v, u) };
                if u != v && !base.has_edge(u, v) && !plan.extra_edges.contains(&key) {
                    plan.extra_edges.push(key);
                }
            }
        }
        let universe = plan
            .universe(base)
            .expect("extra edges were drawn in range");
        if n == 0 || max_round == 0 {
            return plan;
        }
        let edges: Vec<(NodeId, NodeId)> = universe.edges().collect();
        let mut replica = DynamicGraph::new(&universe);
        let mut patches = Vec::new();
        for &(u, v) in &plan.extra_edges {
            replica
                .apply(&universe, TopologyEvent::EdgeDelete(u, v), &mut patches)
                .expect("extra edges are universe edges");
        }
        let mut rounds: Vec<u64> = (0..events)
            .map(|_| rng.gen_range(0..max_round) + 1)
            .collect();
        rounds.sort_unstable();
        for r in rounds {
            // Draw candidates until one is effective (bounded retries so
            // degenerate graphs cannot loop forever).
            for _ in 0..16 {
                let ev = match rng.gen_range(0..4u32) {
                    0 => TopologyEvent::Crash(rng.gen_range(0..n) as NodeId),
                    1 => TopologyEvent::Restart(rng.gen_range(0..n) as NodeId),
                    k => {
                        if edges.is_empty() {
                            continue;
                        }
                        let (u, v) = edges[rng.gen_range(0..edges.len())];
                        if k == 2 {
                            TopologyEvent::EdgeInsert(u, v)
                        } else {
                            TopologyEvent::EdgeDelete(u, v)
                        }
                    }
                };
                patches.clear();
                if replica
                    .apply(&universe, ev, &mut patches)
                    .expect("candidates are drawn in range")
                {
                    plan.events.push((r, ev));
                    break;
                }
            }
        }
        plan
    }
}

/// What a churn run did to the topology, reported through
/// [`crate::Detail`] on the [`crate::Outcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Effective crash events applied.
    pub crashes: u64,
    /// Effective restart events applied.
    pub restarts: u64,
    /// Effective edge-insert events applied.
    pub edge_inserts: u64,
    /// Effective edge-delete events applied.
    pub edge_deletes: u64,
    /// The final live flag of every node, indexed by node id.
    pub live_nodes: Vec<bool>,
}

impl ChurnSummary {
    /// Number of live nodes at the end of the run.
    pub fn live_count(&self) -> usize {
        self.live_nodes.iter().filter(|&&l| l).count()
    }
}

/// The full-rebuild reference path of the churn differential oracle:
/// reconstructs the entire port store from the universe graph and the
/// current liveness overlay after an event, instead of applying the
/// event's incremental slot patches. [`PatchMode::Rebuild`] routes every
/// boundary through this; the churn differential matrix pins it
/// byte-identical to incremental patching after every event.
#[derive(Clone, Copy, Debug)]
pub struct ChurnOracle {
    sigma0: Letter,
}

impl ChurnOracle {
    /// An oracle rebuilding against the initial letter `σ₀`.
    pub fn new(sigma0: Letter) -> Self {
        ChurnOracle { sigma0 }
    }

    /// The store rebuilt from scratch: dead slots hold
    /// [`crate::engine::TOMBSTONE`], revived slots `σ₀`, live slots their
    /// current letter; all counts recomputed by scanning.
    pub fn rebuild(
        &self,
        universe: &Graph,
        overlay: &DynamicGraph,
        ports: &FlatPorts,
    ) -> FlatPorts {
        ports.rebuilt_for_churn(universe, self.sigma0, |v, k| {
            overlay.slot_live(universe, v, k)
        })
    }
}

/// The engine-side churn controller: owns the liveness overlay, walks
/// the (round-sorted) event schedule, patches the port store, and
/// accumulates the [`ChurnSummary`]. One per run; shared by every
/// schedule (serial, joined, fused) and both lockstep step flavors.
pub(crate) struct ChurnCtl<'p> {
    plan: &'p ChurnPlan,
    /// The plan's events stably sorted by round (insertion order within
    /// a round is the application order).
    events: Vec<(u64, TopologyEvent)>,
    overlay: DynamicGraph,
    oracle: ChurnOracle,
    next: usize,
    patches: Vec<SlotPatch>,
    /// Retire patches disabling the extra universe edges before round 1.
    setup_patches: Vec<SlotPatch>,
    crashes: u64,
    restarts: u64,
    edge_inserts: u64,
    edge_deletes: u64,
}

impl<'p> ChurnCtl<'p> {
    /// Validates the whole plan eagerly (a dry run against a scratch
    /// replica — malformed events become [`ExecError::Config`] before
    /// the run starts) and prepares the overlay with the plan's extra
    /// edges disabled.
    pub(crate) fn new(
        plan: &'p ChurnPlan,
        base: &Graph,
        universe: &Graph,
        sigma0: Letter,
    ) -> Result<Self, ExecError> {
        let mut events = plan.events.clone();
        events.sort_by_key(|&(r, _)| r);
        let mut overlay = DynamicGraph::new(universe);
        let mut setup_patches = Vec::new();
        for &(u, v) in &plan.extra_edges {
            if base.has_edge(u, v) {
                continue; // part of the base universe; starts enabled
            }
            overlay
                .apply(
                    universe,
                    TopologyEvent::EdgeDelete(u, v),
                    &mut setup_patches,
                )
                .map_err(|e| ExecError::Config {
                    reason: format!("churn plan: {e}"),
                })?;
        }
        let mut scratch = overlay.clone();
        let mut sink = Vec::new();
        for &(_, ev) in &events {
            scratch
                .apply(universe, ev, &mut sink)
                .map_err(|e| ExecError::Config {
                    reason: format!("churn plan: {e}"),
                })?;
        }
        Ok(ChurnCtl {
            plan,
            events,
            overlay,
            oracle: ChurnOracle::new(sigma0),
            next: 0,
            patches: Vec::new(),
            setup_patches,
            crashes: 0,
            restarts: 0,
            edge_inserts: 0,
            edge_deletes: 0,
        })
    }

    /// Retires the slots of the plan's disabled extra edges on the fresh
    /// store, before the run starts.
    pub(crate) fn setup(&mut self, ports: &mut FlatPorts) {
        for p in &self.setup_patches {
            debug_assert_eq!(p.op, SlotOp::Retire);
            ports.retire_slot(p.node as usize, p.slot as usize);
        }
    }

    /// The live flag of every node, indexed by node id.
    pub(crate) fn live(&self) -> &[bool] {
        self.overlay.live_nodes()
    }

    /// Whether events remain to be applied.
    pub(crate) fn exhausted(&self) -> bool {
        self.next == self.events.len()
    }

    /// Whether any event is due at the boundary after `round`.
    #[cfg(feature = "parallel")]
    pub(crate) fn has_pending(&self, round: u64) -> bool {
        self.peek_round().is_some_and(|r| r <= round)
    }

    /// The round of the next unapplied event, if any.
    pub(crate) fn peek_round(&self) -> Option<u64> {
        self.events.get(self.next).map(|&(r, _)| r)
    }

    /// Applies the next scheduled event to the liveness overlay (the
    /// caller checked one exists via [`ChurnCtl::peek_round`]), leaving
    /// its slot patches in [`ChurnCtl::patches`] and counting it if
    /// effective. The caller is responsible for the engine-side
    /// consequences (state resets, undecided bookkeeping, port patching
    /// via [`ChurnCtl::patch_ports`]).
    pub(crate) fn apply_next(&mut self, universe: &Graph) -> (TopologyEvent, bool) {
        let (_, ev) = self.events[self.next];
        self.next += 1;
        self.patches.clear();
        let effective = self
            .overlay
            .apply(universe, ev, &mut self.patches)
            .expect("the plan was validated eagerly");
        if effective {
            match ev {
                TopologyEvent::Crash(_) => self.crashes += 1,
                TopologyEvent::Restart(_) => self.restarts += 1,
                TopologyEvent::EdgeInsert(..) => self.edge_inserts += 1,
                TopologyEvent::EdgeDelete(..) => self.edge_deletes += 1,
            }
        }
        (ev, effective)
    }

    /// The slot patches of the event last applied by
    /// [`ChurnCtl::apply_next`].
    pub(crate) fn patches(&self) -> &[SlotPatch] {
        &self.patches
    }

    /// Brings `ports` up to date after an effective [`ChurnCtl::apply_next`],
    /// per the plan's [`PatchMode`]: incremental retire/revive of the
    /// event's own slots, or a full [`ChurnOracle`] rebuild.
    pub(crate) fn patch_ports(&self, universe: &Graph, ports: &mut FlatPorts) {
        match self.plan.mode {
            PatchMode::Incremental => {
                for p in &self.patches {
                    match p.op {
                        SlotOp::Retire => ports.retire_slot(p.node as usize, p.slot as usize),
                        SlotOp::Revive => {
                            ports.revive_slot(p.node as usize, p.slot as usize, self.oracle.sigma0)
                        }
                    }
                }
            }
            PatchMode::Rebuild => {
                *ports = self.oracle.rebuild(universe, &self.overlay, ports);
            }
        }
    }

    /// Applies every event due at the boundary after `round`: updates
    /// the overlay, patches `ports` (incrementally or via the
    /// [`ChurnOracle`] per the plan's [`PatchMode`] — after **every**
    /// effective event, so same-round crash + restart sequences agree
    /// bit-for-bit between the modes), resets restarted nodes to their
    /// [`RoundStep::restart_state`], and maintains the undecided
    /// counter. Crashed nodes leave the counter (they are exempt from
    /// termination); restarted ones re-enter it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn boundary<St: RoundStep>(
        &mut self,
        universe: &Graph,
        round: u64,
        step: &St,
        inputs: &[usize],
        states: &mut [St::State],
        undecided: &mut isize,
        ports: &mut FlatPorts,
    ) {
        while self.peek_round().is_some_and(|r| r <= round) {
            let (ev, effective) = self.apply_next(universe);
            if !effective {
                continue;
            }
            match ev {
                TopologyEvent::Crash(v) => {
                    if !step.decided(&states[v as usize]) {
                        *undecided -= 1;
                    }
                }
                TopologyEvent::Restart(v) => {
                    states[v as usize] = step.restart_state(inputs[v as usize]);
                    if !step.decided(&states[v as usize]) {
                        *undecided += 1;
                    }
                }
                TopologyEvent::EdgeInsert(..) | TopologyEvent::EdgeDelete(..) => {}
            }
            self.patch_ports(universe, ports);
        }
    }

    /// The schedule cursor: how many events [`ChurnCtl::apply_next`] has
    /// consumed. Captured into snapshots so a resumed run can
    /// [`ChurnCtl::fast_forward`] to the same position.
    pub(crate) fn cursor(&self) -> u64 {
        self.next as u64
    }

    /// Replays the first `k` events against the liveness overlay without
    /// touching any engine state — the snapshot's port store, protocol
    /// states, and undecided counter already reflect them. Rebuilds
    /// exactly the overlay, effectiveness counters, and cursor the
    /// checkpointing run had at its boundary, so the eventual
    /// [`ChurnCtl::finish`] summary is bit-identical. Fails if `k` walks
    /// past the end of the schedule (a snapshot from a different plan).
    pub(crate) fn fast_forward(&mut self, universe: &Graph, k: u64) -> Result<(), ExecError> {
        if k > self.events.len() as u64 {
            return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                field: "churn cursor",
            }));
        }
        for _ in 0..k {
            let _ = self.apply_next(universe);
        }
        self.patches.clear();
        Ok(())
    }

    /// The run's churn summary.
    pub(crate) fn finish(&self) -> ChurnSummary {
        ChurnSummary {
            crashes: self.crashes,
            restarts: self.restarts,
            edge_inserts: self.edge_inserts,
            edge_deletes: self.edge_deletes,
            live_nodes: self.overlay.live_nodes().to_vec(),
        }
    }
}

/// The serial churn round loop: [`crate::pipeline::run_serial`] with a
/// live-node filter, a boundary patch between rounds, and the
/// plan-exhaustion termination condition (a run may be all-decided while
/// a restart is still scheduled).
#[allow(clippy::too_many_arguments)]
fn run_serial_churn<St, O>(
    step: &St,
    universe: &Graph,
    planes: &mut PortPlanes,
    states: &mut [St::State],
    rngs: &mut [SmallRng],
    inputs: &[usize],
    ctl: &mut ChurnCtl<'_>,
    max_rounds: u64,
    observer: &mut O,
    witness: &mut St::Witness,
    plumb: &SnapPlumb<St::State>,
    faults: &mut FaultLayer<'_>,
) -> RoundEnd
where
    St: RoundStep,
    O: SyncObserver<St::State>,
{
    let n = states.len();
    let (start, mut sent, mut undecided) = match &plumb.resume {
        Some(r) => (r.round, r.sent, r.undecided as isize),
        None => (
            0,
            0,
            states.iter().filter(|q| !step.decided(q)).count() as isize,
        ),
    };
    if plumb.resume.is_none() {
        // Round-0 events apply before the first observation. A resumed
        // run skips this: the snapshot store already includes every
        // boundary up to its round, and fast-forward replayed the
        // schedule cursor.
        ctl.boundary(
            universe,
            0,
            step,
            inputs,
            states,
            &mut undecided,
            planes.write(),
        );
        if undecided == 0 && ctl.exhausted() {
            return RoundEnd::Done { rounds: 0, sent };
        }
    }
    let mut obs = ObsVec::zeroed(planes.sigma());
    let mut sink = SerialWrites::default();
    for round in start + 1..=max_rounds {
        sink.begin_round();
        {
            let ports = planes.read();
            let live = ctl.live();
            let mut fsink = faults.sink(&mut sink, round);
            for v in 0..n {
                if !live[v] {
                    continue;
                }
                undecided += node_round(
                    step,
                    universe,
                    ports,
                    round,
                    v,
                    &mut states[v],
                    &mut rngs[v],
                    &mut obs,
                    &mut fsink,
                    witness,
                );
            }
        }
        sent += sink.sent;
        planes.land_serial(&sink.writes);
        ctl.boundary(
            universe,
            round,
            step,
            inputs,
            states,
            &mut undecided,
            planes.write(),
        );
        observer.on_round_end(round, states);
        if undecided == 0 && ctl.exhausted() {
            return RoundEnd::Done {
                rounds: round,
                sent,
            };
        }
        boundary_checkpoint::<St, _>(
            plumb,
            round,
            sent,
            undecided,
            planes,
            states,
            rngs,
            witness,
            Some(ctl.cursor()),
            faults.capture(),
            observer,
        );
    }
    RoundEnd::Limit {
        limit: max_rounds,
        unfinished: undecided as usize,
    }
}

/// The parallel churn round loop: [`crate::pipeline::run_parallel`] with
/// the same live-node filter, boundary patch, and termination condition
/// as [`run_serial_churn`]. On the fused schedule, a boundary with due
/// events first flushes the deferred phase-2b buffers serially (see the
/// [module docs](self) for why flush-before-patch is load-bearing).
/// Both round modes compose with the work-stealing
/// [`ChunkScheduler`] exactly as in the churn-free pipeline — the live
/// filter is applied per node inside whichever chunk a task carries, so
/// the set of nodes that run a round is schedule-independent.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn run_parallel_churn<St, O>(
    step: &St,
    universe: &Graph,
    planes: &mut PortPlanes,
    states: &mut [St::State],
    rngs: &mut [SmallRng],
    inputs: &[usize],
    ctl: &mut ChurnCtl<'_>,
    policy: &ParallelPolicy,
    max_rounds: u64,
    observer: &mut O,
    witness: &mut St::Witness,
    plumb: &SnapPlumb<St::State>,
    faults: &mut FaultLayer<'_>,
    steals: &mut StealStats,
) -> RoundEnd
where
    St: RoundStep + Sync,
    St::State: Send + Sync,
    St::Witness: Send,
    O: SyncObserver<St::State>,
{
    let (start, mut sent, mut undecided) = match &plumb.resume {
        Some(r) => (r.round, r.sent, r.undecided as isize),
        None => (
            0,
            0,
            states.iter().filter(|q| !step.decided(q)).count() as isize,
        ),
    };
    if plumb.resume.is_none() {
        ctl.boundary(
            universe,
            0,
            step,
            inputs,
            states,
            &mut undecided,
            planes.write(),
        );
        if undecided == 0 && ctl.exhausted() {
            return RoundEnd::Done { rounds: 0, sent };
        }
    }
    let sigma = planes.sigma();
    // Planned ONCE per run, over the closed universe: churn patches
    // mutate letters and tombstones inside the fixed CSR layout
    // (`csr_offset` never changes — crash/restart/edge events rewrite
    // slots, not the slot *map*), so the slot-balanced bounds stay
    // valid and identically balanced across every boundary. No
    // per-epoch re-plan exists to amortize; `tests/stealing.rs` pins
    // the bounds' churn-invariance.
    let plan = ShardPlan::new(universe, policy.resolve_workers());
    let workers = plan.workers();
    let mut buffers: Vec<DeliveryBuffer> =
        (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
    let mut obs: Vec<ObsVec> = (0..workers).map(|_| ObsVec::zeroed(sigma)).collect();
    let mut witnesses: Vec<St::Witness> = (0..workers).map(|_| St::Witness::default()).collect();

    match (policy.resolve_round(), policy.resolve_scheduler()) {
        (RoundMode::Joined, ChunkScheduler::Stealing) => {
            let chunks = ChunkPlan::new(universe, &plan);
            for round in start + 1..=max_rounds {
                let ports = planes.read();
                let live = ctl.live();
                let fctx = faults.ctx;
                let results: Vec<StealYield<St::Witness>> = {
                    let deques = seed_deques(&chunks, workers, &mut *states, &mut *rngs);
                    let deques = &deques;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = buffers
                            .iter_mut()
                            .zip(obs.iter_mut())
                            .enumerate()
                            .map(|(w, (buffer, obs))| {
                                let plan = &plan;
                                scope.spawn(move || {
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    let mut wits = Vec::new();
                                    let (mut nsteals, mut nchunks) = (0u64, 0u64);
                                    while let Some((task, stolen)) = next_task(w, deques) {
                                        nchunks += 1;
                                        nsteals += stolen as u64;
                                        let StealTask {
                                            index,
                                            base,
                                            states: state_c,
                                            rngs: rng_c,
                                            ..
                                        } = task;
                                        let mut wit = St::Witness::default();
                                        for i in 0..state_c.len() {
                                            if !live[base + i] {
                                                continue;
                                            }
                                            delta += node_round(
                                                step,
                                                universe,
                                                ports,
                                                round,
                                                base + i,
                                                &mut state_c[i],
                                                &mut rng_c[i],
                                                obs,
                                                &mut fsink,
                                                &mut wit,
                                            );
                                        }
                                        wits.push((index, wit));
                                    }
                                    (delta, ftally, wits, nsteals, nchunks)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                absorb_steal_yields::<St>(results, &mut undecided, faults, witness, steals);
                sent += buffers.iter().map(|b| b.sent).sum::<u64>();
                parbuf::merge(policy.merge, planes.write(), universe, &plan, &buffers);
                planes.advance();
                ctl.boundary(
                    universe,
                    round,
                    step,
                    inputs,
                    states,
                    &mut undecided,
                    planes.write(),
                );
                observer.on_round_end(round, states);
                if undecided == 0 && ctl.exhausted() {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                boundary_checkpoint::<St, _>(
                    plumb,
                    round,
                    sent,
                    undecided,
                    planes,
                    states,
                    rngs,
                    witness,
                    Some(ctl.cursor()),
                    faults.capture(),
                    observer,
                );
            }
        }
        (RoundMode::Fused, ChunkScheduler::Stealing) => {
            let chunks = ChunkPlan::new(universe, &plan);
            let mut landing = buffers;
            let mut filling: Vec<DeliveryBuffer> =
                (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
            for round in start + 1..=max_rounds {
                let shard_cells: Vec<_> = planes
                    .epoch_shards(universe, plan.bounds())
                    .into_iter()
                    .map(std::sync::RwLock::new)
                    .collect();
                let shard_cells = &shard_cells;
                let barrier = std::sync::Barrier::new(workers);
                let barrier = &barrier;
                let landing_ref = &landing;
                let live = ctl.live();
                let fctx = faults.ctx;
                let results: Vec<StealYield<St::Witness>> = {
                    let deques = seed_deques(&chunks, workers, &mut *states, &mut *rngs);
                    let deques = &deques;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = filling
                            .iter_mut()
                            .zip(obs.iter_mut())
                            .enumerate()
                            .map(|(w, (buffer, obs))| {
                                let plan = &plan;
                                scope.spawn(move || {
                                    {
                                        let mut shard = shard_cells[w].write().unwrap();
                                        for prev in landing_ref {
                                            for wr in prev.bucket(w) {
                                                shard.land(
                                                    wr.node as usize,
                                                    wr.slot as usize,
                                                    wr.letter,
                                                );
                                            }
                                        }
                                        shard.freeze();
                                    }
                                    barrier.wait();
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    let mut wits = Vec::new();
                                    let (mut nsteals, mut nchunks) = (0u64, 0u64);
                                    while let Some((task, stolen)) = next_task(w, deques) {
                                        nchunks += 1;
                                        nsteals += stolen as u64;
                                        let StealTask {
                                            index,
                                            base,
                                            shard: task_shard,
                                            states: state_c,
                                            rngs: rng_c,
                                        } = task;
                                        let shard = shard_cells[task_shard].read().unwrap();
                                        let mut wit = St::Witness::default();
                                        for i in 0..state_c.len() {
                                            if !live[base + i] {
                                                continue;
                                            }
                                            delta += node_round(
                                                step,
                                                universe,
                                                &*shard,
                                                round,
                                                base + i,
                                                &mut state_c[i],
                                                &mut rng_c[i],
                                                obs,
                                                &mut fsink,
                                                &mut wit,
                                            );
                                        }
                                        wits.push((index, wit));
                                    }
                                    (delta, ftally, wits, nsteals, nchunks)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                planes.advance();
                std::mem::swap(&mut landing, &mut filling);
                absorb_steal_yields::<St>(results, &mut undecided, faults, witness, steals);
                sent += landing.iter().map(|b| b.sent).sum::<u64>();
                if ctl.has_pending(round) {
                    // Flush-before-patch, exactly as the static fused arm.
                    let ports = planes.write();
                    for ci in 0..workers {
                        for prev in &landing {
                            for w in prev.bucket(ci) {
                                ports.deliver(w.node as usize, w.slot as usize, w.letter);
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    ctl.boundary(universe, round, step, inputs, states, &mut undecided, ports);
                }
                observer.on_round_end(round, states);
                if undecided == 0 && ctl.exhausted() {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                if plumb.every > 0 && round % plumb.every == 0 {
                    {
                        let ports = planes.write();
                        for ci in 0..workers {
                            for prev in &landing {
                                for w in prev.bucket(ci) {
                                    ports.deliver(w.node as usize, w.slot as usize, w.letter);
                                }
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    boundary_checkpoint::<St, _>(
                        plumb,
                        round,
                        sent,
                        undecided,
                        planes,
                        states,
                        rngs,
                        witness,
                        Some(ctl.cursor()),
                        faults.capture(),
                        observer,
                    );
                }
            }
        }
        (RoundMode::Joined, ChunkScheduler::Static) => {
            for round in start + 1..=max_rounds {
                let ports = planes.read();
                let live = ctl.live();
                let fctx = faults.ctx;
                let results: Vec<(isize, FaultSummary)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = plan
                        .chunks_mut(&mut *states)
                        .into_iter()
                        .zip(plan.chunks_mut(&mut *rngs))
                        .zip(buffers.iter_mut())
                        .zip(obs.iter_mut())
                        .zip(witnesses.iter_mut())
                        .enumerate()
                        .map(|(ci, ((((state_c, rng_c), buffer), obs), wit))| {
                            let base = plan.bounds()[ci];
                            let plan = &plan;
                            scope.spawn(move || {
                                buffer.clear();
                                let mut sink = ShardedSink { buffer, plan };
                                let mut ftally = FaultSummary::default();
                                let mut fsink =
                                    FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                let mut delta = 0isize;
                                for i in 0..state_c.len() {
                                    if !live[base + i] {
                                        continue;
                                    }
                                    delta += node_round(
                                        step,
                                        universe,
                                        ports,
                                        round,
                                        base + i,
                                        &mut state_c[i],
                                        &mut rng_c[i],
                                        obs,
                                        &mut fsink,
                                        wit,
                                    );
                                }
                                (delta, ftally)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                undecided += results.iter().map(|&(d, _)| d).sum::<isize>();
                for (_, t) in &results {
                    faults.absorb(t);
                }
                sent += buffers.iter().map(|b| b.sent).sum::<u64>();
                for w in witnesses.iter_mut() {
                    St::absorb(witness, w);
                }
                parbuf::merge(policy.merge, planes.write(), universe, &plan, &buffers);
                planes.advance();
                ctl.boundary(
                    universe,
                    round,
                    step,
                    inputs,
                    states,
                    &mut undecided,
                    planes.write(),
                );
                observer.on_round_end(round, states);
                if undecided == 0 && ctl.exhausted() {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                boundary_checkpoint::<St, _>(
                    plumb,
                    round,
                    sent,
                    undecided,
                    planes,
                    states,
                    rngs,
                    witness,
                    Some(ctl.cursor()),
                    faults.capture(),
                    observer,
                );
            }
        }
        (RoundMode::Fused, ChunkScheduler::Static) => {
            let mut landing = buffers;
            let mut filling: Vec<DeliveryBuffer> =
                (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
            for round in start + 1..=max_rounds {
                let shards = planes.epoch_shards(universe, plan.bounds());
                let landing_ref = &landing;
                let live = ctl.live();
                let fctx = faults.ctx;
                let results: Vec<(isize, FaultSummary)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .into_iter()
                        .zip(plan.chunks_mut(&mut *states))
                        .zip(plan.chunks_mut(&mut *rngs))
                        .zip(filling.iter_mut())
                        .zip(obs.iter_mut())
                        .zip(witnesses.iter_mut())
                        .enumerate()
                        .map(
                            |(ci, (((((mut shard, state_c), rng_c), buffer), obs), wit))| {
                                let base = plan.bounds()[ci];
                                let plan = &plan;
                                scope.spawn(move || {
                                    for prev in landing_ref {
                                        for w in prev.bucket(ci) {
                                            shard.land(w.node as usize, w.slot as usize, w.letter);
                                        }
                                    }
                                    shard.freeze();
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    for i in 0..state_c.len() {
                                        if !live[base + i] {
                                            continue;
                                        }
                                        delta += node_round(
                                            step,
                                            universe,
                                            &shard,
                                            round,
                                            base + i,
                                            &mut state_c[i],
                                            &mut rng_c[i],
                                            obs,
                                            &mut fsink,
                                            wit,
                                        );
                                    }
                                    (delta, ftally)
                                })
                            },
                        )
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                planes.advance();
                std::mem::swap(&mut landing, &mut filling);
                undecided += results.iter().map(|&(d, _)| d).sum::<isize>();
                for (_, t) in &results {
                    faults.absorb(t);
                }
                sent += landing.iter().map(|b| b.sent).sum::<u64>();
                for w in witnesses.iter_mut() {
                    St::absorb(witness, w);
                }
                if ctl.has_pending(round) {
                    // Flush the deferred phase 2b of this round before
                    // patching: land each buffer's buckets in the fixed
                    // shard-major worker order the next scope would have
                    // used, then clear so that scope lands nothing.
                    let ports = planes.write();
                    for ci in 0..workers {
                        for prev in &landing {
                            for w in prev.bucket(ci) {
                                ports.deliver(w.node as usize, w.slot as usize, w.letter);
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    ctl.boundary(universe, round, step, inputs, states, &mut undecided, ports);
                }
                observer.on_round_end(round, states);
                if undecided == 0 && ctl.exhausted() {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                if plumb.every > 0 && round % plumb.every == 0 {
                    // Commit the deferred phase 2b before capturing, the
                    // same flush-and-clear a churn boundary performs (a
                    // no-op if one just did): the snapshot must hold the
                    // complete end-of-round store.
                    {
                        let ports = planes.write();
                        for ci in 0..workers {
                            for prev in &landing {
                                for w in prev.bucket(ci) {
                                    ports.deliver(w.node as usize, w.slot as usize, w.letter);
                                }
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    boundary_checkpoint::<St, _>(
                        plumb,
                        round,
                        sent,
                        undecided,
                        planes,
                        states,
                        rngs,
                        witness,
                        Some(ctl.cursor()),
                        faults.capture(),
                        observer,
                    );
                }
            }
        }
    }
    RoundEnd::Limit {
        limit: max_rounds,
        unfinished: undecided as usize,
    }
}

/// Decodes the terminal states of a churn run: live nodes report their
/// protocol output (termination guarantees they are decided); dead nodes
/// report the output they had decided before crashing, or
/// [`DEAD_OUTPUT`] if they crashed undecided.
fn churn_outputs<S>(
    states: &[S],
    live: &[bool],
    mut output: impl FnMut(&S) -> Option<u64>,
) -> Vec<u64> {
    states
        .iter()
        .zip(live)
        .map(|(q, &l)| {
            if l {
                output(q).expect("live nodes are decided at termination")
            } else {
                output(q).unwrap_or(DEAD_OUTPUT)
            }
        })
        .collect()
}

/// Shared start-or-resume path of the four churn executors: fresh
/// engine state (with the extra-edge setup patches applied) on a plain
/// start, or the snapshot splice — store, states, RNG streams, witness
/// transcript, churn cursor — on resume. On resume [`ChurnCtl::setup`]
/// is skipped (the restored store already reflects the setup patches and
/// every boundary up to the snapshot round) and the controller is
/// fast-forwarded to the snapshot's cursor instead. A snapshot without a
/// churn cursor, or with the wrong witness kind for the backend, is
/// rejected as a body-kind mismatch.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn churn_start<S>(
    universe: &Graph,
    sigma: usize,
    sigma0: Letter,
    initial: impl FnOnce() -> Vec<S>,
    seed: impl FnOnce(usize) -> Vec<SmallRng>,
    ctl: &mut ChurnCtl<'_>,
    snap: &SnapArgs<'_, S>,
    scoped: bool,
    faulted: bool,
) -> Result<
    (
        Vec<S>,
        PortPlanes,
        Vec<SmallRng>,
        Vec<ScopedDelivery>,
        SnapPlumb<S>,
        FaultSummary,
    ),
    ExecError,
> {
    match snap.resume {
        Some(s) => {
            let splice = snapshot::resume_lockstep(s, &snap.codec(), universe, sigma)?;
            let Some(cursor) = splice.churn_next else {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                    field: "snapshot body kind",
                }));
            };
            let witness = match (scoped, splice.witness) {
                (true, Some(w)) => w,
                (false, None) => Vec::new(),
                _ => {
                    return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                        field: "snapshot body kind",
                    }))
                }
            };
            if splice.faults.is_some() != faulted {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                    field: "snapshot body kind",
                }));
            }
            ctl.fast_forward(universe, cursor)?;
            Ok((
                splice.states,
                splice.planes,
                splice.rngs,
                witness,
                SnapPlumb::from_args(snap, Some(splice.point)),
                splice.faults.unwrap_or_default(),
            ))
        }
        None => {
            let mut planes = PortPlanes::new(universe, sigma, sigma0);
            ctl.setup(planes.write());
            Ok((
                initial(),
                planes,
                seed(universe.node_count()),
                Vec::new(),
                SnapPlumb::from_args(snap, None),
                FaultSummary::default(),
            ))
        }
    }
}

/// The serial sync engine under a churn plan: the exact
/// [`crate::sync_exec::exec_sync`] pipeline with the churn controller
/// spliced into the round boundaries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_sync_churn<P, O>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    plan: &ChurnPlan,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(SyncOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: MultiFsm,
    O: SyncObserver<P::State>,
{
    let universe = plan.universe(base).map_err(plan_config)?;
    let n = universe.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let (fctx, fout) = compile_faults(faults, &universe, protocol.alphabet().len())?;
    let mut ctl = ChurnCtl::new(plan, base, &universe, protocol.initial_letter())?;
    let (mut states, mut planes, mut rngs, _, plumb, tally) = churn_start(
        &universe,
        protocol.alphabet().len(),
        protocol.initial_letter(),
        || inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
        |n| seed_rngs(n, config.seed),
        &mut ctl,
        snap,
        false,
        fctx.is_some(),
    )?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = run_serial_churn(
        &SyncStep(protocol),
        &universe,
        &mut planes,
        &mut states,
        &mut rngs,
        inputs,
        &mut ctl,
        config.max_rounds,
        observer,
        &mut (),
        &plumb,
        &mut layer,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    sync_churn_end(protocol, states, end, ctl.finish())
}

/// The parallel twin of [`exec_sync_churn`], bit-identical to it for
/// every seed, policy, worker count, and round mode.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_sync_churn_parallel<P, O>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    plan: &ChurnPlan,
    policy: &ParallelPolicy,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(SyncOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
    O: SyncObserver<P::State>,
{
    let universe = plan.universe(base).map_err(plan_config)?;
    let n = universe.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let (fctx, fout) = compile_faults(faults, &universe, protocol.alphabet().len())?;
    let mut ctl = ChurnCtl::new(plan, base, &universe, protocol.initial_letter())?;
    let (mut states, mut planes, mut rngs, _, plumb, tally) = churn_start(
        &universe,
        protocol.alphabet().len(),
        protocol.initial_letter(),
        || inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
        |n| seed_rngs(n, config.seed),
        &mut ctl,
        snap,
        false,
        fctx.is_some(),
    )?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = run_parallel_churn(
        &SyncStep(protocol),
        &universe,
        &mut planes,
        &mut states,
        &mut rngs,
        inputs,
        &mut ctl,
        policy,
        config.max_rounds,
        observer,
        &mut (),
        &plumb,
        &mut layer,
        steals,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    sync_churn_end(protocol, states, end, ctl.finish())
}

/// The serial scoped engine under a churn plan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_scoped_churn<P, O>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    plan: &ChurnPlan,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(ScopedOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: ScopedMultiFsm,
    O: SyncObserver<P::State>,
{
    let universe = plan.universe(base).map_err(plan_config)?;
    let n = universe.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let (fctx, fout) = compile_faults(faults, &universe, protocol.alphabet().len())?;
    let mut ctl = ChurnCtl::new(plan, base, &universe, protocol.initial_letter())?;
    let (mut states, mut planes, mut rngs, mut scoped_deliveries, plumb, tally) = churn_start(
        &universe,
        protocol.alphabet().len(),
        protocol.initial_letter(),
        || inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
        |n| scoped_rngs(n, seed),
        &mut ctl,
        snap,
        true,
        fctx.is_some(),
    )?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = run_serial_churn(
        &ScopedStep(protocol),
        &universe,
        &mut planes,
        &mut states,
        &mut rngs,
        inputs,
        &mut ctl,
        max_rounds,
        observer,
        &mut scoped_deliveries,
        &plumb,
        &mut layer,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    scoped_churn_end(protocol, states, scoped_deliveries, end, ctl.finish())
}

/// The parallel twin of [`exec_scoped_churn`].
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_scoped_churn_parallel<P, O>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    plan: &ChurnPlan,
    policy: &ParallelPolicy,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(ScopedOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
    O: SyncObserver<P::State>,
{
    let universe = plan.universe(base).map_err(plan_config)?;
    let n = universe.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let (fctx, fout) = compile_faults(faults, &universe, protocol.alphabet().len())?;
    let mut ctl = ChurnCtl::new(plan, base, &universe, protocol.initial_letter())?;
    let (mut states, mut planes, mut rngs, mut scoped_deliveries, plumb, tally) = churn_start(
        &universe,
        protocol.alphabet().len(),
        protocol.initial_letter(),
        || inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
        |n| scoped_rngs(n, seed),
        &mut ctl,
        snap,
        true,
        fctx.is_some(),
    )?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = run_parallel_churn(
        &ScopedStep(protocol),
        &universe,
        &mut planes,
        &mut states,
        &mut rngs,
        inputs,
        &mut ctl,
        policy,
        max_rounds,
        observer,
        &mut scoped_deliveries,
        &plumb,
        &mut layer,
        steals,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    scoped_churn_end(protocol, states, scoped_deliveries, end, ctl.finish())
}

fn plan_config(e: TopologyError) -> ExecError {
    ExecError::Config {
        reason: format!("churn plan: {e}"),
    }
}

fn sync_churn_end<P: MultiFsm>(
    protocol: &P,
    states: Vec<P::State>,
    end: RoundEnd,
    summary: ChurnSummary,
) -> Result<(SyncOutcome, Vec<P::State>, ChurnSummary), ExecError> {
    match end {
        RoundEnd::Done { rounds, sent } => {
            let outputs = churn_outputs(&states, &summary.live_nodes, |q| protocol.output(q));
            Ok((
                SyncOutcome {
                    outputs,
                    rounds,
                    messages_sent: sent,
                },
                states,
                summary,
            ))
        }
        RoundEnd::Limit { limit, unfinished } => Err(ExecError::RoundLimit { limit, unfinished }),
    }
}

fn scoped_churn_end<P: ScopedMultiFsm>(
    protocol: &P,
    states: Vec<P::State>,
    scoped_deliveries: Vec<ScopedDelivery>,
    end: RoundEnd,
    summary: ChurnSummary,
) -> Result<(ScopedOutcome, Vec<P::State>, ChurnSummary), ExecError> {
    match end {
        RoundEnd::Done { rounds, .. } => {
            let outputs = churn_outputs(&states, &summary.live_nodes, |q| protocol.output(q));
            Ok((
                ScopedOutcome {
                    outputs,
                    rounds,
                    scoped_deliveries,
                },
                states,
                summary,
            ))
        }
        RoundEnd::Limit { limit, unfinished } => Err(ExecError::RoundLimit { limit, unfinished }),
    }
}

/// One churn event as seen by a [`StabilizationObserver`], with the
/// measured re-stabilization lag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilizationRecord {
    /// The boundary round the event was applied at.
    pub at_round: u64,
    /// The (effective) event.
    pub event: TopologyEvent,
    /// Rounds from the event to the first subsequent round whose states
    /// satisfy the stabilization predicate again, or `None` if the run
    /// ended before that happened. The paper's protocols are **not**
    /// self-stabilizing, so `None` is a real measurement — e.g. crashing
    /// a `Win` MIS node can leave its `Lose` neighbors permanently
    /// uncovered.
    pub restabilized_after: Option<u64>,
}

/// An [`Observer`] measuring **rounds-to-re-stabilize** per churn event:
/// it replays the same plan against its own liveness replica (the engine
/// applies boundary patches *before* firing `on_round_end`, so the
/// replica is always in sync with the engine's overlay when the
/// predicate runs) and records, for every effective event, how many
/// rounds passed until the predicate held again. Pair it with the
/// predicates in `stoneage-protocols`' `stabilization` module.
pub struct StabilizationObserver<F> {
    universe: Graph,
    replica: DynamicGraph,
    events: Vec<(u64, TopologyEvent)>,
    next: usize,
    patches: Vec<SlotPatch>,
    predicate: F,
    records: Vec<StabilizationRecord>,
}

impl<F> StabilizationObserver<F> {
    /// An observer for `plan` over `base`, judging stabilization with
    /// `predicate` — a function of the universe graph, the current
    /// liveness overlay, and the post-round states. Fails like the
    /// engine does on a malformed plan.
    pub fn new(base: &Graph, plan: &ChurnPlan, predicate: F) -> Result<Self, ExecError> {
        let universe = plan.universe(base).map_err(plan_config)?;
        let mut replica = DynamicGraph::new(&universe);
        let mut patches = Vec::new();
        for &(u, v) in plan.extra_edges() {
            if base.has_edge(u, v) {
                continue;
            }
            replica
                .apply(&universe, TopologyEvent::EdgeDelete(u, v), &mut patches)
                .map_err(plan_config)?;
        }
        patches.clear();
        let mut events = plan.events.clone();
        events.sort_by_key(|&(r, _)| r);
        Ok(StabilizationObserver {
            universe,
            replica,
            events,
            next: 0,
            patches,
            predicate,
            records: Vec::new(),
        })
    }

    /// The per-event records collected so far (one per effective event,
    /// in application order).
    pub fn records(&self) -> &[StabilizationRecord] {
        &self.records
    }

    /// Consumes the observer, returning its records.
    pub fn into_records(self) -> Vec<StabilizationRecord> {
        self.records
    }

    /// Whether the run **wedged**: at least one effective event was never
    /// followed by a round satisfying the predicate again
    /// (`restabilized_after == None`). The paper's protocols are not
    /// self-stabilizing, so this is a real outcome — e.g. restarting a
    /// node amid halted decided MIS neighbors; the
    /// `stoneage_protocols::selfstab` variants exist to make it false.
    pub fn wedged(&self) -> bool {
        self.records.iter().any(|r| r.restabilized_after.is_none())
    }
}

impl<S, F> Observer<S> for StabilizationObserver<F>
where
    F: FnMut(&Graph, &DynamicGraph, &[S]) -> bool,
{
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        while self.next < self.events.len() && self.events[self.next].0 <= round {
            let (at, ev) = self.events[self.next];
            self.next += 1;
            self.patches.clear();
            if self
                .replica
                .apply(&self.universe, ev, &mut self.patches)
                .unwrap_or(false)
            {
                self.records.push(StabilizationRecord {
                    at_round: at,
                    event: ev,
                    restabilized_after: None,
                });
            }
        }
        if (self.predicate)(&self.universe, &self.replica, states) {
            for r in self.records.iter_mut() {
                if r.restabilized_after.is_none() {
                    r.restabilized_after = Some(round - r.at_round);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::generators;

    #[test]
    fn random_plans_are_deterministic_and_effective() {
        let g = generators::gnp(40, 0.15, 3);
        let a = ChurnPlan::random(&g, 9, 12, 30);
        let b = ChurnPlan::random(&g, 9, 12, 30);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.extra_edges(), b.extra_edges());
        assert!(!a.events().is_empty());
        // Every generated event must be effective when replayed in order.
        let universe = a.universe(&g).unwrap();
        let mut d = DynamicGraph::new(&universe);
        let mut p = Vec::new();
        for &(u, v) in a.extra_edges() {
            d.apply(&universe, TopologyEvent::EdgeDelete(u, v), &mut p)
                .unwrap();
        }
        for &(_, ev) in a.events() {
            assert!(d.apply(&universe, ev, &mut p).unwrap(), "{ev:?}");
        }
    }

    #[test]
    fn universe_without_extras_is_byte_identical() {
        let g = generators::random_tree(60, 5);
        let u = ChurnPlan::new().universe(&g).unwrap();
        assert_eq!(g, u);
    }

    #[test]
    fn malformed_plans_are_config_errors() {
        let g = generators::path(4);
        let plan = ChurnPlan::new().at(2, TopologyEvent::Crash(99));
        let err = ChurnCtl::new(&plan, &g, &g, Letter(0)).err().unwrap();
        assert!(matches!(err, ExecError::Config { ref reason }
            if reason.contains("out of range")));
        let plan = ChurnPlan::new().at(1, TopologyEvent::EdgeInsert(0, 3));
        let err = ChurnCtl::new(&plan, &g, &g, Letter(0)).err().unwrap();
        assert!(matches!(err, ExecError::Config { ref reason }
            if reason.contains("not part of the universe")));
    }

    #[test]
    fn oracle_rebuild_matches_incremental_patch() {
        let g = generators::gnp(30, 0.2, 11);
        let mut inc = FlatPorts::new(&g, 3, Letter(1));
        let mut overlay = DynamicGraph::new(&g);
        let oracle = ChurnOracle::new(Letter(1));
        let mut patches = Vec::new();
        // Deliver some traffic so stores are not in the initial state.
        for v in g.nodes() {
            inc.broadcast(&g, v, Letter(v as u16 % 3));
        }
        let events = [
            TopologyEvent::Crash(3),
            TopologyEvent::Crash(7),
            TopologyEvent::Restart(3),
            TopologyEvent::EdgeDelete(g.edges().next().unwrap().0, g.edges().next().unwrap().1),
        ];
        for ev in events {
            patches.clear();
            if overlay.apply(&g, ev, &mut patches).unwrap() {
                let rebuilt = oracle.rebuild(&g, &overlay, &inc);
                for p in &patches {
                    match p.op {
                        SlotOp::Retire => inc.retire_slot(p.node as usize, p.slot as usize),
                        SlotOp::Revive => {
                            inc.revive_slot(p.node as usize, p.slot as usize, Letter(1))
                        }
                    }
                }
                assert_eq!(inc.dense_counts(&g), rebuilt.dense_counts(&g), "{ev:?}");
                for s in 0..g.port_slot_count() {
                    assert_eq!(
                        inc.letter_at(s),
                        rebuilt.letter_at(s),
                        "slot {s} after {ev:?}"
                    );
                }
            }
        }
    }
}
