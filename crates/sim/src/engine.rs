//! The **flat delivery engine**: the shared execution substrate of the
//! synchronous, scoped, and asynchronous executors.
//!
//! Three representation choices remove the per-round heap churn that used
//! to dominate large sweeps:
//!
//! 1. **Flat port store.** All ports of all nodes live in one
//!    `Vec<Letter>` indexed by the graph's CSR offsets
//!    ([`stoneage_graph::Graph::csr_offset`]): node `v`'s `k`-th port is
//!    slot `csr_offset(v) + k`. No `Vec<Vec<_>>`, no per-node pointer
//!    chase, no per-run nested allocations.
//! 2. **Precomputed reverse-port maps.** Delivering `v`'s letter to every
//!    neighbor `u` writes slot `csr_offset(u) + ψ_u(v)` where `ψ_u(v)`
//!    comes from [`stoneage_graph::Graph::reverse_ports`], computed once
//!    at graph build time — replacing the former per-delivery
//!    `O(log deg(u))` `port_of` binary search.
//! 3. **Incremental observation counts.** [`FlatPorts`] maintains, per
//!    node, the exact number of ports holding each letter; every port
//!    overwrite decrements the old letter's count and increments the new
//!    one. A node's phase-1 observation is then an O(|Σ|) refill of a
//!    reusable [`ObsVec`] scratch buffer
//!    ([`stoneage_core::ObsVec::refill_from_counts`]) instead of an
//!    O(deg(v)) port scan plus a fresh `Vec` collect.
//!
//! The memory cost of (3) is `|V| · |Σ|` counters, which is the right
//! trade for the protocol sizes the nFSM model mandates (|Σ| is a model
//! constant, requirement (M4)).
//!
//! Executors additionally keep an **undecided-node counter** (maintained
//! on state transitions) so termination detection is O(1) per round
//! rather than an O(|V|) output scan.

use stoneage_core::Letter;
use stoneage_graph::{Graph, NodeId};

/// The flat port store plus incrementally maintained per-node letter
/// counts. See the module docs for the layout.
#[derive(Clone, Debug)]
pub struct FlatPorts {
    sigma: usize,
    /// `letters[csr_offset(v) + k]` = last letter delivered on `v`'s
    /// `k`-th port.
    letters: Vec<Letter>,
    /// `counts[v * sigma + l]` = exact number of `v`'s ports holding
    /// letter `l`. Always consistent with `letters`.
    counts: Vec<u32>,
}

impl FlatPorts {
    /// All ports initialized to the initial letter `σ₀` (the paper's
    /// pre-delivery port contents).
    pub fn new(graph: &Graph, sigma: usize, sigma0: Letter) -> Self {
        let n = graph.node_count();
        let mut counts = vec![0u32; n * sigma];
        for v in 0..n {
            counts[v * sigma + sigma0.index()] = graph.degree(v as NodeId) as u32;
        }
        FlatPorts {
            sigma,
            letters: vec![sigma0; graph.port_slot_count()],
            counts,
        }
    }

    /// The alphabet size this store was built for.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The exact per-letter counts of node `v`, indexed by letter index.
    #[inline]
    pub fn counts_of(&self, v: usize) -> &[u32] {
        &self.counts[v * self.sigma..(v + 1) * self.sigma]
    }

    /// The exact count of `letter` over `v`'s ports — the untruncated
    /// `#letter` of the paper, in O(1).
    #[inline]
    pub fn count(&self, v: usize, letter: Letter) -> u32 {
        self.counts[v * self.sigma + letter.index()]
    }

    /// Node `v`'s ports as a slice (port `k` = `v`'s `k`-th neighbor).
    #[inline]
    pub fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        let base = graph.csr_offset(v);
        &self.letters[base..base + graph.degree(v)]
    }

    /// The letter currently stored in flat slot `slot`.
    #[inline]
    pub fn letter_at(&self, slot: usize) -> Letter {
        self.letters[slot]
    }

    /// Overwrites the port at flat `slot` (belonging to node `node`) with
    /// `letter`, maintaining the incremental counts.
    #[inline]
    pub fn deliver(&mut self, node: usize, slot: usize, letter: Letter) {
        let old = std::mem::replace(&mut self.letters[slot], letter);
        if old != letter {
            let base = node * self.sigma;
            self.counts[base + old.index()] -= 1;
            self.counts[base + letter.index()] += 1;
        }
    }

    /// Broadcasts `letter` from `v` to all of its neighbors' reverse
    /// ports — the flat-engine delivery of one non-`ε` emission.
    #[inline]
    pub fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter) {
        let nbrs = graph.neighbors(v);
        let rev = graph.reverse_ports(v);
        for (&u, &rp) in nbrs.iter().zip(rev) {
            self.deliver(u as usize, graph.csr_offset(u) + rp as usize, letter);
        }
    }

    /// Recomputes all per-node letter counts from scratch by scanning the
    /// port store. Used by property tests to validate the incremental
    /// maintenance; executors never call this.
    pub fn recount(&self, graph: &Graph) -> Vec<u32> {
        let n = graph.node_count();
        let mut counts = vec![0u32; n * self.sigma];
        for v in 0..n {
            let base = graph.csr_offset(v as NodeId);
            for k in 0..graph.degree(v as NodeId) {
                counts[v * self.sigma + self.letters[base + k].index()] += 1;
            }
        }
        counts
    }

    /// The raw incremental counts, laid out `[v * sigma + letter]`. For
    /// comparison against [`FlatPorts::recount`] in tests.
    pub fn raw_counts(&self) -> &[u32] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stoneage_graph::generators;

    #[test]
    fn initial_counts_are_degrees_on_sigma0() {
        let g = generators::star(5);
        let ports = FlatPorts::new(&g, 3, Letter(1));
        assert_eq!(ports.counts_of(0), &[0, 4, 0]);
        for v in 1..5 {
            assert_eq!(ports.counts_of(v), &[0, 1, 0]);
            assert_eq!(ports.count(v, Letter(1)), 1);
        }
        assert_eq!(ports.raw_counts(), &ports.recount(&g)[..]);
    }

    #[test]
    fn broadcast_lands_on_reverse_ports() {
        let g = generators::cycle(4);
        let mut ports = FlatPorts::new(&g, 2, Letter(0));
        ports.broadcast(&g, 1, Letter(1));
        // Exactly 0's and 2's ports toward node 1 hold the new letter.
        for v in g.nodes() {
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let expected = if u == 1 { Letter(1) } else { Letter(0) };
                assert_eq!(ports.letter_at(g.csr_offset(v) + k), expected);
            }
        }
        assert_eq!(ports.raw_counts(), &ports.recount(&g)[..]);
    }

    #[test]
    fn redundant_overwrite_keeps_counts_consistent() {
        let g = generators::path(3);
        let mut ports = FlatPorts::new(&g, 2, Letter(0));
        let slot = g.csr_offset(1); // node 1's port toward node 0
        ports.deliver(1, slot, Letter(1));
        ports.deliver(1, slot, Letter(1)); // same letter again
        ports.deliver(1, slot, Letter(0)); // back to σ₀
        assert_eq!(ports.raw_counts(), &ports.recount(&g)[..]);
        assert_eq!(ports.count(1, Letter(0)), 2);
        assert_eq!(ports.count(1, Letter(1)), 0);
    }

    proptest! {
        /// The tentpole invariant: after any sequence of random
        /// deliveries, the incrementally maintained counts equal a
        /// from-scratch recount of the port store.
        #[test]
        fn incremental_counts_match_recount(
            n in 2usize..40,
            p in 0.05f64..0.5,
            gseed in 0u64..500,
            sigma in 1usize..6,
            rounds in 1usize..60,
        ) {
            let g = generators::gnp(n, p, gseed);
            let mut ports = FlatPorts::new(&g, sigma, Letter(0));
            let mut state = gseed.wrapping_mul(0x9E3779B97F4A7C15) ^ rounds as u64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..rounds {
                let v = (next() % n as u64) as usize;
                let deg = g.degree(v as u32);
                if deg == 0 {
                    continue;
                }
                if next() % 3 == 0 {
                    // Whole-node broadcast through the reverse-port map.
                    let letter = Letter((next() % sigma as u64) as u16);
                    ports.broadcast(&g, v as u32, letter);
                } else {
                    // Single-port overwrite.
                    let k = (next() % deg as u64) as usize;
                    let letter = Letter((next() % sigma as u64) as u16);
                    ports.deliver(v, g.csr_offset(v as u32) + k, letter);
                }
            }
            prop_assert_eq!(ports.raw_counts(), &ports.recount(&g)[..]);
        }
    }
}
