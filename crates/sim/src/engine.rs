//! The **flat delivery engine**: the shared execution substrate of the
//! synchronous, scoped, and asynchronous executors.
//!
//! Three representation choices remove the per-round heap churn that used
//! to dominate large sweeps:
//!
//! 1. **Flat port store.** All ports of all nodes live in one
//!    `Vec<Letter>` indexed by the graph's CSR offsets
//!    ([`stoneage_graph::Graph::csr_offset`]): node `v`'s `k`-th port is
//!    slot `csr_offset(v) + k`. No `Vec<Vec<_>>`, no per-node pointer
//!    chase, no per-run nested allocations.
//! 2. **Precomputed reverse-port maps.** Delivering `v`'s letter to every
//!    neighbor `u` writes slot `csr_offset(u) + ψ_u(v)` where `ψ_u(v)`
//!    comes from [`stoneage_graph::Graph::reverse_ports`], computed once
//!    at graph build time — replacing the former per-delivery
//!    `O(log deg(u))` `port_of` binary search.
//! 3. **Incremental observation counts.** [`FlatPorts`] maintains, per
//!    node, the exact number of ports holding each letter; every port
//!    overwrite decrements the old letter's count and increments the new
//!    one. A node's phase-1 observation is then an O(|Σ|) refill of a
//!    reusable [`ObsVec`] scratch buffer ([`FlatPorts::refill_obs`])
//!    instead of an O(deg(v)) port scan plus a fresh `Vec` collect.
//!
//! # Dense vs. sparse counts
//!
//! The count table of (3) is dense by default — `|V| · |Σ|` `u32`
//! counters, the right trade for the protocol sizes the nFSM model
//! mandates (|Σ| is a model constant, requirement (M4)). But *compiled*
//! protocols blow the constant up: `Synchronized` ∘ `SingleLetter` grows
//! an alphabet of `σ` letters to `3(σ+1)²`, so a σ = 9 source protocol
//! already costs 300 counters per node while any node's ports can hold at
//! most `deg(v)` distinct letters. Above
//! [`SPARSE_SIGMA_THRESHOLD`] letters, [`FlatPorts::new`] therefore
//! switches to a **sparse** per-node map of `(letter, count)` pairs
//! (sorted by letter, non-zero counts only): memory `O(Σ_v deg(v))`
//! instead of `O(|V| · |Σ|)`, updates by binary search over at most
//! `deg(v)` live entries. [`FlatPorts::with_layout`] forces either
//! representation; a property test pins sparse ≡ dense.
//!
//! Executors additionally keep an **undecided-node counter** (maintained
//! on state transitions) so termination detection is O(1) per round
//! rather than an O(|V|) output scan.
//!
//! # Shard views
//!
//! The parallel phase-2 delivery of [`crate::parbuf`] needs several
//! workers writing into one port store at once. Because the store is CSR
//! laid out, a partition of the *node* range into contiguous shards
//! induces a partition of both the letter slots and the count rows into
//! contiguous, disjoint memory ranges — so [`FlatPorts::shards_mut`] can
//! hand out one safe `&mut` view per shard ([`PortShard`]) with plain
//! `split_at_mut`, no locks and no unsafe. A shard accepts exactly the
//! deliveries whose *receiver* falls in its node range; slots and count
//! rows of different shards never alias. A shard also serves the *read*
//! side of the engine — [`PortShard::refill_obs`], [`PortShard::count`],
//! [`PortShard::ports_of`] — because a node's observation touches only
//! its own count row and its own CSR slots, both of which live inside
//! the shard that owns the node.
//!
//! # Port planes: the epoch-split store
//!
//! [`PortPlanes`] is the double-buffered face of the store that the
//! round pipeline ([`crate::pipeline`]) executes on. Logically there are
//! two planes per round *r*:
//!
//! * the **read plane** — the port state at the end of round *r − 1*,
//!   frozen for the whole of round *r*; every phase-1 observation and
//!   every scoped target draw of round *r* reads it;
//! * the **write plane** — where the phase-2 deliveries of round *r*
//!   land; at the round boundary it *becomes* round *r + 1*'s read
//!   plane.
//!
//! The two planes share one backing [`FlatPorts`]: because every flat
//! slot is written **at most once per round** (a sender emits at most
//! once, and slot `csr_offset(u) + ψ_u(v)` is private to the edge
//! `v → u`), and because the per-letter count updates are commutative
//! integer sums over a canonical representation, the write plane of
//! round *r* differs from the read plane only in slots no round-*r*
//! reader observes *after* their delivery lands. The plane swap
//! ([`PortPlanes::advance`]) is therefore a pure epoch flip — no letter
//! is copied, and the incrementally maintained counts are handed to the
//! next epoch as-is.
//!
//! Concretely the split is enforced in *time*, per shard:
//! [`PortPlanes::epoch_shards`] hands each pipeline worker a
//! [`PlaneShard`] that starts in the **write-plane** state (only
//! [`PlaneShard::land`] is allowed — the deferred deliveries of the
//! previous round are merged here), then flips to the **read-plane**
//! state via [`PlaneShard::freeze`] (only observations are allowed; a
//! debug assertion rejects any further write). Each worker lands and
//! reads only its own shard, so the fused pipeline needs no second
//! letter array and no cross-worker synchronization beyond the one
//! scope join per round.

use stoneage_core::{Letter, ObsVec};
use stoneage_graph::{Graph, NodeId};

/// Alphabet size above which [`FlatPorts::new`] keeps its per-node
/// observation counts sparse. `3(σ+1)²` — the compiled alphabet of
/// `Synchronized` ∘ `SingleLetter` — lands exactly here at σ = 3 (still
/// dense) and crosses at σ = 4, so every synthesized protocol beyond toy
/// alphabets gets the sparse layout while hand-written model-constant
/// alphabets stay dense.
pub const SPARSE_SIGMA_THRESHOLD: usize = 48;

/// The letter value marking a **dead** (retired) port slot under churn
/// fault injection — `u16::MAX`, far outside any real alphabet (alphabet
/// indices are bounded by the table builders well below it).
///
/// A tombstoned slot holds no letter: it is excluded from the per-node
/// letter counts, and every delivery path ([`FlatPorts::deliver`],
/// [`FlatPorts::deliver_run`], [`PortShard::deliver`]) drops writes to it
/// on the floor. Churn-free runs never contain a tombstone, so the guard
/// is a single predictable compare on the hot path and all churn-free
/// outcomes are byte-identical to builds without it.
pub const TOMBSTONE: Letter = Letter(u16::MAX);

/// Which per-node count representation a [`FlatPorts`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountLayout {
    /// `counts[v * sigma + letter]`, one `u32` per (node, letter).
    Dense,
    /// Per node, the sorted `(letter, count)` pairs with non-zero count.
    Sparse,
}

#[derive(Clone, Debug)]
enum Counts {
    Dense(Vec<u32>),
    Sparse(Vec<Vec<(u16, u32)>>),
}

/// The flat port store plus incrementally maintained per-node letter
/// counts. See the module docs for the layout.
#[derive(Clone, Debug)]
pub struct FlatPorts {
    sigma: usize,
    /// `letters[csr_offset(v) + k]` = last letter delivered on `v`'s
    /// `k`-th port.
    letters: Vec<Letter>,
    /// Per-node per-letter counts, dense or sparse. Always consistent
    /// with `letters`.
    counts: Counts,
}

impl FlatPorts {
    /// All ports initialized to the initial letter `σ₀` (the paper's
    /// pre-delivery port contents). Picks the count layout by alphabet
    /// size: dense up to [`SPARSE_SIGMA_THRESHOLD`] letters, sparse
    /// beyond.
    pub fn new(graph: &Graph, sigma: usize, sigma0: Letter) -> Self {
        let layout = if sigma > SPARSE_SIGMA_THRESHOLD {
            CountLayout::Sparse
        } else {
            CountLayout::Dense
        };
        Self::with_layout(graph, sigma, sigma0, layout)
    }

    /// Like [`FlatPorts::new`] with an explicit count layout — used by the
    /// sparse ≡ dense differential tests; executors take the gate.
    pub fn with_layout(graph: &Graph, sigma: usize, sigma0: Letter, layout: CountLayout) -> Self {
        let n = graph.node_count();
        let counts = match layout {
            CountLayout::Dense => {
                let mut counts = vec![0u32; n * sigma];
                for v in 0..n {
                    counts[v * sigma + sigma0.index()] = graph.degree(v as NodeId) as u32;
                }
                Counts::Dense(counts)
            }
            CountLayout::Sparse => Counts::Sparse(
                (0..n)
                    .map(|v| {
                        let deg = graph.degree(v as NodeId) as u32;
                        if deg == 0 {
                            Vec::new()
                        } else {
                            vec![(sigma0.0, deg)]
                        }
                    })
                    .collect(),
            ),
        };
        FlatPorts {
            sigma,
            letters: vec![sigma0; graph.port_slot_count()],
            counts,
        }
    }

    /// Rebuilds a store from a serialized letter array — the restore half
    /// of the snapshot layer. Picks the same count layout as
    /// [`FlatPorts::new`] would for `sigma` and recomputes all counts
    /// canonically by scanning ([`TOMBSTONE`]d slots count nothing), so a
    /// capture → restore round trip is byte-identical to the live store:
    /// the incremental count maintenance keeps exactly the canonical
    /// representation this scan produces.
    ///
    /// # Panics
    /// Panics if `letters.len()` differs from the graph's port slot count.
    pub fn from_letters(graph: &Graph, sigma: usize, letters: Vec<Letter>) -> Self {
        assert_eq!(
            letters.len(),
            graph.port_slot_count(),
            "letter array does not match the graph's port slot count"
        );
        let n = graph.node_count();
        let counts = if sigma > SPARSE_SIGMA_THRESHOLD {
            Counts::Sparse(
                (0..n)
                    .map(|v| {
                        let base = graph.csr_offset(v as NodeId);
                        let mut ls: Vec<u16> = letters[base..base + graph.degree(v as NodeId)]
                            .iter()
                            .filter(|&&l| l != TOMBSTONE)
                            .map(|l| l.0)
                            .collect();
                        ls.sort_unstable();
                        let mut m: Vec<(u16, u32)> = Vec::new();
                        for l in ls {
                            match m.last_mut() {
                                Some(e) if e.0 == l => e.1 += 1,
                                _ => m.push((l, 1)),
                            }
                        }
                        m
                    })
                    .collect(),
            )
        } else {
            let mut counts = vec![0u32; n * sigma];
            for v in 0..n {
                let base = graph.csr_offset(v as NodeId);
                for k in 0..graph.degree(v as NodeId) {
                    let l = letters[base + k];
                    if l != TOMBSTONE {
                        counts[v * sigma + l.index()] += 1;
                    }
                }
            }
            Counts::Dense(counts)
        };
        FlatPorts {
            sigma,
            letters,
            counts,
        }
    }

    /// The alphabet size this store was built for.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The full flat letter array, CSR-indexed — the capture half of the
    /// snapshot layer ([`FlatPorts::from_letters`] restores it).
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// The count representation in use.
    pub fn layout(&self) -> CountLayout {
        match self.counts {
            Counts::Dense(_) => CountLayout::Dense,
            Counts::Sparse(_) => CountLayout::Sparse,
        }
    }

    /// The exact per-letter counts of node `v`, indexed by letter index.
    ///
    /// Only available in the dense layout (a sparse store has no dense
    /// slice to lend); engines observe through [`FlatPorts::refill_obs`],
    /// which handles both.
    #[inline]
    pub fn counts_of(&self, v: usize) -> &[u32] {
        match &self.counts {
            Counts::Dense(counts) => &counts[v * self.sigma..(v + 1) * self.sigma],
            Counts::Sparse(_) => {
                panic!("counts_of requires the dense layout; use refill_obs or count")
            }
        }
    }

    /// The exact count of `letter` over `v`'s ports — the untruncated
    /// `#letter` of the paper. O(1) dense, O(log deg) sparse.
    #[inline]
    pub fn count(&self, v: usize, letter: Letter) -> u32 {
        match &self.counts {
            Counts::Dense(counts) => counts[v * self.sigma + letter.index()],
            Counts::Sparse(maps) => maps[v]
                .binary_search_by_key(&letter.0, |e| e.0)
                .map(|i| maps[v][i].1)
                .unwrap_or(0),
        }
    }

    /// Refills `obs` with `f_b` of node `v`'s exact per-letter counts —
    /// the phase-1 observation, independent of the count layout.
    #[inline]
    pub fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8) {
        match &self.counts {
            Counts::Dense(counts) => {
                obs.refill_from_counts(&counts[v * self.sigma..(v + 1) * self.sigma], b)
            }
            Counts::Sparse(maps) => obs.refill_from_sparse(self.sigma, &maps[v], b),
        }
    }

    /// Node `v`'s ports as a slice (port `k` = `v`'s `k`-th neighbor).
    #[inline]
    pub fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        let base = graph.csr_offset(v);
        &self.letters[base..base + graph.degree(v)]
    }

    /// The letter currently stored in flat slot `slot`.
    #[inline]
    pub fn letter_at(&self, slot: usize) -> Letter {
        self.letters[slot]
    }

    /// Overwrites the port at flat `slot` (belonging to node `node`) with
    /// `letter`, maintaining the incremental counts. Writes to a
    /// [`TOMBSTONE`]d (dead) slot are dropped.
    #[inline]
    pub fn deliver(&mut self, node: usize, slot: usize, letter: Letter) {
        if self.letters[slot] == TOMBSTONE {
            return;
        }
        let old = std::mem::replace(&mut self.letters[slot], letter);
        if old == letter {
            return;
        }
        match &mut self.counts {
            Counts::Dense(counts) => {
                let base = node * self.sigma;
                counts[base + old.index()] -= 1;
                counts[base + letter.index()] += 1;
            }
            Counts::Sparse(maps) => sparse_swap(&mut maps[node], old, letter),
        }
    }

    /// Applies several port overwrites of **one node** with a single
    /// count-update pass: letters are swapped slot by slot while the
    /// per-letter count changes accumulate as net deltas in `deltas`
    /// (caller-owned scratch, cleared here), which are then applied to
    /// `node`'s count row once per distinct letter.
    ///
    /// Produces exactly the state that the same writes applied one
    /// [`FlatPorts::deliver`] at a time would — per-letter count updates
    /// are commutative integer sums and the sparse map is canonical — but
    /// pays one count-row lookup per *distinct letter* instead of two per
    /// write. The async executor uses this to coalesce same-instant
    /// deliveries to one receiver from different senders (the slots are
    /// distinct by per-edge FIFO, so the swaps commute too).
    pub fn deliver_run(
        &mut self,
        node: usize,
        writes: &[(u32, Letter)],
        deltas: &mut Vec<(u16, i64)>,
    ) {
        fn accumulate(deltas: &mut Vec<(u16, i64)>, letter: u16, d: i64) {
            match deltas.iter_mut().find(|e| e.0 == letter) {
                Some(e) => e.1 += d,
                None => deltas.push((letter, d)),
            }
        }
        deltas.clear();
        for &(slot, letter) in writes {
            if self.letters[slot as usize] == TOMBSTONE {
                continue;
            }
            let old = std::mem::replace(&mut self.letters[slot as usize], letter);
            if old == letter {
                continue;
            }
            accumulate(deltas, old.0, -1);
            accumulate(deltas, letter.0, 1);
        }
        match &mut self.counts {
            Counts::Dense(counts) => {
                let base = node * self.sigma;
                for &(l, d) in deltas.iter() {
                    if d != 0 {
                        let c = &mut counts[base + l as usize];
                        *c = (*c as i64 + d) as u32;
                    }
                }
            }
            Counts::Sparse(maps) => {
                let m = &mut maps[node];
                for &(l, d) in deltas.iter() {
                    if d != 0 {
                        sparse_apply_delta(m, l, d);
                    }
                }
            }
        }
    }

    /// Broadcasts `letter` from `v` to all of its neighbors' reverse
    /// ports — the flat-engine delivery of one non-`ε` emission.
    #[inline]
    pub fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter) {
        let nbrs = graph.neighbors(v);
        let rev = graph.reverse_ports(v);
        for (&u, &rp) in nbrs.iter().zip(rev) {
            self.deliver(u as usize, graph.csr_offset(u) + rp as usize, letter);
        }
    }

    /// Kills the port at flat `slot` (belonging to node `node`): the
    /// letter it held is dropped, its count decremented, and the slot
    /// left holding [`TOMBSTONE`] so subsequent deliveries bounce off.
    /// Idempotent. Only the churn layer calls this, at round boundaries.
    pub fn retire_slot(&mut self, node: usize, slot: usize) {
        let old = std::mem::replace(&mut self.letters[slot], TOMBSTONE);
        if old == TOMBSTONE {
            return;
        }
        match &mut self.counts {
            Counts::Dense(counts) => counts[node * self.sigma + old.index()] -= 1,
            Counts::Sparse(maps) => sparse_apply_delta(&mut maps[node], old.0, -1),
        }
    }

    /// Revives a [`TOMBSTONE`]d port at flat `slot` (belonging to node
    /// `node`) to the initial letter `σ₀` — the re-registration half of a
    /// churn restart/edge-insert. The slot must currently be dead.
    pub fn revive_slot(&mut self, node: usize, slot: usize, sigma0: Letter) {
        let old = std::mem::replace(&mut self.letters[slot], sigma0);
        debug_assert_eq!(old, TOMBSTONE, "revive_slot requires a retired slot");
        match &mut self.counts {
            Counts::Dense(counts) => counts[node * self.sigma + sigma0.index()] += 1,
            Counts::Sparse(maps) => sparse_apply_delta(&mut maps[node], sigma0.0, 1),
        }
    }

    /// The full-rebuild reference of the churn differential oracle: a
    /// store reconstructed from scratch in which slot `(v, k)` holds
    /// [`TOMBSTONE`] when `live(v, k)` is false, `σ₀` where this store
    /// holds a tombstone (a revived slot re-registers), and this store's
    /// letter otherwise — with all counts recomputed by scanning, in the
    /// same layout. Incremental [`FlatPorts::retire_slot`] /
    /// [`FlatPorts::revive_slot`] patching must reproduce this
    /// bit-for-bit (both representations are canonical), which is exactly
    /// what the churn differential matrix pins.
    pub fn rebuilt_for_churn(
        &self,
        graph: &Graph,
        sigma0: Letter,
        live: impl Fn(NodeId, usize) -> bool,
    ) -> FlatPorts {
        let n = graph.node_count();
        let mut letters = vec![TOMBSTONE; graph.port_slot_count()];
        for v in 0..n {
            let base = graph.csr_offset(v as NodeId);
            for k in 0..graph.degree(v as NodeId) {
                if live(v as NodeId, k) {
                    let old = self.letters[base + k];
                    letters[base + k] = if old == TOMBSTONE { sigma0 } else { old };
                }
            }
        }
        let counts = match self.layout() {
            CountLayout::Dense => {
                let mut counts = vec![0u32; n * self.sigma];
                for v in 0..n {
                    let base = graph.csr_offset(v as NodeId);
                    for k in 0..graph.degree(v as NodeId) {
                        let l = letters[base + k];
                        if l != TOMBSTONE {
                            counts[v * self.sigma + l.index()] += 1;
                        }
                    }
                }
                Counts::Dense(counts)
            }
            CountLayout::Sparse => Counts::Sparse(
                (0..n)
                    .map(|v| {
                        let base = graph.csr_offset(v as NodeId);
                        let mut ls: Vec<u16> = letters[base..base + graph.degree(v as NodeId)]
                            .iter()
                            .filter(|&&l| l != TOMBSTONE)
                            .map(|l| l.0)
                            .collect();
                        ls.sort_unstable();
                        let mut m: Vec<(u16, u32)> = Vec::new();
                        for l in ls {
                            match m.last_mut() {
                                Some(e) if e.0 == l => e.1 += 1,
                                _ => m.push((l, 1)),
                            }
                        }
                        m
                    })
                    .collect(),
            ),
        };
        FlatPorts {
            sigma: self.sigma,
            letters,
            counts,
        }
    }

    /// Recomputes all per-node letter counts from scratch by scanning the
    /// port store, in dense layout ([`TOMBSTONE`]d slots count nothing).
    /// Used by property tests to validate the incremental maintenance;
    /// executors never call this.
    pub fn recount(&self, graph: &Graph) -> Vec<u32> {
        let n = graph.node_count();
        let mut counts = vec![0u32; n * self.sigma];
        for v in 0..n {
            let base = graph.csr_offset(v as NodeId);
            for k in 0..graph.degree(v as NodeId) {
                let l = self.letters[base + k];
                if l != TOMBSTONE {
                    counts[v * self.sigma + l.index()] += 1;
                }
            }
        }
        counts
    }

    /// The incremental counts materialized densely (`[v * sigma +
    /// letter]`) whatever the layout — for comparison against
    /// [`FlatPorts::recount`] and the sparse ≡ dense property tests.
    pub fn dense_counts(&self, graph: &Graph) -> Vec<u32> {
        match &self.counts {
            Counts::Dense(counts) => counts.clone(),
            Counts::Sparse(maps) => {
                let n = graph.node_count();
                let mut counts = vec![0u32; n * self.sigma];
                for (v, m) in maps.iter().enumerate() {
                    for &(letter, count) in m {
                        counts[v * self.sigma + letter as usize] = count;
                    }
                }
                counts
            }
        }
    }

    /// Splits the store into disjoint mutable shard views along the given
    /// contiguous node partition (`node_bounds[0] = 0`, ascending, last
    /// entry `= |V|`; shard `s` owns receivers `node_bounds[s] ..
    /// node_bounds[s + 1]`). Because the store is CSR laid out, each
    /// shard's letter slots and count rows are contiguous ranges, so the
    /// views are plain `split_at_mut` slices — workers on different
    /// shards can deliver concurrently without locks or unsafe code.
    ///
    /// See the module docs; [`crate::parbuf`] builds its deterministic
    /// parallel phase-2 merge on these views.
    pub fn shards_mut<'a>(
        &'a mut self,
        graph: &Graph,
        node_bounds: &[usize],
    ) -> Vec<PortShard<'a>> {
        let n = graph.node_count();
        assert!(
            node_bounds.len() >= 2 && node_bounds[0] == 0 && *node_bounds.last().unwrap() == n,
            "node bounds must start at 0 and end at the node count"
        );
        let sigma = self.sigma;
        enum Rest<'a> {
            Dense(&'a mut [u32]),
            Sparse(&'a mut [Vec<(u16, u32)>]),
        }
        let mut letters_rest = &mut self.letters[..];
        let mut counts_rest = match &mut self.counts {
            Counts::Dense(c) => Rest::Dense(&mut c[..]),
            Counts::Sparse(m) => Rest::Sparse(&mut m[..]),
        };
        let mut shards = Vec::with_capacity(node_bounds.len() - 1);
        let mut slot_base = 0usize;
        let mut node_base = 0usize;
        for w in node_bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(lo == node_base && hi >= lo, "node bounds must be ascending");
            let slot_hi = graph.csr_offset(hi as NodeId);
            let (letters, tail) = letters_rest.split_at_mut(slot_hi - slot_base);
            letters_rest = tail;
            let counts = match counts_rest {
                Rest::Dense(c) => {
                    let (head, tail) = c.split_at_mut((hi - node_base) * sigma);
                    counts_rest = Rest::Dense(tail);
                    ShardCounts::Dense(head)
                }
                Rest::Sparse(m) => {
                    let (head, tail) = m.split_at_mut(hi - node_base);
                    counts_rest = Rest::Sparse(tail);
                    ShardCounts::Sparse(head)
                }
            };
            shards.push(PortShard {
                sigma,
                node_base,
                slot_base,
                letters,
                counts,
            });
            node_base = hi;
            slot_base = slot_hi;
        }
        shards
    }
}

/// Applies one `old → new` letter swap to a sparse per-node count map.
#[inline]
fn sparse_swap(m: &mut Vec<(u16, u32)>, old: Letter, new: Letter) {
    let i = m
        .binary_search_by_key(&old.0, |e| e.0)
        .expect("sparse counts track every stored letter");
    m[i].1 -= 1;
    if m[i].1 == 0 {
        m.remove(i);
    }
    match m.binary_search_by_key(&new.0, |e| e.0) {
        Ok(i) => m[i].1 += 1,
        Err(i) => m.insert(i, (new.0, 1)),
    }
}

/// Applies a net per-letter count delta to a sparse map, keeping it
/// canonical (sorted, non-zero counts only).
#[inline]
fn sparse_apply_delta(m: &mut Vec<(u16, u32)>, letter: u16, delta: i64) {
    match m.binary_search_by_key(&letter, |e| e.0) {
        Ok(i) => {
            let next = m[i].1 as i64 + delta;
            debug_assert!(next >= 0, "sparse count would go negative");
            if next == 0 {
                m.remove(i);
            } else {
                m[i].1 = next as u32;
            }
        }
        Err(i) => {
            debug_assert!(delta > 0, "delta for an absent letter must be positive");
            m.insert(i, (letter, delta as u32));
        }
    }
}

/// Which count representation a [`PortShard`] borrows.
enum ShardCounts<'a> {
    Dense(&'a mut [u32]),
    Sparse(&'a mut [Vec<(u16, u32)>]),
}

/// A disjoint mutable view over one contiguous receiver range of a
/// [`FlatPorts`], produced by [`FlatPorts::shards_mut`]. Accepts the same
/// absolute `(node, slot)` addressing as [`FlatPorts::deliver`] but only
/// for receivers inside the shard (out-of-range writes panic on the slice
/// bounds — a misrouted delivery can never silently corrupt a neighbor
/// shard).
pub struct PortShard<'a> {
    sigma: usize,
    node_base: usize,
    slot_base: usize,
    letters: &'a mut [Letter],
    counts: ShardCounts<'a>,
}

impl PortShard<'_> {
    /// The first receiver node this shard owns.
    pub fn node_base(&self) -> usize {
        self.node_base
    }

    /// Overwrites the port at absolute flat `slot` (belonging to `node`,
    /// which must fall in this shard's receiver range), maintaining the
    /// incremental counts — the shard-local twin of
    /// [`FlatPorts::deliver`].
    #[inline]
    pub fn deliver(&mut self, node: usize, slot: usize, letter: Letter) {
        if self.letters[slot - self.slot_base] == TOMBSTONE {
            return;
        }
        let old = std::mem::replace(&mut self.letters[slot - self.slot_base], letter);
        if old == letter {
            return;
        }
        match &mut self.counts {
            ShardCounts::Dense(counts) => {
                let base = (node - self.node_base) * self.sigma;
                counts[base + old.index()] -= 1;
                counts[base + letter.index()] += 1;
            }
            ShardCounts::Sparse(maps) => sparse_swap(&mut maps[node - self.node_base], old, letter),
        }
    }

    /// The exact count of `letter` over `v`'s ports — the shard-local
    /// twin of [`FlatPorts::count`]. `v` must fall in this shard's node
    /// range.
    #[inline]
    pub fn count(&self, v: usize, letter: Letter) -> u32 {
        let local = v - self.node_base;
        match &self.counts {
            ShardCounts::Dense(counts) => counts[local * self.sigma + letter.index()],
            ShardCounts::Sparse(maps) => maps[local]
                .binary_search_by_key(&letter.0, |e| e.0)
                .map(|i| maps[local][i].1)
                .unwrap_or(0),
        }
    }

    /// Refills `obs` with `f_b` of node `v`'s exact per-letter counts —
    /// the shard-local twin of [`FlatPorts::refill_obs`].
    #[inline]
    pub fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8) {
        let local = v - self.node_base;
        match &self.counts {
            ShardCounts::Dense(counts) => {
                obs.refill_from_counts(&counts[local * self.sigma..(local + 1) * self.sigma], b)
            }
            ShardCounts::Sparse(maps) => obs.refill_from_sparse(self.sigma, &maps[local], b),
        }
    }

    /// Node `v`'s ports as a slice — the shard-local twin of
    /// [`FlatPorts::ports_of`]. `v` must fall in this shard's node range.
    #[inline]
    pub fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        let base = graph.csr_offset(v) - self.slot_base;
        &self.letters[base..base + graph.degree(v)]
    }
}

/// The epoch-split (double-buffered) face of the port store: one backing
/// [`FlatPorts`] multiplexed into a frozen *read plane* and a *write
/// plane* per round. See the module docs for why a single backing array
/// suffices (per-round slot uniqueness + commutative counts make the
/// plane swap a pure epoch flip with an incremental count handoff — no
/// copy).
///
/// The round pipeline ([`crate::pipeline`]) is the intended driver:
/// serial rounds observe through [`PortPlanes::read`] and commit their
/// buffered writes with [`PortPlanes::land_serial`]; the fused parallel
/// schedule takes per-worker [`PlaneShard`] views via
/// [`PortPlanes::epoch_shards`]. Either way, [`PortPlanes::advance`]
/// flips the epoch at the round boundary.
#[derive(Clone, Debug)]
pub struct PortPlanes {
    ports: FlatPorts,
    epoch: u64,
}

impl PortPlanes {
    /// A fresh store at epoch 0, all ports holding `σ₀` — see
    /// [`FlatPorts::new`] for the count-layout gate.
    pub fn new(graph: &Graph, sigma: usize, sigma0: Letter) -> Self {
        PortPlanes {
            ports: FlatPorts::new(graph, sigma, sigma0),
            epoch: 0,
        }
    }

    /// Reassembles planes from a restored backing store and epoch — the
    /// restore half of the snapshot layer ([`PortPlanes::read`] and
    /// [`PortPlanes::epoch`] capture). Only meaningful at a round
    /// boundary, where all planes coincide in the single backing array.
    pub fn from_parts(ports: FlatPorts, epoch: u64) -> Self {
        PortPlanes { ports, epoch }
    }

    /// The alphabet size this store was built for.
    pub fn sigma(&self) -> usize {
        self.ports.sigma()
    }

    /// Rounds committed so far: the number of [`PortPlanes::advance`]
    /// calls (each phase-2 commit ends one epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen read plane of the current epoch — the port state at
    /// the end of the last committed round. Phase-1 observations and
    /// scoped target draws read here.
    #[inline]
    pub fn read(&self) -> &FlatPorts {
        &self.ports
    }

    /// The raw write plane of the current epoch, for merge strategies
    /// that need the whole store at once (the joined pipeline's
    /// [`crate::parbuf::merge`]). Callers must only land deliveries
    /// resolved against this epoch's read plane, then
    /// [`PortPlanes::advance`].
    #[inline]
    pub fn write(&mut self) -> &mut FlatPorts {
        &mut self.ports
    }

    /// Serial phase-2b: lands one round's buffered `(receiver, slot,
    /// letter)` writes on the write plane and flips it into the next
    /// epoch's read plane.
    pub fn land_serial(&mut self, writes: &[(u32, u32, Letter)]) {
        for &(node, slot, letter) in writes {
            self.ports.deliver(node as usize, slot as usize, letter);
        }
        self.advance();
    }

    /// Splits the write plane into one [`PlaneShard`] per entry of the
    /// contiguous node partition `node_bounds` (the fused pipeline hands
    /// one to each worker). Every shard starts in the write-plane state;
    /// the caller flips it to the read plane with [`PlaneShard::freeze`]
    /// once the previous round's deferred deliveries have landed.
    pub fn epoch_shards<'a>(
        &'a mut self,
        graph: &Graph,
        node_bounds: &[usize],
    ) -> Vec<PlaneShard<'a>> {
        self.ports
            .shards_mut(graph, node_bounds)
            .into_iter()
            .map(|shard| PlaneShard {
                shard,
                frozen: false,
            })
            .collect()
    }

    /// Ends the current epoch: the write plane (now holding this round's
    /// deliveries) becomes the next round's read plane. A pointer flip in
    /// spirit — nothing is copied, the incremental counts carry over
    /// as-is.
    #[inline]
    pub fn advance(&mut self) {
        self.epoch += 1;
    }

    /// Consumes the planes, returning the backing store (tests compare
    /// it against serially driven [`FlatPorts`]).
    pub fn into_ports(self) -> FlatPorts {
        self.ports
    }
}

/// One worker's view of both planes of its shard during one epoch of the
/// fused round pipeline: first the **write plane** (only
/// [`PlaneShard::land`] — the previous round's deferred deliveries merge
/// here), then, after [`PlaneShard::freeze`], the **read plane** (only
/// observations — a debug assertion rejects any later write). Produced
/// by [`PortPlanes::epoch_shards`].
pub struct PlaneShard<'a> {
    shard: PortShard<'a>,
    frozen: bool,
}

impl PlaneShard<'_> {
    /// Write-plane delivery: lands one deferred `(receiver, slot,
    /// letter)` write from the previous round on this shard.
    ///
    /// # Panics
    /// Debug-asserts the shard has not been frozen yet.
    #[inline]
    pub fn land(&mut self, node: usize, slot: usize, letter: Letter) {
        debug_assert!(
            !self.frozen,
            "cannot land deliveries on a frozen read plane"
        );
        self.shard.deliver(node, slot, letter);
    }

    /// Flips this shard from the write plane to the frozen read plane:
    /// all deferred deliveries have landed, observations may begin.
    #[inline]
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Read-plane observation: refills `obs` with `f_b` of node `v`'s
    /// exact per-letter counts.
    #[inline]
    pub fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8) {
        debug_assert!(self.frozen, "observations require the frozen read plane");
        self.shard.refill_obs(v, obs, b);
    }

    /// Read-plane count of `letter` over `v`'s ports.
    #[inline]
    pub fn count(&self, v: usize, letter: Letter) -> u32 {
        debug_assert!(self.frozen, "observations require the frozen read plane");
        self.shard.count(v, letter)
    }

    /// Read-plane view of node `v`'s ports.
    #[inline]
    pub fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        debug_assert!(self.frozen, "observations require the frozen read plane");
        self.shard.ports_of(graph, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stoneage_graph::generators;

    #[test]
    fn initial_counts_are_degrees_on_sigma0() {
        let g = generators::star(5);
        let ports = FlatPorts::new(&g, 3, Letter(1));
        assert_eq!(ports.layout(), CountLayout::Dense);
        assert_eq!(ports.counts_of(0), &[0, 4, 0]);
        for v in 1..5 {
            assert_eq!(ports.counts_of(v), &[0, 1, 0]);
            assert_eq!(ports.count(v, Letter(1)), 1);
        }
        assert_eq!(ports.dense_counts(&g), ports.recount(&g));
    }

    #[test]
    fn broadcast_lands_on_reverse_ports() {
        let g = generators::cycle(4);
        let mut ports = FlatPorts::new(&g, 2, Letter(0));
        ports.broadcast(&g, 1, Letter(1));
        // Exactly 0's and 2's ports toward node 1 hold the new letter.
        for v in g.nodes() {
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let expected = if u == 1 { Letter(1) } else { Letter(0) };
                assert_eq!(ports.letter_at(g.csr_offset(v) + k), expected);
            }
        }
        assert_eq!(ports.dense_counts(&g), ports.recount(&g));
    }

    #[test]
    fn redundant_overwrite_keeps_counts_consistent() {
        let g = generators::path(3);
        for layout in [CountLayout::Dense, CountLayout::Sparse] {
            let mut ports = FlatPorts::with_layout(&g, 2, Letter(0), layout);
            let slot = g.csr_offset(1); // node 1's port toward node 0
            ports.deliver(1, slot, Letter(1));
            ports.deliver(1, slot, Letter(1)); // same letter again
            ports.deliver(1, slot, Letter(0)); // back to σ₀
            assert_eq!(ports.dense_counts(&g), ports.recount(&g), "{layout:?}");
            assert_eq!(ports.count(1, Letter(0)), 2);
            assert_eq!(ports.count(1, Letter(1)), 0);
        }
    }

    #[test]
    fn large_alphabets_gate_into_the_sparse_layout() {
        let g = generators::star(4);
        assert_eq!(
            FlatPorts::new(&g, SPARSE_SIGMA_THRESHOLD, Letter(0)).layout(),
            CountLayout::Dense
        );
        // 3(σ+1)² for σ = 4 — a synthesized synchronized alphabet.
        let ports = FlatPorts::new(&g, 75, Letter(7));
        assert_eq!(ports.layout(), CountLayout::Sparse);
        assert_eq!(ports.count(0, Letter(7)), 3);
        assert_eq!(ports.count(0, Letter(8)), 0);
        assert_eq!(ports.dense_counts(&g), ports.recount(&g));
    }

    #[test]
    fn sparse_observation_matches_dense_observation() {
        use stoneage_core::ObsVec;
        let g = generators::cycle(5);
        let sigma = 60;
        let mut dense = FlatPorts::with_layout(&g, sigma, Letter(0), CountLayout::Dense);
        let mut sparse = FlatPorts::with_layout(&g, sigma, Letter(0), CountLayout::Sparse);
        for (i, slot) in [(0usize, 0usize), (1, 2), (2, 4), (2, 5)]
            .into_iter()
            .enumerate()
        {
            dense.deliver(
                slot.0,
                g.csr_offset(slot.0 as u32) + slot.1 % 2,
                Letter(i as u16 + 9),
            );
            sparse.deliver(
                slot.0,
                g.csr_offset(slot.0 as u32) + slot.1 % 2,
                Letter(i as u16 + 9),
            );
        }
        let mut od = ObsVec::zeroed(sigma);
        let mut os = ObsVec::zeroed(sigma);
        for v in 0..5 {
            dense.refill_obs(v, &mut od, 2);
            sparse.refill_obs(v, &mut os, 2);
            assert_eq!(od, os, "node {v}");
        }
    }

    #[test]
    fn deliver_run_matches_sequential_delivers() {
        let g = generators::star(5);
        for layout in [CountLayout::Dense, CountLayout::Sparse] {
            let mut one = FlatPorts::with_layout(&g, 4, Letter(0), layout);
            let mut run = one.clone();
            // Center node 0 has 4 ports; include a redundant overwrite and
            // a repeated letter so the delta accumulation is exercised.
            let base = g.csr_offset(0) as u32;
            let writes = [
                (base, Letter(2)),
                (base + 1, Letter(2)),
                (base + 2, Letter(0)),
                (base + 3, Letter(3)),
            ];
            for &(slot, letter) in &writes {
                one.deliver(0, slot as usize, letter);
            }
            let mut scratch = Vec::new();
            run.deliver_run(0, &writes, &mut scratch);
            assert_eq!(one.dense_counts(&g), run.dense_counts(&g), "{layout:?}");
            for slot in 0..g.port_slot_count() {
                assert_eq!(one.letter_at(slot), run.letter_at(slot), "{layout:?}");
            }
            assert_eq!(run.dense_counts(&g), run.recount(&g), "{layout:?}");
        }
    }

    #[test]
    fn shard_views_deliver_like_the_whole_store() {
        let g = generators::cycle(7);
        for layout in [CountLayout::Dense, CountLayout::Sparse] {
            let mut whole = FlatPorts::with_layout(&g, 3, Letter(0), layout);
            let mut sharded = whole.clone();
            // (receiver, port k, letter) spread across all three shards.
            let writes = [
                (0usize, 0usize, Letter(1)),
                (1, 1, Letter(2)),
                (3, 0, Letter(1)),
                (4, 1, Letter(2)),
                (6, 0, Letter(1)),
                (6, 1, Letter(2)),
            ];
            for &(v, k, letter) in &writes {
                whole.deliver(v, g.csr_offset(v as u32) + k, letter);
            }
            let bounds = [0usize, 2, 5, 7];
            let mut shards = sharded.shards_mut(&g, &bounds);
            for &(v, k, letter) in &writes {
                let s = bounds[1..].partition_point(|&b| b <= v);
                shards[s].deliver(v, g.csr_offset(v as u32) + k, letter);
            }
            drop(shards);
            assert_eq!(
                whole.dense_counts(&g),
                sharded.dense_counts(&g),
                "{layout:?}"
            );
            for slot in 0..g.port_slot_count() {
                assert_eq!(whole.letter_at(slot), sharded.letter_at(slot), "{layout:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "node bounds")]
    fn shard_bounds_must_cover_the_node_range() {
        let g = generators::path(4);
        let mut ports = FlatPorts::new(&g, 2, Letter(0));
        let _ = ports.shards_mut(&g, &[0, 2]);
    }

    #[test]
    fn shard_reads_match_whole_store_reads() {
        use stoneage_core::ObsVec;
        let g = generators::gnp(40, 0.2, 11);
        for layout in [CountLayout::Dense, CountLayout::Sparse] {
            let mut ports = FlatPorts::with_layout(&g, 5, Letter(0), layout);
            for v in (0..40u32).step_by(3) {
                ports.broadcast(&g, v, Letter(1 + (v % 4) as u16));
            }
            let frozen = ports.clone();
            let bounds = [0usize, 13, 27, 40];
            let shards = ports.shards_mut(&g, &bounds);
            let mut a = ObsVec::zeroed(5);
            let mut b = ObsVec::zeroed(5);
            for (s, shard) in shards.iter().enumerate() {
                for v in bounds[s]..bounds[s + 1] {
                    frozen.refill_obs(v, &mut a, 3);
                    shard.refill_obs(v, &mut b, 3);
                    assert_eq!(a, b, "{layout:?}/node {v}");
                    for l in 0..5u16 {
                        assert_eq!(
                            frozen.count(v, Letter(l)),
                            shard.count(v, Letter(l)),
                            "{layout:?}/node {v}/letter {l}"
                        );
                    }
                    assert_eq!(
                        frozen.ports_of(&g, v as NodeId),
                        shard.ports_of(&g, v as NodeId),
                        "{layout:?}/node {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn plane_shards_land_then_read_like_the_serial_round() {
        // One simulated fused epoch: deferred deliveries land on each
        // worker's plane shard, the shards freeze, and every read must
        // match a serially driven store after the same writes.
        let g = generators::cycle(9);
        let mut serial = FlatPorts::new(&g, 3, Letter(0));
        let mut planes = PortPlanes::new(&g, 3, Letter(0));
        assert_eq!(planes.epoch(), 0);
        let writes: Vec<(usize, usize, Letter)> = (0..9usize)
            .map(|v| {
                (
                    v,
                    g.csr_offset(v as NodeId) + v % 2,
                    Letter(1 + (v % 2) as u16),
                )
            })
            .collect();
        for &(v, slot, letter) in &writes {
            serial.deliver(v, slot, letter);
        }
        let bounds = [0usize, 4, 9];
        {
            let mut shards = planes.epoch_shards(&g, &bounds);
            for &(v, slot, letter) in &writes {
                let s = bounds[1..].partition_point(|&b| b <= v);
                shards[s].land(v, slot, letter);
            }
            let mut a = stoneage_core::ObsVec::zeroed(3);
            let mut b = stoneage_core::ObsVec::zeroed(3);
            for (s, shard) in shards.iter_mut().enumerate() {
                shard.freeze();
                for v in bounds[s]..bounds[s + 1] {
                    serial.refill_obs(v, &mut a, 2);
                    shard.refill_obs(v, &mut b, 2);
                    assert_eq!(a, b, "node {v}");
                    assert_eq!(
                        serial.ports_of(&g, v as NodeId),
                        shard.ports_of(&g, v as NodeId)
                    );
                }
            }
        }
        planes.advance();
        assert_eq!(planes.epoch(), 1);
        assert_eq!(
            planes.into_ports().dense_counts(&g),
            serial.dense_counts(&g)
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "frozen read plane")]
    fn landing_on_a_frozen_plane_shard_panics() {
        let g = generators::path(3);
        let mut planes = PortPlanes::new(&g, 2, Letter(0));
        let mut shards = planes.epoch_shards(&g, &[0, 3]);
        shards[0].freeze();
        shards[0].land(1, g.csr_offset(1), Letter(1));
    }

    #[test]
    fn serial_landing_advances_the_epoch() {
        let g = generators::path(3);
        let mut planes = PortPlanes::new(&g, 2, Letter(0));
        planes.land_serial(&[(1u32, g.csr_offset(1) as u32, Letter(1))]);
        assert_eq!(planes.epoch(), 1);
        assert_eq!(planes.read().count(1, Letter(1)), 1);
        assert_eq!(planes.sigma(), 2);
    }

    proptest! {
        /// The tentpole invariant: after any sequence of random
        /// deliveries, the incrementally maintained counts equal a
        /// from-scratch recount of the port store.
        #[test]
        fn incremental_counts_match_recount(
            n in 2usize..40,
            p in 0.05f64..0.5,
            gseed in 0u64..500,
            sigma in 1usize..6,
            rounds in 1usize..60,
        ) {
            let g = generators::gnp(n, p, gseed);
            let mut ports = FlatPorts::new(&g, sigma, Letter(0));
            let mut state = gseed.wrapping_mul(0x9E3779B97F4A7C15) ^ rounds as u64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..rounds {
                let v = (next() % n as u64) as usize;
                let deg = g.degree(v as u32);
                if deg == 0 {
                    continue;
                }
                if next() % 3 == 0 {
                    // Whole-node broadcast through the reverse-port map.
                    let letter = Letter((next() % sigma as u64) as u16);
                    ports.broadcast(&g, v as u32, letter);
                } else {
                    // Single-port overwrite.
                    let k = (next() % deg as u64) as usize;
                    let letter = Letter((next() % sigma as u64) as u16);
                    ports.deliver(v, g.csr_offset(v as u32) + k, letter);
                }
            }
            prop_assert_eq!(ports.dense_counts(&g), ports.recount(&g));
        }

        /// The sparse gate invariant: both layouts, driven through the
        /// same delivery sequence, agree on every count, every
        /// observation, and the recount — sparse ≡ dense.
        #[test]
        fn sparse_layout_matches_dense_layout(
            n in 2usize..30,
            p in 0.05f64..0.5,
            gseed in 0u64..300,
            sigma in 50usize..90,
            rounds in 1usize..50,
        ) {
            use stoneage_core::ObsVec;
            let g = generators::gnp(n, p, gseed);
            let mut dense = FlatPorts::with_layout(&g, sigma, Letter(0), CountLayout::Dense);
            let mut sparse = FlatPorts::with_layout(&g, sigma, Letter(0), CountLayout::Sparse);
            let mut state = gseed.wrapping_mul(0x2545F4914F6CDD1D) ^ (rounds as u64) << 7;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..rounds {
                let v = (next() % n as u64) as usize;
                let deg = g.degree(v as u32);
                if deg == 0 {
                    continue;
                }
                let letter = Letter((next() % sigma as u64) as u16);
                if next() % 3 == 0 {
                    dense.broadcast(&g, v as u32, letter);
                    sparse.broadcast(&g, v as u32, letter);
                } else {
                    let slot = g.csr_offset(v as u32) + (next() % deg as u64) as usize;
                    dense.deliver(v, slot, letter);
                    sparse.deliver(v, slot, letter);
                }
            }
            prop_assert_eq!(dense.dense_counts(&g), sparse.dense_counts(&g));
            prop_assert_eq!(sparse.dense_counts(&g), sparse.recount(&g));
            let mut od = ObsVec::zeroed(sigma);
            let mut os = ObsVec::zeroed(sigma);
            for v in 0..n {
                dense.refill_obs(v, &mut od, 3);
                sparse.refill_obs(v, &mut os, 3);
                prop_assert_eq!(&od, &os);
                for l in 0..sigma as u16 {
                    prop_assert_eq!(dense.count(v, Letter(l)), sparse.count(v, Letter(l)));
                }
            }
        }
    }
}
