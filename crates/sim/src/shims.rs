//! Deprecated thin shims: the legacy `run_*` free functions, re-expressed
//! over the unified [`Simulation`] builder.
//!
//! Three PRs of engine growth had multiplied these to a dozen entry
//! points (backend × inputs × observer × parallelism). They survive here
//! so downstream code keeps compiling, but each one is a one-line
//! delegation to the builder and carries a deprecation notice steering
//! callers to it. No in-repo code outside this module (and the
//! builder-parity test suite, whose whole job is comparing the two)
//! calls them.
//!
//! Outcomes are bit-identical per seed to the pre-builder functions: the
//! builder dispatches to the exact same engines, pinned by
//! `tests/builder_parity.rs` and the unchanged fingerprint constants.
//! Two deliberate edges of the builder carry over to the shims:
//!
//! * the sync/scoped shims inherit the builder's thread-shareable
//!   bounds (`P: Sync`, `P::State: Send + Sync` — one construction
//!   serves the serial and `parallel`-feature schedules); every
//!   in-tree protocol qualifies, a protocol with non-`Sync` state
//!   no longer does;
//! * a **zero** budget (`max_rounds`/`max_events` of 0) is now
//!   rejected up front as [`ExecError::Config`] instead of running the
//!   engine into an immediate `RoundLimit`/`EventLimit` — a zero
//!   budget can never reach an output configuration, so the legacy
//!   behavior was a degenerate error spelling, not a capability.

#![allow(deprecated)]

use stoneage_core::{Fsm, MultiFsm};
use stoneage_graph::Graph;

#[cfg(feature = "parallel")]
use crate::parbuf::ParallelPolicy;
use crate::scoped::{ScopedMultiFsm, ScopedOutcome};
use crate::sim::{AdaptAsync, AdaptSync, Simulation};
use crate::sync_exec::{SyncConfig, SyncObserver, SyncOutcome};
use crate::{Adversary, AsyncConfig, AsyncObserver, AsyncOutcome, ExecError};

/// Runs `protocol` on `graph` synchronously with all-zero inputs.
#[deprecated(note = "use stoneage_sim::Simulation")]
pub fn run_sync<P>(
    protocol: &P,
    graph: &Graph,
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::sync(protocol, graph)
        .seed(config.seed)
        .budget(config.max_rounds)
        .run()
        .map(|o| o.into_sync_outcome().expect("sync backend"))
}

/// Runs `protocol` on `graph` synchronously with the given per-node input
/// symbols.
#[deprecated(note = "use stoneage_sim::Simulation")]
pub fn run_sync_with_inputs<P>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::sync(protocol, graph)
        .seed(config.seed)
        .budget(config.max_rounds)
        .inputs(inputs)
        .run()
        .map(|o| o.into_sync_outcome().expect("sync backend"))
}

/// Runs `protocol` synchronously, invoking `observer` after every round.
#[deprecated(note = "use stoneage_sim::Simulation with .observe(...)")]
pub fn run_sync_observed<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    observer: &mut O,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
    O: SyncObserver<P::State>,
{
    let mut adapter = AdaptSync(observer);
    Simulation::sync(protocol, graph)
        .seed(config.seed)
        .budget(config.max_rounds)
        .inputs(inputs)
        .observe(&mut adapter)
        .run()
        .map(|o| o.into_sync_outcome().expect("sync backend"))
}

/// Runs `protocol` synchronously with all-zero inputs on the parallel
/// schedule under the default [`ParallelPolicy`].
#[cfg(feature = "parallel")]
#[deprecated(note = "use stoneage_sim::Simulation with .parallel(...)")]
pub fn run_sync_parallel<P>(
    protocol: &P,
    graph: &Graph,
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    let inputs = vec![0usize; graph.node_count()];
    run_sync_parallel_with_inputs(protocol, graph, &inputs, config)
}

/// The parallel twin of [`run_sync_with_inputs`] under the default
/// [`ParallelPolicy`].
#[cfg(feature = "parallel")]
#[deprecated(note = "use stoneage_sim::Simulation with .parallel(...)")]
pub fn run_sync_parallel_with_inputs<P>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    run_sync_parallel_with_policy(protocol, graph, inputs, config, &ParallelPolicy::default())
}

/// Runs `protocol` synchronously on the parallel schedule under `policy`.
#[cfg(feature = "parallel")]
#[deprecated(note = "use stoneage_sim::Simulation with .parallel(...)")]
pub fn run_sync_parallel_with_policy<P>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    policy: &ParallelPolicy,
) -> Result<SyncOutcome, ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::sync(protocol, graph)
        .seed(config.seed)
        .budget(config.max_rounds)
        .inputs(inputs)
        .parallel(*policy)
        .run()
        .map(|o| o.into_sync_outcome().expect("sync backend"))
}

/// Runs `protocol` on `graph` under `adversary` with all-zero inputs.
#[deprecated(note = "use stoneage_sim::Simulation")]
pub fn run_async<P: Fsm, A: Adversary + ?Sized>(
    protocol: &P,
    graph: &Graph,
    adversary: &A,
    config: &AsyncConfig,
) -> Result<AsyncOutcome, ExecError> {
    let mut options = crate::AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
    options.bucket_width = config.bucket_width;
    Simulation::asynchronous(protocol, graph, &adversary)
        .seed(config.seed)
        .budget(config.max_events)
        .backend(crate::Backend::Async(options))
        .run()
        .map(|o| o.into_async_outcome().expect("async backend"))
}

/// Runs `protocol` on `graph` under `adversary` with per-node inputs.
#[deprecated(note = "use stoneage_sim::Simulation")]
pub fn run_async_with_inputs<P: Fsm, A: Adversary + ?Sized>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
) -> Result<AsyncOutcome, ExecError> {
    let mut options = crate::AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
    options.bucket_width = config.bucket_width;
    Simulation::asynchronous(protocol, graph, &adversary)
        .seed(config.seed)
        .budget(config.max_events)
        .backend(crate::Backend::Async(options))
        .inputs(inputs)
        .run()
        .map(|o| o.into_async_outcome().expect("async backend"))
}

/// Runs `protocol` asynchronously, invoking `observer` after every node
/// step.
#[deprecated(note = "use stoneage_sim::Simulation with .observe(...)")]
pub fn run_async_observed<P, A, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &A,
    config: &AsyncConfig,
    observer: &mut O,
) -> Result<AsyncOutcome, ExecError>
where
    P: Fsm,
    A: Adversary + ?Sized,
    O: AsyncObserver<P::State>,
{
    let mut adapter = AdaptAsync(observer);
    let mut options = crate::AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
    options.bucket_width = config.bucket_width;
    Simulation::asynchronous(protocol, graph, &adversary)
        .seed(config.seed)
        .budget(config.max_events)
        .backend(crate::Backend::Async(options))
        .inputs(inputs)
        .observe(&mut adapter)
        .run()
        .map(|o| o.into_async_outcome().expect("async backend"))
}

/// Runs a scoped protocol on `graph` in lockstep synchronous rounds.
#[deprecated(note = "use stoneage_sim::Simulation")]
pub fn run_scoped<P>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
) -> Result<ScopedOutcome, ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::scoped(protocol, graph)
        .seed(seed)
        .budget(max_rounds)
        .run()
        .map(|o| o.into_scoped_outcome().expect("scoped backend"))
}

/// Runs a scoped protocol on the parallel schedule under the default
/// [`ParallelPolicy`].
#[cfg(feature = "parallel")]
#[deprecated(note = "use stoneage_sim::Simulation with .parallel(...)")]
pub fn run_scoped_parallel<P>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
) -> Result<ScopedOutcome, ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    run_scoped_parallel_with_policy(
        protocol,
        graph,
        seed,
        max_rounds,
        &ParallelPolicy::default(),
    )
}

/// Runs a scoped protocol on the parallel schedule under `policy`.
#[cfg(feature = "parallel")]
#[deprecated(note = "use stoneage_sim::Simulation with .parallel(...)")]
pub fn run_scoped_parallel_with_policy<P>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
    policy: &ParallelPolicy,
) -> Result<ScopedOutcome, ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    Simulation::scoped(protocol, graph)
        .seed(seed)
        .budget(max_rounds)
        .parallel(*policy)
        .run()
        .map(|o| o.into_scoped_outcome().expect("scoped backend"))
}
