#![allow(clippy::needless_range_loop)]

//! The lockstep synchronous round executor, on the flat delivery engine.
//!
//! Implements the *locally synchronous environment* of Section 3.1 in its
//! strongest (lockstep) form, which trivially satisfies the two
//! synchronization properties: (S1) all nodes are in the same round, and
//! (S2) at the end of round `t + 1`, the port `ψ_u(v)` stores the message
//! transmitted by `v` in round `t` (or the last message transmitted prior
//! to round `t` — `ε` emissions do not overwrite ports).
//!
//! The round loop is the shared [`crate::pipeline`] over the epoch-split
//! [`crate::engine::PortPlanes`] store and allocates nothing per round:
//! ports live in a flat CSR-indexed store with incremental per-letter
//! counts ([`crate::engine::FlatPorts`]), observations refill a scratch
//! [`ObsVec`], deliveries resolve through the graph's precomputed
//! reverse-port map into a reused write buffer, and termination is
//! detected by an undecided-node counter updated on state transitions.
//! Outputs are bit-identical per seed to the naive reference executor
//! ([`crate::reference::run_sync_reference`]), which is kept as a
//! differential-testing oracle.
//!
//! The executor runs [`MultiFsm`] protocols directly (multiple-letter
//! queries are free in a synchronous environment by Theorem 3.4); run
//! single-letter [`stoneage_core::Fsm`] protocols through
//! [`stoneage_core::AsMulti`].

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{Letter, MultiFsm, ObsVec};
use stoneage_graph::{Graph, NodeId};

use crate::engine::PortPlanes;
use crate::faults::{fault_config, FaultCtx, FaultLayer, FaultSummary, FaultsArg};
#[cfg(feature = "parallel")]
use crate::parbuf::{ParallelPolicy, StealStats};
use crate::pipeline::{self, DeliverySink, PortRead, RoundEnd, RoundStep};
use crate::snapshot::{self, SnapArgs, SnapPlumb, Snapshot, SnapshotError};
use crate::{splitmix64, ExecError};

/// Configuration of a synchronous execution.
#[derive(Clone, Copy, Debug)]
pub struct SyncConfig {
    /// Master seed for the per-node protocol RNGs.
    pub seed: u64,
    /// Round budget: exceeding it aborts with [`ExecError::RoundLimit`].
    pub max_rounds: u64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            seed: 0,
            max_rounds: 1_000_000,
        }
    }
}

impl SyncConfig {
    /// A config with the given seed and the default round budget.
    pub fn seeded(seed: u64) -> Self {
        SyncConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Result of a synchronous execution that reached an output configuration.
#[derive(Clone, Debug)]
pub struct SyncOutcome {
    /// Per-node outputs, decoded from the output states.
    pub outputs: Vec<u64>,
    /// Rounds until the first output configuration (the paper's run-time
    /// measure in the synchronous setting).
    pub rounds: u64,
    /// Total non-`ε` transmissions.
    pub messages_sent: u64,
}

/// Hook invoked by the synchronous executor at the end of every round,
/// with the full post-round state vector. Used by the analysis
/// experiments (tournament lengths, edge decay) to instrument protocols
/// from outside. Subsumed by the unified [`crate::sim::Observer`]; kept
/// so existing observers keep compiling (adapt them with
/// [`crate::sim::AdaptSync`]).
pub trait SyncObserver<S> {
    /// Called after round `round` (1-based) has been applied to all nodes.
    fn on_round_end(&mut self, round: u64, states: &[S]);

    /// Called with every boundary checkpoint the run takes (the
    /// [`crate::Simulation::checkpoint_every`] cadence). Default: ignore.
    fn on_checkpoint(&mut self, _snapshot: &Snapshot) {}
}

impl<S, O: SyncObserver<S> + ?Sized> SyncObserver<S> for &mut O {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        (**self).on_round_end(round, states);
    }
    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        (**self).on_checkpoint(snapshot);
    }
}

/// An observer that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl<S> SyncObserver<S> for NoopObserver {
    fn on_round_end(&mut self, _round: u64, _states: &[S]) {}
}

/// The per-node RNG streams: a pure function of `(seed, node id)`, shared
/// by the serial and parallel executors so their draws are identical.
pub(crate) fn seed_rngs(n: usize, seed: u64) -> Vec<SmallRng> {
    (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v))))
        .collect()
}

fn collect_outputs<P: MultiFsm>(protocol: &P, states: &[P::State]) -> Vec<u64> {
    states
        .iter()
        .map(|q| protocol.output(q).expect("output configuration"))
        .collect()
}

/// The [`RoundStep`] of plain `MultiFsm` protocols: sample δ, then
/// resolve any non-`ε` emission as a full broadcast (which consumes no
/// randomness and reads no ports — the simplest pipeline step).
pub(crate) struct SyncStep<'p, P>(pub(crate) &'p P);

impl<P: MultiFsm> RoundStep for SyncStep<'_, P> {
    type State = P::State;
    type Emission = Option<Letter>;
    type Witness = ();

    fn bound(&self) -> u8 {
        self.0.bound()
    }

    fn decided(&self, q: &P::State) -> bool {
        self.0.output(q).is_some()
    }

    fn restart_state(&self, input: usize) -> P::State {
        self.0.restart_state(input)
    }

    fn transition(
        &self,
        q: &P::State,
        obs: &ObsVec,
        rng: &mut SmallRng,
    ) -> (P::State, Option<Letter>) {
        let transitions = self.0.delta(q, obs);
        let (next, emission) = transitions.sample(rng);
        (next.clone(), *emission)
    }

    fn resolve<Pr: PortRead, Sk: DeliverySink>(
        &self,
        _round: u64,
        v: NodeId,
        emission: Option<Letter>,
        graph: &Graph,
        _ports: &Pr,
        _rng: &mut SmallRng,
        sink: &mut Sk,
        _witness: &mut (),
    ) {
        if let Some(letter) = emission {
            sink.broadcast(graph, v, letter);
        }
    }

    fn absorb(_into: &mut (), _from: &mut ()) {}

    fn witness_slice(_witness: &()) -> Option<&[crate::scoped::ScopedDelivery]> {
        None
    }
}

/// The engine state a plain-sync run starts from: fresh initial states,
/// planes, and RNG streams — or, when the snapshot args carry a resume
/// snapshot, the spliced mid-run state plus the loop's resume point. A
/// sync snapshot body must carry neither a witness transcript nor a
/// churn cursor, and must carry a fault tally exactly when the run wires
/// a fault plan; a mismatch means the snapshot belongs to another
/// backend or configuration.
type SyncStart<S> = (
    Vec<S>,
    PortPlanes,
    Vec<SmallRng>,
    SnapPlumb<S>,
    FaultSummary,
);

fn sync_start<P: MultiFsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    snap: &SnapArgs<'_, P::State>,
    faulted: bool,
) -> Result<SyncStart<P::State>, ExecError> {
    let sigma = protocol.alphabet().len();
    if let Some(s) = snap.resume {
        let splice = snapshot::resume_lockstep(s, &snap.codec(), graph, sigma)?;
        if splice.witness.is_some()
            || splice.churn_next.is_some()
            || splice.faults.is_some() != faulted
        {
            return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                field: "snapshot body kind",
            }));
        }
        let tally = splice.faults.unwrap_or_default();
        let plumb = SnapPlumb::from_args(snap, Some(splice.point));
        Ok((splice.states, splice.planes, splice.rngs, plumb, tally))
    } else {
        Ok((
            inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
            PortPlanes::new(graph, sigma, protocol.initial_letter()),
            seed_rngs(graph.node_count(), seed),
            SnapPlumb::from_args(snap, None),
            FaultSummary::default(),
        ))
    }
}

/// Compiles the optional fault wiring into `(ctx, out-slot)` — the shared
/// prologue of every executor entry point. Plan validation failures
/// surface as [`ExecError::Config`] before the run starts.
pub(crate) fn compile_faults<'a>(
    faults: FaultsArg<'a>,
    graph: &Graph,
    sigma: usize,
) -> Result<(Option<FaultCtx>, Option<&'a mut Option<FaultSummary>>), ExecError> {
    match faults {
        Some(w) => {
            let ctx = FaultCtx::new(w.plan, graph, sigma).map_err(fault_config)?;
            Ok((Some(ctx), Some(w.out)))
        }
        None => Ok((None, None)),
    }
}

fn sync_end<P: MultiFsm>(
    protocol: &P,
    states: Vec<P::State>,
    end: RoundEnd,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError> {
    match end {
        RoundEnd::Done { rounds, sent } => {
            let outputs = collect_outputs(protocol, &states);
            Ok((
                SyncOutcome {
                    outputs,
                    rounds,
                    messages_sent: sent,
                },
                states,
            ))
        }
        RoundEnd::Limit { limit, unfinished } => Err(ExecError::RoundLimit { limit, unfinished }),
    }
}

/// The serial synchronous engine: the shared [`crate::pipeline`] round
/// loop over an epoch-split [`PortPlanes`] store, invoking `observer`
/// after every round, returning the final per-node state vector next to
/// the legacy outcome. The [`crate::Simulation`] builder and (through
/// it) every legacy `run_sync*` shim land here.
///
/// Inputs are validated by the builder; this function assumes
/// `inputs.len() == graph.node_count()`.
pub(crate) fn exec_sync<P: MultiFsm, O: SyncObserver<P::State>>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError> {
    debug_assert_eq!(
        inputs.len(),
        graph.node_count(),
        "the builder validates input length"
    );
    let (fctx, fout) = compile_faults(faults, graph, protocol.alphabet().len())?;
    let (mut states, mut planes, mut rngs, plumb, tally) =
        sync_start(protocol, graph, inputs, config.seed, snap, fctx.is_some())?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = pipeline::run_serial(
        &SyncStep(protocol),
        graph,
        &mut planes,
        &mut states,
        &mut rngs,
        config.max_rounds,
        observer,
        &mut (),
        &plumb,
        &mut layer,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    sync_end(protocol, states, end)
}

/// The fully parallel synchronous executor: the shared
/// [`crate::pipeline`] parallel round loop, scheduled per the policy's
/// [`crate::parbuf::RoundMode`] — `Joined` (phase 1 + 2a scope, join,
/// phase-2b merge under the policy's
/// [`crate::parbuf::MergeStrategy`]) or `Fused` (the previous round's
/// phase 2b landed on per-worker [`crate::engine::PlaneShard`]s inside
/// the next round's scope; one join per round).
///
/// Because every node owns an independent seeded RNG, phase 1 reads only
/// the frozen read plane, and every flat slot is written at most once
/// per round (see the [`crate::parbuf`] and [`crate::pipeline`] module
/// docs for the full argument), outputs, rounds, and message counts are
/// **bit-identical** to [`exec_sync`] for every seed, policy, worker
/// count, merge strategy, and round mode. The [`crate::Simulation`]
/// builder delegates to the serial engine outright when
/// [`ParallelPolicy::use_serial`] says the instance is too small, so
/// this function always runs the chunked machinery.
///
/// `observer` fires after each round's states are complete — the same
/// post-round states the serial engine reports.
///
/// (The `rayon` crate is not vendored in this offline build; the `rayon`
/// cargo feature is an alias of `parallel` and selects this same
/// `std::thread`-based implementation.)
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_sync_parallel<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    policy: &ParallelPolicy,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
    O: SyncObserver<P::State>,
{
    debug_assert_eq!(
        inputs.len(),
        graph.node_count(),
        "the builder validates input length"
    );
    let (fctx, fout) = compile_faults(faults, graph, protocol.alphabet().len())?;
    let (mut states, mut planes, mut rngs, plumb, tally) =
        sync_start(protocol, graph, inputs, config.seed, snap, fctx.is_some())?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = pipeline::run_parallel(
        &SyncStep(protocol),
        graph,
        &mut planes,
        &mut states,
        &mut rngs,
        policy,
        config.max_rounds,
        observer,
        &mut (),
        &plumb,
        &mut layer,
        steals,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    sync_end(protocol, states, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AdaptSync, Simulation};
    use stoneage_core::{Alphabet, AsMulti, TableProtocol, TableProtocolBuilder, Transitions};
    use stoneage_graph::generators;

    // These in-crate unit tests cannot use `stoneage_testkit::harness`
    // (the dev-dependency cycle links testkit against the *other* build
    // of this crate, so its types don't unify with `crate::` under
    // cfg(test)) — so the builder-backed twins live here.

    /// Builder twin of the legacy `run_sync`.
    fn run_sync<P>(
        protocol: &P,
        graph: &Graph,
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_with_inputs`.
    fn run_sync_with_inputs<P>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_observed`.
    fn run_sync_observed<P, O>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
        observer: &mut O,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
        O: SyncObserver<P::State>,
    {
        let mut adapter = AdaptSync(observer);
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .observe(&mut adapter)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Single-letter protocol: round 1 every node beeps; from round 2 a
    /// node outputs 1 + f₂(#beeps heard).
    fn count_neighbors(b: u8) -> TableProtocol {
        let alphabet = Alphabet::new(["beep"]);
        let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(0));
        let start = builder.add_state("start", Letter(0));
        let listen = builder.add_state("listen", Letter(0));
        builder.add_input_state(start);
        builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
        for o in 0..=b {
            let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
            builder.set_transition(listen, o, Transitions::det(out, None));
            builder.set_transition_all(out, Transitions::det(out, None));
        }
        builder.build().unwrap()
    }

    #[test]
    fn counting_protocol_observes_degrees() {
        // On a star with b = 3: center sees ≥3 beeps, leaves see 1.
        let g = generators::star(6);
        let p = AsMulti(count_neighbors(3));
        let out = run_sync(&p, &g, &SyncConfig::seeded(1)).unwrap();
        assert_eq!(out.rounds, 2);
        assert_eq!(out.outputs[0], 1 + 3); // truncated: ≥3
        for v in 1..6 {
            assert_eq!(out.outputs[v], 1 + 1);
        }
        // Every node transmitted exactly once.
        assert_eq!(out.messages_sent, 6);
    }

    #[test]
    fn one_two_many_truncation_is_visible() {
        // With b = 1 (the beeping bound) the center of a star cannot
        // distinguish its high degree from 1.
        let g = generators::star(6);
        let p = AsMulti(count_neighbors(1));
        let out = run_sync(&p, &g, &SyncConfig::seeded(1)).unwrap();
        assert_eq!(out.outputs[0], 2);
        assert_eq!(out.outputs[1], 2);
    }

    #[test]
    fn isolated_nodes_observe_zero() {
        let g = stoneage_graph::Graph::empty(3);
        let p = AsMulti(count_neighbors(2));
        let out = run_sync(&p, &g, &SyncConfig::seeded(0)).unwrap();
        assert_eq!(out.outputs, vec![1, 1, 1]);
    }

    #[test]
    fn round_limit_is_reported() {
        // A protocol that never reaches an output state.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("spin", alphabet, 1, Letter(0));
        let s = b.add_state("s", Letter(0));
        b.add_input_state(s);
        b.set_transition_all(s, Transitions::det(s, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(3);
        let err = run_sync(
            &p,
            &g,
            &SyncConfig {
                seed: 0,
                max_rounds: 10,
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::RoundLimit {
                limit: 10,
                unfinished: 3
            }
        );
    }

    #[test]
    fn input_mismatch_is_reported() {
        let p = AsMulti(count_neighbors(1));
        let g = generators::path(3);
        let err = run_sync_with_inputs(&p, &g, &[0, 0], &SyncConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InputLengthMismatch { .. }));
    }

    #[test]
    fn per_node_inputs_select_initial_states() {
        // Two input states with different outputs reachable immediately.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("inputs", alphabet, 1, Letter(0));
        let a0 = b.add_state("a0", Letter(0));
        let a1 = b.add_state("a1", Letter(0));
        let o0 = b.add_output_state("o0", Letter(0), 100);
        let o1 = b.add_output_state("o1", Letter(0), 200);
        b.add_input_state(a0);
        b.add_input_state(a1);
        b.set_transition_all(a0, Transitions::det(o0, None));
        b.set_transition_all(a1, Transitions::det(o1, None));
        b.set_transition_all(o0, Transitions::det(o0, None));
        b.set_transition_all(o1, Transitions::det(o1, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(4);
        let out = run_sync_with_inputs(&p, &g, &[0, 1, 1, 0], &SyncConfig::default()).unwrap();
        assert_eq!(out.outputs, vec![100, 200, 200, 100]);
    }

    #[test]
    fn epsilon_emissions_do_not_overwrite_ports() {
        // Node observes `beep` in round 2 even though the beeper goes
        // silent afterwards: ports retain the last letter.
        let alphabet = Alphabet::new(["beep", "noop"]);
        let mut b = TableProtocolBuilder::new("retain", alphabet, 1, Letter(1));
        let start = b.add_state("start", Letter(0));
        let wait1 = b.add_state("wait1", Letter(0));
        let wait2 = b.add_state("wait2", Letter(0));
        let no = b.add_output_state("no", Letter(0), 0);
        let yes = b.add_output_state("yes", Letter(0), 1);
        b.add_input_state(start);
        // Beep once at round 1, then silence.
        b.set_transition_all(start, Transitions::det(wait1, Some(Letter(0))));
        b.set_transition_all(wait1, Transitions::det(wait2, None));
        // Round 3: check whether the old beep is still in the port.
        b.set_transition(wait2, 0, Transitions::det(no, None));
        b.set_transition(wait2, 1, Transitions::det(yes, None));
        b.set_transition_all(no, Transitions::det(no, None));
        b.set_transition_all(yes, Transitions::det(yes, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(2);
        let out = run_sync(&p, &g, &SyncConfig::seeded(3)).unwrap();
        assert_eq!(out.outputs, vec![1, 1]);
    }

    #[test]
    fn observer_sees_every_round() {
        struct Counter(u64);
        impl<S> SyncObserver<S> for Counter {
            fn on_round_end(&mut self, round: u64, _states: &[S]) {
                self.0 = round;
            }
        }
        let p = AsMulti(count_neighbors(1));
        let g = generators::cycle(5);
        let mut obs = Counter(0);
        let inputs = vec![0; 5];
        let out = run_sync_observed(&p, &g, &inputs, &SyncConfig::seeded(0), &mut obs).unwrap();
        assert_eq!(obs.0, out.rounds);
    }

    #[test]
    fn determinism_per_seed() {
        let g = generators::gnp(30, 0.2, 5);
        let p = AsMulti(count_neighbors(2));
        let a = run_sync(&p, &g, &SyncConfig::seeded(7)).unwrap();
        let b = run_sync(&p, &g, &SyncConfig::seeded(7)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn zero_round_outcome_for_instant_output() {
        // Protocol whose input state is already an output state.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("done", alphabet, 1, Letter(0));
        let d = b.add_output_state("d", Letter(0), 9);
        b.add_input_state(d);
        b.set_transition_all(d, Transitions::det(d, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(2);
        let out = run_sync(&p, &g, &SyncConfig::default()).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.outputs, vec![9, 9]);
    }
}
