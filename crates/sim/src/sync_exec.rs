#![allow(clippy::needless_range_loop)]

//! The lockstep synchronous round executor, on the flat delivery engine.
//!
//! Implements the *locally synchronous environment* of Section 3.1 in its
//! strongest (lockstep) form, which trivially satisfies the two
//! synchronization properties: (S1) all nodes are in the same round, and
//! (S2) at the end of round `t + 1`, the port `ψ_u(v)` stores the message
//! transmitted by `v` in round `t` (or the last message transmitted prior
//! to round `t` — `ε` emissions do not overwrite ports).
//!
//! The round loop allocates nothing: ports live in a flat CSR-indexed
//! store with incremental per-letter counts ([`crate::engine::FlatPorts`]),
//! observations refill a scratch [`ObsVec`], deliveries use the graph's
//! precomputed reverse-port map, and termination is detected by an
//! undecided-node counter updated on state transitions. Outputs are
//! bit-identical per seed to the naive reference executor
//! ([`crate::reference::run_sync_reference`]), which is kept as a
//! differential-testing oracle.
//!
//! The executor runs [`MultiFsm`] protocols directly (multiple-letter
//! queries are free in a synchronous environment by Theorem 3.4); run
//! single-letter [`stoneage_core::Fsm`] protocols through
//! [`stoneage_core::AsMulti`].

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{Letter, MultiFsm, ObsVec};
use stoneage_graph::Graph;

use crate::engine::FlatPorts;
#[cfg(feature = "parallel")]
use crate::parbuf::{self, DeliveryBuffer, ParallelPolicy, ShardPlan};
use crate::{splitmix64, ExecError};

/// Configuration of a synchronous execution.
#[derive(Clone, Copy, Debug)]
pub struct SyncConfig {
    /// Master seed for the per-node protocol RNGs.
    pub seed: u64,
    /// Round budget: exceeding it aborts with [`ExecError::RoundLimit`].
    pub max_rounds: u64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            seed: 0,
            max_rounds: 1_000_000,
        }
    }
}

impl SyncConfig {
    /// A config with the given seed and the default round budget.
    pub fn seeded(seed: u64) -> Self {
        SyncConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Result of a synchronous execution that reached an output configuration.
#[derive(Clone, Debug)]
pub struct SyncOutcome {
    /// Per-node outputs, decoded from the output states.
    pub outputs: Vec<u64>,
    /// Rounds until the first output configuration (the paper's run-time
    /// measure in the synchronous setting).
    pub rounds: u64,
    /// Total non-`ε` transmissions.
    pub messages_sent: u64,
}

/// Hook invoked by the synchronous executor at the end of every round,
/// with the full post-round state vector. Used by the analysis
/// experiments (tournament lengths, edge decay) to instrument protocols
/// from outside. Subsumed by the unified [`crate::sim::Observer`]; kept
/// so existing observers keep compiling (adapt them with
/// [`crate::sim::AdaptSync`]).
pub trait SyncObserver<S> {
    /// Called after round `round` (1-based) has been applied to all nodes.
    fn on_round_end(&mut self, round: u64, states: &[S]);
}

impl<S, O: SyncObserver<S> + ?Sized> SyncObserver<S> for &mut O {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        (**self).on_round_end(round, states);
    }
}

/// An observer that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl<S> SyncObserver<S> for NoopObserver {
    fn on_round_end(&mut self, _round: u64, _states: &[S]) {}
}

/// The per-node RNG streams: a pure function of `(seed, node id)`, shared
/// by the serial and parallel executors so their draws are identical.
fn seed_rngs(n: usize, seed: u64) -> Vec<SmallRng> {
    (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v))))
        .collect()
}

fn collect_outputs<P: MultiFsm>(protocol: &P, states: &[P::State]) -> Vec<u64> {
    states
        .iter()
        .map(|q| protocol.output(q).expect("output configuration"))
        .collect()
}

/// Phase 1 over the node window `base..base + states.len()`: observe the
/// frozen ports through the incremental counts and apply δ. Returns the
/// change to the undecided-node counter. This is the single transcription
/// of the phase-1 semantics — the serial executor runs it over the whole
/// node range, the parallel executor over disjoint chunks.
fn phase1<P: MultiFsm>(
    protocol: &P,
    ports: &FlatPorts,
    base: usize,
    states: &mut [P::State],
    emissions: &mut [Option<Letter>],
    rngs: &mut [SmallRng],
    obs: &mut ObsVec,
) -> isize {
    let b = protocol.bound();
    let mut undecided_delta = 0isize;
    for i in 0..states.len() {
        ports.refill_obs(base + i, obs, b);
        let transitions = protocol.delta(&states[i], obs);
        let (next, emission) = transitions.sample(&mut rngs[i]);
        let was_output = protocol.output(&states[i]).is_some();
        let is_output = protocol.output(next).is_some();
        match (was_output, is_output) {
            (false, true) => undecided_delta -= 1,
            (true, false) => undecided_delta += 1,
            _ => {}
        }
        states[i] = next.clone();
        emissions[i] = *emission;
    }
    undecided_delta
}

/// Phase 2: deliver all emissions through the reverse-port map (`ε`
/// leaves ports untouched). Returns the number of non-`ε` transmissions.
fn phase2(graph: &Graph, ports: &mut FlatPorts, emissions: &[Option<Letter>]) -> u64 {
    let mut sent = 0u64;
    for (v, emission) in emissions.iter().enumerate() {
        if let Some(letter) = emission {
            sent += 1;
            ports.broadcast(graph, v as u32, *letter);
        }
    }
    sent
}

/// The serial synchronous engine: runs `protocol` in lockstep rounds,
/// invoking `observer` after every round, and returns the final per-node
/// state vector next to the legacy outcome. The single transcription of
/// the round loop — the [`crate::Simulation`] builder and (through it)
/// every legacy `run_sync*` shim land here.
///
/// Inputs are validated by the builder; this function assumes
/// `inputs.len() == graph.node_count()`.
pub(crate) fn exec_sync<P: MultiFsm, O: SyncObserver<P::State>>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    observer: &mut O,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError> {
    let n = graph.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let sigma = protocol.alphabet().len();
    let sigma0 = protocol.initial_letter();

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    let mut ports = FlatPorts::new(graph, sigma, sigma0);
    let mut rngs = seed_rngs(n, config.seed);

    let mut messages_sent = 0u64;
    let mut obs = ObsVec::zeroed(sigma);
    let mut emissions: Vec<Option<Letter>> = vec![None; n];

    // Termination detection: count of nodes not yet in an output state,
    // maintained on every state transition instead of scanned per round.
    let mut undecided = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count() as isize;

    if undecided == 0 {
        let outputs = collect_outputs(protocol, &states);
        return Ok((
            SyncOutcome {
                outputs,
                rounds: 0,
                messages_sent,
            },
            states,
        ));
    }

    for round in 1..=config.max_rounds {
        undecided += phase1(
            protocol,
            &ports,
            0,
            &mut states,
            &mut emissions,
            &mut rngs,
            &mut obs,
        );
        messages_sent += phase2(graph, &mut ports, &emissions);
        observer.on_round_end(round, &states);
        if undecided == 0 {
            let outputs = collect_outputs(protocol, &states);
            return Ok((
                SyncOutcome {
                    outputs,
                    rounds: round,
                    messages_sent,
                },
                states,
            ));
        }
    }
    Err(ExecError::RoundLimit {
        limit: config.max_rounds,
        unfinished: undecided as usize,
    })
}

/// The fully parallel synchronous executor: **both** round phases are
/// data-parallel over `std::thread::scope` workers on the shared
/// [`ShardPlan`] node partition.
///
/// * **Phase 1 + 2a (one scope):** worker `i` runs the same [`phase1`]
///   the serial engine runs over its node chunk, then immediately
///   resolves its own chunk's emissions into a private
///   [`DeliveryBuffer`] — reading only the frozen previous-round ports,
///   writing only worker-private state.
/// * **Phase 2b (second scope):** the buffers merge into [`FlatPorts`]
///   under the policy's [`crate::parbuf::MergeStrategy`] —
///   destination-sharded by default (disjoint
///   [`crate::engine::PortShard`] views, no contention), or the serial
///   buffer-replay oracle.
///
/// Because every node owns an independent seeded RNG, phase 1 reads only
/// frozen ports, and every flat slot is written at most once per round
/// (see the [`crate::parbuf`] module docs for the full argument),
/// outputs, rounds, and message counts are **bit-identical** to
/// [`exec_sync`] for every seed, policy, worker count, and merge
/// strategy. The [`crate::Simulation`] builder delegates to the serial
/// engine outright when [`ParallelPolicy::use_serial`] says the instance
/// is too small, so this function always runs the chunked machinery.
///
/// `observer` fires after each round's merge — the same post-round
/// states the serial engine reports.
///
/// (The `rayon` crate is not vendored in this offline build; the `rayon`
/// cargo feature is an alias of `parallel` and selects this same
/// `std::thread`-based implementation.)
#[cfg(feature = "parallel")]
pub(crate) fn exec_sync_parallel<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    policy: &ParallelPolicy,
    observer: &mut O,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
    O: SyncObserver<P::State>,
{
    let n = graph.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let sigma = protocol.alphabet().len();
    let sigma0 = protocol.initial_letter();

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    let mut ports = FlatPorts::new(graph, sigma, sigma0);
    let mut rngs = seed_rngs(n, config.seed);

    let mut messages_sent = 0u64;
    let mut emissions: Vec<Option<Letter>> = vec![None; n];
    let mut undecided = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count() as isize;

    if undecided == 0 {
        let outputs = collect_outputs(protocol, &states);
        return Ok((
            SyncOutcome {
                outputs,
                rounds: 0,
                messages_sent,
            },
            states,
        ));
    }

    let plan = ShardPlan::new(graph, policy.resolve_workers());
    let mut buffers: Vec<DeliveryBuffer> = (0..plan.workers())
        .map(|_| DeliveryBuffer::new(plan.workers()))
        .collect();

    for round in 1..=config.max_rounds {
        // Phase 1 + 2a, one scope: disjoint &mut chunks over states,
        // emissions, RNGs, and buffers; shared reads of the frozen ports
        // and the graph. Each chunk runs the same `phase1` the serial
        // engine uses, then buffers its own emissions.
        let ports_ref = &ports;
        let chunk_deltas: Vec<isize> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .chunks_mut(&mut states)
                .into_iter()
                .zip(plan.chunks_mut(&mut emissions))
                .zip(plan.chunks_mut(&mut rngs))
                .zip(buffers.iter_mut())
                .enumerate()
                .map(|(ci, (((state_c, emit_c), rng_c), buffer))| {
                    let base = plan.bounds()[ci];
                    let plan = &plan;
                    scope.spawn(move || {
                        let mut obs = ObsVec::zeroed(sigma);
                        let delta =
                            phase1(protocol, ports_ref, base, state_c, emit_c, rng_c, &mut obs);
                        buffer.clear();
                        for (i, emission) in emit_c.iter().enumerate() {
                            if let Some(letter) = emission {
                                buffer.broadcast(graph, plan, (base + i) as u32, *letter);
                            }
                        }
                        delta
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        undecided += chunk_deltas.iter().sum::<isize>();
        messages_sent += buffers.iter().map(|b| b.sent).sum::<u64>();

        // Phase 2b: merge the buffers into the port store.
        parbuf::merge(policy.merge, &mut ports, graph, &plan, &buffers);
        observer.on_round_end(round, &states);

        if undecided == 0 {
            let outputs = collect_outputs(protocol, &states);
            return Ok((
                SyncOutcome {
                    outputs,
                    rounds: round,
                    messages_sent,
                },
                states,
            ));
        }
    }
    Err(ExecError::RoundLimit {
        limit: config.max_rounds,
        unfinished: undecided as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AdaptSync, Simulation};
    use stoneage_core::{Alphabet, AsMulti, TableProtocol, TableProtocolBuilder, Transitions};
    use stoneage_graph::generators;

    // These in-crate unit tests cannot use `stoneage_testkit::harness`
    // (the dev-dependency cycle links testkit against the *other* build
    // of this crate, so its types don't unify with `crate::` under
    // cfg(test)) — so the builder-backed twins live here.

    /// Builder twin of the legacy `run_sync`.
    fn run_sync<P>(
        protocol: &P,
        graph: &Graph,
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_with_inputs`.
    fn run_sync_with_inputs<P>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_observed`.
    fn run_sync_observed<P, O>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
        observer: &mut O,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
        O: SyncObserver<P::State>,
    {
        let mut adapter = AdaptSync(observer);
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .observe(&mut adapter)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Single-letter protocol: round 1 every node beeps; from round 2 a
    /// node outputs 1 + f₂(#beeps heard).
    fn count_neighbors(b: u8) -> TableProtocol {
        let alphabet = Alphabet::new(["beep"]);
        let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(0));
        let start = builder.add_state("start", Letter(0));
        let listen = builder.add_state("listen", Letter(0));
        builder.add_input_state(start);
        builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
        for o in 0..=b {
            let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
            builder.set_transition(listen, o, Transitions::det(out, None));
            builder.set_transition_all(out, Transitions::det(out, None));
        }
        builder.build().unwrap()
    }

    #[test]
    fn counting_protocol_observes_degrees() {
        // On a star with b = 3: center sees ≥3 beeps, leaves see 1.
        let g = generators::star(6);
        let p = AsMulti(count_neighbors(3));
        let out = run_sync(&p, &g, &SyncConfig::seeded(1)).unwrap();
        assert_eq!(out.rounds, 2);
        assert_eq!(out.outputs[0], 1 + 3); // truncated: ≥3
        for v in 1..6 {
            assert_eq!(out.outputs[v], 1 + 1);
        }
        // Every node transmitted exactly once.
        assert_eq!(out.messages_sent, 6);
    }

    #[test]
    fn one_two_many_truncation_is_visible() {
        // With b = 1 (the beeping bound) the center of a star cannot
        // distinguish its high degree from 1.
        let g = generators::star(6);
        let p = AsMulti(count_neighbors(1));
        let out = run_sync(&p, &g, &SyncConfig::seeded(1)).unwrap();
        assert_eq!(out.outputs[0], 2);
        assert_eq!(out.outputs[1], 2);
    }

    #[test]
    fn isolated_nodes_observe_zero() {
        let g = stoneage_graph::Graph::empty(3);
        let p = AsMulti(count_neighbors(2));
        let out = run_sync(&p, &g, &SyncConfig::seeded(0)).unwrap();
        assert_eq!(out.outputs, vec![1, 1, 1]);
    }

    #[test]
    fn round_limit_is_reported() {
        // A protocol that never reaches an output state.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("spin", alphabet, 1, Letter(0));
        let s = b.add_state("s", Letter(0));
        b.add_input_state(s);
        b.set_transition_all(s, Transitions::det(s, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(3);
        let err = run_sync(
            &p,
            &g,
            &SyncConfig {
                seed: 0,
                max_rounds: 10,
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::RoundLimit {
                limit: 10,
                unfinished: 3
            }
        );
    }

    #[test]
    fn input_mismatch_is_reported() {
        let p = AsMulti(count_neighbors(1));
        let g = generators::path(3);
        let err = run_sync_with_inputs(&p, &g, &[0, 0], &SyncConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::InputLengthMismatch { .. }));
    }

    #[test]
    fn per_node_inputs_select_initial_states() {
        // Two input states with different outputs reachable immediately.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("inputs", alphabet, 1, Letter(0));
        let a0 = b.add_state("a0", Letter(0));
        let a1 = b.add_state("a1", Letter(0));
        let o0 = b.add_output_state("o0", Letter(0), 100);
        let o1 = b.add_output_state("o1", Letter(0), 200);
        b.add_input_state(a0);
        b.add_input_state(a1);
        b.set_transition_all(a0, Transitions::det(o0, None));
        b.set_transition_all(a1, Transitions::det(o1, None));
        b.set_transition_all(o0, Transitions::det(o0, None));
        b.set_transition_all(o1, Transitions::det(o1, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(4);
        let out = run_sync_with_inputs(&p, &g, &[0, 1, 1, 0], &SyncConfig::default()).unwrap();
        assert_eq!(out.outputs, vec![100, 200, 200, 100]);
    }

    #[test]
    fn epsilon_emissions_do_not_overwrite_ports() {
        // Node observes `beep` in round 2 even though the beeper goes
        // silent afterwards: ports retain the last letter.
        let alphabet = Alphabet::new(["beep", "noop"]);
        let mut b = TableProtocolBuilder::new("retain", alphabet, 1, Letter(1));
        let start = b.add_state("start", Letter(0));
        let wait1 = b.add_state("wait1", Letter(0));
        let wait2 = b.add_state("wait2", Letter(0));
        let no = b.add_output_state("no", Letter(0), 0);
        let yes = b.add_output_state("yes", Letter(0), 1);
        b.add_input_state(start);
        // Beep once at round 1, then silence.
        b.set_transition_all(start, Transitions::det(wait1, Some(Letter(0))));
        b.set_transition_all(wait1, Transitions::det(wait2, None));
        // Round 3: check whether the old beep is still in the port.
        b.set_transition(wait2, 0, Transitions::det(no, None));
        b.set_transition(wait2, 1, Transitions::det(yes, None));
        b.set_transition_all(no, Transitions::det(no, None));
        b.set_transition_all(yes, Transitions::det(yes, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(2);
        let out = run_sync(&p, &g, &SyncConfig::seeded(3)).unwrap();
        assert_eq!(out.outputs, vec![1, 1]);
    }

    #[test]
    fn observer_sees_every_round() {
        struct Counter(u64);
        impl<S> SyncObserver<S> for Counter {
            fn on_round_end(&mut self, round: u64, _states: &[S]) {
                self.0 = round;
            }
        }
        let p = AsMulti(count_neighbors(1));
        let g = generators::cycle(5);
        let mut obs = Counter(0);
        let inputs = vec![0; 5];
        let out = run_sync_observed(&p, &g, &inputs, &SyncConfig::seeded(0), &mut obs).unwrap();
        assert_eq!(obs.0, out.rounds);
    }

    #[test]
    fn determinism_per_seed() {
        let g = generators::gnp(30, 0.2, 5);
        let p = AsMulti(count_neighbors(2));
        let a = run_sync(&p, &g, &SyncConfig::seeded(7)).unwrap();
        let b = run_sync(&p, &g, &SyncConfig::seeded(7)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn zero_round_outcome_for_instant_output() {
        // Protocol whose input state is already an output state.
        let alphabet = Alphabet::new(["x"]);
        let mut b = TableProtocolBuilder::new("done", alphabet, 1, Letter(0));
        let d = b.add_output_state("d", Letter(0), 9);
        b.add_input_state(d);
        b.set_transition_all(d, Transitions::det(d, None));
        let p = AsMulti(b.build().unwrap());
        let g = generators::path(2);
        let out = run_sync(&p, &g, &SyncConfig::default()).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.outputs, vec![9, 9]);
    }
}
