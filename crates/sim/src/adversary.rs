//! Adversarial scheduling policies for the asynchronous environment.
//!
//! Section 2 of the paper models asynchrony by an **oblivious adversary**
//! that fixes, in advance and independently of the protocol's coin tosses,
//! a step length `L_{v,t}` for every node `v` and step `t`, and a delivery
//! delay `D_{v,t,u}` for every transmission. We realize obliviousness
//! literally: every adversary here is a *pure function* of `(seed, v, t)`
//! or `(seed, v, t, u)` via hashing — the drawn values cannot depend on the
//! execution path, let alone the protocol's randomness.
//!
//! The paper's correctness claims quantify over *all* policies; the
//! experiments quantify over this family (uniform, heavy-tailed, lockstep,
//! straggler nodes, slow edges, bursty), chosen to exercise the interesting
//! behaviors: message overwrite/loss, large skew between neighbors, and
//! time-varying speed.

use stoneage_graph::NodeId;

use crate::splitmix64;

/// An oblivious adversarial policy: the pair of infinite parameter
/// sequences `(L_{v,t}, D_{v,t,u})` of the paper, evaluated on demand.
///
/// All returned values must be finite and strictly positive. Values are
/// *unnormalized*; the executor reports run-time in units of the largest
/// parameter it consumed (the paper's "time unit").
pub trait Adversary {
    /// The length `L_{v,t}` of step `t ∈ Z>0` of node `v`.
    fn step_length(&self, v: NodeId, t: u64) -> f64;

    /// The delay `D_{v,t,u}` of the delivery to `u` of the message
    /// transmitted by `v` at its step `t`.
    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64;

    /// Fills `out[k]` with `delay(v, t, neighbors[k])` — the whole latency
    /// schedule of one broadcast in a single call, so the calendar
    /// scheduler ([`crate::schedule`]) can turn it into per-edge arrival
    /// batches without a virtual dispatch per neighbor. Policies with
    /// structure (e.g. constant delays) may override this with a bulk
    /// fill; the result must equal per-`k` [`Adversary::delay`] calls
    /// exactly, or the executor's differential guarantees break.
    fn fill_delays(&self, v: NodeId, t: u64, neighbors: &[NodeId], out: &mut [f64]) {
        debug_assert_eq!(neighbors.len(), out.len());
        for (slot, &u) in out.iter_mut().zip(neighbors) {
            *slot = self.delay(v, t, u);
        }
    }

    /// The policy's own typical step-length scale, if it knows one — used
    /// by the calendar scheduler to pick its bucket width (see
    /// [`crate::schedule`] for the trade-off). `None` makes the executor
    /// estimate the scale from a small deterministic sample of the
    /// policy. Purely a performance hint: it cannot affect outcomes.
    fn time_scale_hint(&self) -> Option<f64> {
        None
    }

    /// Diagnostic name used in experiment tables.
    fn name(&self) -> &'static str;
}

fn mix3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    h = splitmix64(h ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = splitmix64(h ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    splitmix64(h ^ c.wrapping_mul(0x1656_67B1_9E37_79F9))
}

/// Hash → uniform float in `(0, 1]`.
fn unit_float(h: u64) -> f64 {
    // 53 random mantissa bits, then shift from [0,1) to (0,1].
    let x = (h >> 11) as f64 / (1u64 << 53) as f64;
    1.0 - x
}

/// Lockstep: every step lasts 1, every delivery takes 1/2. This makes the
/// asynchronous executor behave like a synchronous network and is the
/// baseline against which other policies' slowdowns are measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lockstep;

impl Adversary for Lockstep {
    fn step_length(&self, _v: NodeId, _t: u64) -> f64 {
        1.0
    }

    fn delay(&self, _v: NodeId, _t: u64, _u: NodeId) -> f64 {
        0.5
    }

    fn fill_delays(&self, _v: NodeId, _t: u64, neighbors: &[NodeId], out: &mut [f64]) {
        debug_assert_eq!(neighbors.len(), out.len());
        out.fill(0.5);
    }

    fn time_scale_hint(&self) -> Option<f64> {
        Some(1.0)
    }

    fn name(&self) -> &'static str {
        "lockstep"
    }
}

/// Uniform: step lengths and delays i.i.d. uniform in `(0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct UniformRandom {
    /// Seed of the oblivious parameter sequences.
    pub seed: u64,
}

impl Adversary for UniformRandom {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        unit_float(mix3(self.seed, 1, v as u64, t))
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        unit_float(mix3(self.seed, 2, (v as u64) << 32 | u as u64, t))
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Heavy-tailed: exponential with the given mean, truncated to
/// `[mean/100, 8·mean]`, for both step lengths and delays. Produces large
/// skews between neighbors while keeping the time-unit normalization
/// meaningful.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    /// Seed of the oblivious parameter sequences.
    pub seed: u64,
    /// Mean of the (untruncated) exponential.
    pub mean: f64,
}

impl Exponential {
    fn draw(&self, h: u64) -> f64 {
        let x = -self.mean * unit_float(h).ln();
        x.clamp(self.mean / 100.0, 8.0 * self.mean)
    }
}

impl Adversary for Exponential {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        self.draw(mix3(self.seed, 3, v as u64, t))
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        self.draw(mix3(self.seed, 4, (v as u64) << 32 | u as u64, t))
    }

    fn time_scale_hint(&self) -> Option<f64> {
        Some(self.mean)
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// Straggler nodes: a hash-chosen `fraction` of the nodes is permanently
/// slow — their steps take `factor` times longer. Message delays stay
/// uniform. Models heterogeneous devices (e.g. cells of different sizes).
#[derive(Clone, Copy, Debug)]
pub struct SlowNodes {
    /// Seed of the oblivious parameter sequences.
    pub seed: u64,
    /// Fraction of nodes that are slow, in `[0, 1]`.
    pub fraction: f64,
    /// Slowdown multiplier for slow nodes (≥ 1).
    pub factor: f64,
}

impl SlowNodes {
    /// Whether this policy makes `v` a straggler.
    pub fn is_slow(&self, v: NodeId) -> bool {
        unit_float(mix3(self.seed, 5, v as u64, 0)) <= self.fraction
    }
}

impl Adversary for SlowNodes {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        let base = unit_float(mix3(self.seed, 6, v as u64, t));
        if self.is_slow(v) {
            (base * self.factor).min(self.factor)
        } else {
            base
        }
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        unit_float(mix3(self.seed, 7, (v as u64) << 32 | u as u64, t))
    }

    fn name(&self) -> &'static str {
        "slow-nodes"
    }
}

/// Slow edges: a hash-chosen `fraction` of the *directed* edges is
/// permanently slow — deliveries across them take `factor` times longer.
/// Step lengths stay uniform. Exercises the overwrite-and-lose semantics:
/// a slow port receives bursts of messages of which it observes only the
/// last.
#[derive(Clone, Copy, Debug)]
pub struct SlowEdges {
    /// Seed of the oblivious parameter sequences.
    pub seed: u64,
    /// Fraction of directed edges that are slow, in `[0, 1]`.
    pub fraction: f64,
    /// Slowdown multiplier for slow edges (≥ 1).
    pub factor: f64,
}

impl SlowEdges {
    /// Whether the directed edge `v → u` is slow under this policy.
    pub fn is_slow(&self, v: NodeId, u: NodeId) -> bool {
        unit_float(mix3(self.seed, 8, (v as u64) << 32 | u as u64, 0)) <= self.fraction
    }
}

impl Adversary for SlowEdges {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        unit_float(mix3(self.seed, 9, v as u64, t))
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        let base = unit_float(mix3(self.seed, 10, (v as u64) << 32 | u as u64, t));
        if self.is_slow(v, u) {
            (base * self.factor).min(self.factor)
        } else {
            base
        }
    }

    fn name(&self) -> &'static str {
        "slow-edges"
    }
}

/// Bursty: each node alternates between fast epochs and slow epochs of
/// `period` steps, with a per-node phase offset, so neighborhoods drift in
/// and out of relative synchrony. Models duty-cycled devices.
#[derive(Clone, Copy, Debug)]
pub struct Bursty {
    /// Seed of the oblivious parameter sequences.
    pub seed: u64,
    /// Steps per epoch (≥ 1).
    pub period: u64,
    /// Step-length multiplier during slow epochs (≥ 1).
    pub slow_factor: f64,
}

impl Adversary for Bursty {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        let period = self.period.max(1);
        let phase = splitmix64(self.seed ^ v as u64) % period;
        let slow = ((t + phase) / period) % 2 == 1;
        let base = unit_float(mix3(self.seed, 11, v as u64, t));
        if slow {
            (base * self.slow_factor).min(self.slow_factor)
        } else {
            base
        }
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        unit_float(mix3(self.seed, 12, (v as u64) << 32 | u as u64, t))
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// The standard panel of adversaries used by the robustness experiments
/// (E13): one representative of each policy family, at the given seed.
pub fn standard_panel(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(Lockstep),
        Box::new(UniformRandom { seed }),
        Box::new(Exponential { seed, mean: 0.5 }),
        Box::new(SlowNodes {
            seed,
            fraction: 0.1,
            factor: 10.0,
        }),
        Box::new(SlowEdges {
            seed,
            fraction: 0.1,
            factor: 10.0,
        }),
        Box::new(Bursty {
            seed,
            period: 8,
            slow_factor: 10.0,
        }),
    ]
}

impl<A: Adversary + ?Sized> Adversary for &A {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        (**self).step_length(v, t)
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        (**self).delay(v, t, u)
    }

    fn fill_delays(&self, v: NodeId, t: u64, neighbors: &[NodeId], out: &mut [f64]) {
        (**self).fill_delays(v, t, neighbors, out)
    }

    fn time_scale_hint(&self) -> Option<f64> {
        (**self).time_scale_hint()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl Adversary for Box<dyn Adversary> {
    fn step_length(&self, v: NodeId, t: u64) -> f64 {
        (**self).step_length(v, t)
    }

    fn delay(&self, v: NodeId, t: u64, u: NodeId) -> f64 {
        (**self).delay(v, t, u)
    }

    fn fill_delays(&self, v: NodeId, t: u64, neighbors: &[NodeId], out: &mut [f64]) {
        (**self).fill_delays(v, t, neighbors, out)
    }

    fn time_scale_hint(&self) -> Option<f64> {
        (**self).time_scale_hint()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positive_and_deterministic<A: Adversary>(a: &A) {
        for v in 0..20u32 {
            for t in 1..50u64 {
                let l = a.step_length(v, t);
                assert!(l > 0.0 && l.is_finite(), "{} L({v},{t}) = {l}", a.name());
                assert_eq!(l, a.step_length(v, t), "{} not pure", a.name());
                let d = a.delay(v, t, (v + 1) % 20);
                assert!(d > 0.0 && d.is_finite(), "{} D = {d}", a.name());
                assert_eq!(d, a.delay(v, t, (v + 1) % 20));
            }
        }
    }

    #[test]
    fn all_policies_are_positive_finite_pure() {
        positive_and_deterministic(&Lockstep);
        positive_and_deterministic(&UniformRandom { seed: 1 });
        positive_and_deterministic(&Exponential { seed: 2, mean: 0.5 });
        positive_and_deterministic(&SlowNodes {
            seed: 3,
            fraction: 0.3,
            factor: 5.0,
        });
        positive_and_deterministic(&SlowEdges {
            seed: 4,
            fraction: 0.3,
            factor: 5.0,
        });
        positive_and_deterministic(&Bursty {
            seed: 5,
            period: 4,
            slow_factor: 6.0,
        });
    }

    #[test]
    fn uniform_values_cover_the_unit_interval() {
        let a = UniformRandom { seed: 9 };
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for t in 1..2000u64 {
            let x = a.step_length(0, t);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05, "min {lo}");
        assert!(hi > 0.95, "max {hi}");
        assert!(hi <= 1.0);
    }

    #[test]
    fn slow_nodes_fraction_is_respected() {
        let a = SlowNodes {
            seed: 11,
            fraction: 0.25,
            factor: 4.0,
        };
        let slow = (0..4000u32).filter(|&v| a.is_slow(v)).count();
        let frac = slow as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn slow_nodes_are_actually_slower() {
        let a = SlowNodes {
            seed: 13,
            fraction: 0.5,
            factor: 20.0,
        };
        let slow_v = (0..100).find(|&v| a.is_slow(v)).unwrap();
        let fast_v = (0..100).find(|&v| !a.is_slow(v)).unwrap();
        let avg = |v: NodeId| (1..200u64).map(|t| a.step_length(v, t)).sum::<f64>() / 199.0;
        assert!(avg(slow_v) > 4.0 * avg(fast_v));
    }

    #[test]
    fn exponential_is_truncated() {
        let a = Exponential {
            seed: 17,
            mean: 0.5,
        };
        for t in 1..5000 {
            let x = a.step_length(3, t);
            assert!((0.005..=4.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn bursty_alternates_speed() {
        let a = Bursty {
            seed: 19,
            period: 10,
            slow_factor: 50.0,
        };
        let vals: Vec<f64> = (1..200u64).map(|t| a.step_length(0, t)).collect();
        let has_fast = vals.iter().any(|&x| x < 1.0);
        let has_slow = vals.iter().any(|&x| x > 5.0);
        assert!(has_fast && has_slow);
    }

    #[test]
    fn fill_delays_matches_pointwise_delay_for_every_policy() {
        // The batch API must be a pure transcription of `delay` — the
        // wheel executor's bit-identity to the heap path depends on it.
        for adv in standard_panel(21) {
            let neighbors: Vec<NodeId> = (0..12).collect();
            let mut out = vec![0.0; neighbors.len()];
            for v in 0..5u32 {
                for t in 1..4u64 {
                    adv.fill_delays(v, t, &neighbors, &mut out);
                    for (k, &u) in neighbors.iter().enumerate() {
                        assert_eq!(out[k], adv.delay(v, t, u), "{} v={v} t={t}", adv.name());
                    }
                }
            }
        }
    }

    #[test]
    fn time_scale_hints_are_positive_where_present() {
        for adv in standard_panel(3) {
            if let Some(s) = adv.time_scale_hint() {
                assert!(s > 0.0 && s.is_finite(), "{}", adv.name());
            }
        }
    }

    #[test]
    fn standard_panel_has_six_distinct_policies() {
        let panel = standard_panel(1);
        assert_eq!(panel.len(), 6);
        let names: std::collections::HashSet<_> = panel.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
