//! Execution engines for the nFSM model of *Stone Age Distributed
//! Computing*.
//!
//! Two engines implement the paper's two environments:
//!
//! * [`run_sync`] — a **lockstep synchronous** round executor for
//!   [`stoneage_core::MultiFsm`] protocols. It satisfies the paper's
//!   synchronization properties (S1) and (S2) exactly, and is the
//!   environment the paper's protocol *descriptions* (Sections 4 and 5)
//!   assume by virtue of Theorems 3.1 and 3.4.
//! * [`run_async`] — a fully **asynchronous** event-driven executor for
//!   [`stoneage_core::Fsm`] protocols, implementing the adversarial
//!   semantics of Section 2: per-step lengths `L_{v,t}` and per-message
//!   FIFO delivery delays `D_{v,t,u}` are chosen by an oblivious
//!   [`Adversary`]; ports hold only the last delivered letter, so messages
//!   can be overwritten and lost.
//!
//! Run-times are reported in the paper's units: rounds for the synchronous
//! engine; for the asynchronous engine, the completion time normalized by
//! the largest step-length/delay parameter used (the paper's "time unit").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod async_exec;
pub mod scoped;
mod sync_exec;

pub use adversary::Adversary;
pub use async_exec::{
    run_async, run_async_observed, run_async_with_inputs, AsyncConfig, AsyncObserver,
    AsyncOutcome, NoopAsyncObserver,
};
pub use scoped::{
    run_scoped, ScopedDelivery, ScopedEmission, ScopedMultiFsm, ScopedOutcome, ScopedTransitions,
};
pub use sync_exec::{
    run_sync, run_sync_observed, run_sync_with_inputs, NoopObserver, SyncConfig, SyncObserver,
    SyncOutcome,
};

/// Why an execution failed to reach an output configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The execution exceeded its round budget (synchronous engine).
    RoundLimit {
        /// The configured limit.
        limit: u64,
        /// Nodes not yet in an output state when the limit was hit.
        unfinished: usize,
    },
    /// The execution exceeded its event budget (asynchronous engine).
    EventLimit {
        /// The configured limit.
        limit: u64,
        /// Nodes not yet in an output state when the limit was hit.
        unfinished: usize,
    },
    /// The number of supplied inputs does not match the node count.
    InputLengthMismatch {
        /// Nodes in the graph.
        nodes: usize,
        /// Inputs supplied.
        inputs: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::RoundLimit { limit, unfinished } => write!(
                f,
                "no output configuration within {limit} rounds ({unfinished} nodes unfinished)"
            ),
            ExecError::EventLimit { limit, unfinished } => write!(
                f,
                "no output configuration within {limit} events ({unfinished} nodes unfinished)"
            ),
            ExecError::InputLengthMismatch { nodes, inputs } => {
                write!(f, "{inputs} inputs supplied for {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// SplitMix64: the stream-splitting hash used to derive independent
/// deterministic seeds for per-node RNGs and oblivious adversary draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreading() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Successive outputs should differ in many bits.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn exec_error_messages_render() {
        let e = ExecError::RoundLimit {
            limit: 10,
            unfinished: 3,
        };
        assert!(e.to_string().contains("10 rounds"));
        let e = ExecError::InputLengthMismatch {
            nodes: 5,
            inputs: 4,
        };
        assert!(e.to_string().contains("4 inputs"));
    }
}
