//! Execution engines for the nFSM model of *Stone Age Distributed
//! Computing*.
//!
//! The crate's entry point is the unified [`Simulation`] builder of the
//! [`sim`] module — one configurable front over every executor, selected
//! by [`Backend`]. (The legacy `run_*` free functions are retired; see
//! the README migration table for the builder equivalent of each.) The
//! [`snapshot`] module adds bit-identical checkpoint/resume on top:
//! [`Simulation::checkpoint_every`] captures versioned binary
//! [`Snapshot`] frames at committed boundaries and
//! [`Simulation::resume_from`] replays the remainder exactly.
//!
//! Two engines implement the paper's two environments:
//!
//! * [`Backend::Sync`] — a **lockstep synchronous** round executor for
//!   [`stoneage_core::MultiFsm`] protocols. It satisfies the paper's
//!   synchronization properties (S1) and (S2) exactly, and is the
//!   environment the paper's protocol *descriptions* (Sections 4 and 5)
//!   assume by virtue of Theorems 3.1 and 3.4. ([`Backend::Scoped`] is
//!   its twin for the port-select extension of the [`scoped`] module.)
//! * [`Backend::Async`] — a fully **asynchronous** event-driven executor
//!   for [`stoneage_core::Fsm`] protocols, implementing the adversarial
//!   semantics of Section 2: per-step lengths `L_{v,t}` and per-message
//!   FIFO delivery delays `D_{v,t,u}` are chosen by an oblivious
//!   [`Adversary`]; ports hold only the last delivered letter, so messages
//!   can be overwritten and lost.
//!
//! Run-times are reported in the paper's units: rounds for the synchronous
//! engine; for the asynchronous engine, the completion time normalized by
//! the largest step-length/delay parameter used (the paper's "time unit").
//!
//! # The flat delivery engine
//!
//! All three executors (synchronous, [`scoped`], asynchronous) share the
//! flat execution substrate of the [`engine`] module:
//!
//! * **Flat port store** — every port of every node lives in one
//!   `Vec<Letter>` indexed by the graph's CSR offsets; node `v`'s `k`-th
//!   port is slot `csr_offset(v) + k`. The round/event loops perform no
//!   heap allocation.
//! * **Precomputed reverse-port maps** — the port number `ψ_u(v)` for
//!   every directed edge `v → u` is computed once at graph build time
//!   ([`stoneage_graph::Graph::reverse_ports`]), so a delivery is a single
//!   indexed store instead of a binary search.
//! * **Incremental observation counts** — per-node per-letter port counts
//!   are maintained on every overwrite; a phase-1 observation is an
//!   O(|Σ|) refill of a reusable [`stoneage_core::ObsVec`] scratch buffer
//!   rather than an O(deg) port scan with a fresh allocation.
//! * **Undecided-node counter** — termination is detected by a counter
//!   updated on state transitions, not an O(|V|) output scan per round.
//!
//! The asynchronous executor additionally schedules its events on the
//! calendar-queue / hierarchical timing wheel of the [`schedule`] module
//! (O(1) amortized per event instead of the global heap's `O(log m)`),
//! batching same-arrival-time deliveries per edge; the heap path survives
//! behind [`SchedulerKind::BinaryHeap`] as a differential oracle.
//!
//! None of this changes semantics. The lockstep loop still applies all
//! phase-1 transitions against the frozen previous-round ports before any
//! phase-2 delivery, preserving (S1) — all nodes observe the same round —
//! and (S2) — after round `t + 1`, port `ψ_u(v)` holds the letter `v`
//! transmitted in round `t` (or the last earlier one; `ε` never
//! overwrites). Outputs are **bit-identical per seed** to the naive
//! pre-flat executor, which survives as [`reference::run_sync_reference`]
//! for differential testing and benchmarking.
//!
//! Both lockstep backends execute on the shared round pipeline of the
//! [`pipeline`] module, over the epoch-split [`engine::PortPlanes`]
//! store: phase 1 of round *r* observes a frozen read plane, phase-2
//! deliveries land on the write plane, and the plane swap at the round
//! boundary is a pure epoch flip (no copy).
//!
//! With the `parallel` cargo feature (alias: `rayon`; implemented with
//! `std::thread` because this build environment vendors no external
//! crates), `.parallel(ParallelPolicy)` chunks **both** round phases
//! across worker threads: phase 1 (observation + transition) over
//! disjoint node chunks, and phase 2 (delivery) through the per-worker
//! sharded write buffers of the [`parbuf`] module, merged
//! destination-sharded so workers never contend on a node's CSR slots.
//! The policy's [`RoundMode`] picks the schedule: `Joined` (the
//! historical two-join round, kept as the differential oracle) or
//! `Fused` (phase 2b of round *r* lands inside the worker scope of
//! round *r + 1* on per-worker plane shards — exactly one scope join
//! per round). Outcomes stay bit-identical to the serial engines for
//! every seed, worker count, merge strategy, and round mode — see the
//! [`parbuf`] and [`pipeline`] docs for the determinism argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod async_exec;
pub mod churn;
pub mod engine;
pub mod faults;
pub mod parbuf;
pub mod pipeline;
pub mod reference;
pub mod schedule;
pub mod scoped;
pub mod sim;
pub mod snapshot;
mod sync_exec;

pub use adversary::Adversary;
pub use async_exec::{AsyncConfig, AsyncObserver, AsyncOutcome, NoopAsyncObserver, SchedulerKind};
pub use churn::{
    ChurnOracle, ChurnPlan, ChurnSummary, PatchMode, StabilizationObserver, StabilizationRecord,
};
pub use engine::{FlatPorts, PortPlanes};
pub use faults::{FaultPlan, FaultPlanError, FaultRule, FaultScope, FaultSummary, LinkFault};
pub use parbuf::{
    ChunkScheduler, MergeStrategy, ParallelPolicy, RoundMode, StealStats, ROUND_MODE_ENV,
    SCHEDULER_ENV,
};
pub use reference::{run_sync_reference, run_sync_reference_with_inputs};
pub use schedule::CalendarQueue;
pub use scoped::{
    ScopedDelivery, ScopedEmission, ScopedMultiFsm, ScopedOutcome, ScopedTransitions,
};
pub use sim::{
    AdaptAsync, AdaptSync, AsyncOptions, Backend, Cost, Detail, Observer, Outcome, Simulation,
};
pub use snapshot::{
    read_snapshot_file, write_snapshot_file, PersistError, SnapReader, SnapState, SnapWriter,
    Snapshot, SnapshotError, SNAPSHOT_VERSION,
};
/// Re-export of the representation-independent protocol base trait the
/// [`Simulation`] builder is generic over.
pub use stoneage_core::Protocol;
pub use sync_exec::{NoopObserver, SyncConfig, SyncObserver, SyncOutcome};

/// Why an execution failed to reach an output configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The execution exceeded its round budget (synchronous engine).
    RoundLimit {
        /// The configured limit.
        limit: u64,
        /// Nodes not yet in an output state when the limit was hit.
        unfinished: usize,
    },
    /// The execution exceeded its event budget (asynchronous engine).
    EventLimit {
        /// The configured limit.
        limit: u64,
        /// Nodes not yet in an output state when the limit was hit.
        unfinished: usize,
    },
    /// The number of supplied inputs does not match the node count.
    InputLengthMismatch {
        /// Nodes in the graph.
        nodes: usize,
        /// Inputs supplied.
        inputs: usize,
    },
    /// The [`Simulation`] builder was configured into an invalid state
    /// (e.g. a backend the protocol's transition flavor cannot drive, a
    /// parallel policy on the Async backend, or a zero budget) — reported
    /// as an error instead of a panic.
    Config {
        /// Human-readable description of the invalid configuration.
        reason: String,
    },
    /// A [`Snapshot`] passed to [`Simulation::resume_from`] could not be
    /// decoded or does not belong to this run configuration (format
    /// version mismatch, truncated or corrupted bytes, or a header
    /// digest that disagrees with the builder's graph / protocol /
    /// backend / config).
    Snapshot(snapshot::SnapshotError),
}

impl From<snapshot::SnapshotError> for ExecError {
    fn from(e: snapshot::SnapshotError) -> Self {
        ExecError::Snapshot(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::RoundLimit { limit, unfinished } => write!(
                f,
                "no output configuration within {limit} rounds ({unfinished} nodes unfinished)"
            ),
            ExecError::EventLimit { limit, unfinished } => write!(
                f,
                "no output configuration within {limit} events ({unfinished} nodes unfinished)"
            ),
            ExecError::InputLengthMismatch { nodes, inputs } => {
                write!(f, "{inputs} inputs supplied for {nodes} nodes")
            }
            ExecError::Config { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            ExecError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

/// SplitMix64: the stream-splitting hash used to derive independent
/// deterministic seeds for per-node RNGs and oblivious adversary draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreading() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Successive outputs should differ in many bits.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn exec_error_messages_render() {
        let e = ExecError::RoundLimit {
            limit: 10,
            unfinished: 3,
        };
        assert!(e.to_string().contains("10 rounds"));
        let e = ExecError::InputLengthMismatch {
            nodes: 5,
            inputs: 4,
        };
        assert!(e.to_string().contains("4 inputs"));
    }
}
