//! Versioned, bit-identical **checkpoint/resume snapshots** of a running
//! simulation.
//!
//! A [`Snapshot`] captures everything a mid-run simulation owns at a
//! round (lockstep) or step (asynchronous) boundary: the
//! [`crate::engine::PortPlanes`] letter array and epoch, every per-node
//! protocol state, the decided/undecided counters, the full internal
//! state of every per-node RNG stream (via the compat `rand` shim's
//! `SeedState` capture/restore API), the asynchronous event backlog with
//! its exact `(time, seq)` order, the churn-plan cursor, and the
//! accumulated cost counters. Resuming from a snapshot — including one
//! round-tripped through [`Snapshot::to_bytes`] /
//! [`Snapshot::from_bytes`] on disk — continues the run **bit-identically**
//! to the uninterrupted one, for every backend, worker count, round mode,
//! and churn plan.
//!
//! # Boundary-only guarantee
//!
//! Checkpoints are taken only at round boundaries (lockstep backends:
//! after the round's deliveries have landed and the epoch has flipped) or
//! step boundaries (async backend: after a node step and its rescheduling
//! completed). At those points the engine state is closed — the frozen
//! read plane, the write plane, and the epoch coincide in one backing
//! array, all in-flight work is either landed or explicitly queued — so
//! the PR-5 frozen-read-plane and PR-6 boundary-only-churn bit-identity
//! arguments carry over to a resumed run unchanged. There is no
//! mid-round snapshot: [`crate::Simulation::checkpoint_every`] counts
//! boundaries.
//!
//! # Wire format
//!
//! [`Snapshot::to_bytes`] emits a little-endian, length-prefixed frame:
//!
//! | field           | size | contents                                     |
//! |-----------------|------|----------------------------------------------|
//! | magic           | 4    | `b"SASN"`                                    |
//! | version         | 4    | [`SNAPSHOT_VERSION`]                         |
//! | backend         | 1    | 0 = sync, 1 = scoped, 2 = async              |
//! | boundary        | 8    | round (lockstep) / total steps (async)       |
//! | graph fp        | 8    | FNV-1a over the base graph's CSR             |
//! | protocol id     | 8    | FNV-1a over the protocol type + parameters   |
//! | config digest   | 8    | FNV-1a over seed, inputs, churn plan, …      |
//! | body length     | 8    | bytes of body                                |
//! | body            | var  | backend-specific engine state                |
//! | checksum        | 8    | FNV-1a over all preceding bytes              |
//!
//! The version is bumped whenever any of the layouts change;
//! [`Snapshot::from_bytes`] rejects other versions with
//! [`SnapshotError::VersionMismatch`] rather than guessing. The digests
//! bind a snapshot to the graph, protocol, and configuration it was taken
//! under; [`crate::Simulation::resume_from`] re-derives them from the
//! builder and rejects mismatches with a typed
//! [`crate::ExecError::Snapshot`] instead of resuming garbage.
//! Deliberately *excluded* from the digests: worker count, round mode,
//! merge strategy, scheduler kind, bucket width, and the budget — runs
//! are bit-identical across all of those, so a snapshot taken under one
//! may resume under another.
//!
//! # Example
//!
//! ```
//! use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocolBuilder, Transitions};
//! use stoneage_graph::generators;
//! use stoneage_sim::snapshot::Snapshot;
//! use stoneage_sim::{Observer, Simulation};
//!
//! // Beep once, then output 1 + f_b(#beeps heard).
//! let mut b = TableProtocolBuilder::new("count", Alphabet::new(["beep"]), 3, Letter(0));
//! let start = b.add_state("start", Letter(0));
//! let listen = b.add_state("listen", Letter(0));
//! b.add_input_state(start);
//! b.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
//! for o in 0..=3 {
//!     let out = b.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
//!     b.set_transition(listen, o, Transitions::det(out, None));
//!     b.set_transition_all(out, Transitions::det(out, None));
//! }
//! let protocol = AsMulti(b.build().unwrap());
//! let graph = generators::cycle(8);
//!
//! // Collect a snapshot at every round boundary.
//! struct Keep(Vec<Snapshot>);
//! impl<S> Observer<S> for Keep {
//!     fn on_checkpoint(&mut self, snapshot: &Snapshot) {
//!         self.0.push(snapshot.clone());
//!     }
//! }
//! let mut keep = Keep(Vec::new());
//! let full = Simulation::sync(&protocol, &graph)
//!     .seed(7)
//!     .checkpoint_every(1)
//!     .observe(&mut keep)
//!     .run()
//!     .unwrap();
//!
//! // Round-trip the first checkpoint through bytes and resume from it:
//! // bit-identical to the uninterrupted run.
//! let bytes = keep.0[0].to_bytes();
//! let snapshot = Snapshot::from_bytes(&bytes).unwrap();
//! let resumed = Simulation::sync(&protocol, &graph)
//!     .seed(7)
//!     .resume_from(&snapshot)
//!     .run()
//!     .unwrap();
//! assert_eq!(resumed.outputs, full.outputs);
//! assert_eq!(resumed.cost, full.cost);
//! ```

use rand::rngs::{SeedState, SmallRng};

use stoneage_core::Letter;
use stoneage_graph::Graph;

use crate::engine::{FlatPorts, PortPlanes};
use crate::faults::FaultSummary;
use crate::scoped::ScopedDelivery;
use crate::ExecError;

/// The current snapshot format version; bumped on any layout change.
/// Version 2 added the fault-layer tally (the accumulated
/// [`FaultSummary`], whose `evaluated` field is the fault-plan cursor)
/// to both body layouts, so a run checkpointed mid-[`crate::FaultPlan`]
/// resumes with bit-identical fault accounting.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The frame magic.
const MAGIC: [u8; 4] = *b"SASN";

/// Backend tag of a sync-backend snapshot.
pub(crate) const BACKEND_SYNC: u8 = 0;
/// Backend tag of a scoped-backend snapshot.
pub(crate) const BACKEND_SCOPED: u8 = 1;
/// Backend tag of an async-backend snapshot.
pub(crate) const BACKEND_ASYNC: u8 = 2;

/// Why a snapshot could not be decoded or bound to a run. Carried by
/// [`crate::ExecError::Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The frame was produced by a different format version.
    VersionMismatch {
        /// The version found in the frame.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A digest, magic, checksum, or structural field did not match what
    /// the run it is being bound to requires.
    DigestMismatch {
        /// Which field mismatched.
        field: &'static str,
    },
    /// The byte stream ended before the field being read.
    Truncated {
        /// Which part of the frame was being read.
        context: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::DigestMismatch { field } => {
                write!(f, "snapshot does not match the run: {field} mismatch")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot bytes truncated while reading {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// An incremental FNV-1a 64 hasher — the digest primitive of the header
/// fields and the frame checksum.
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a graph's full CSR adjacency (node count, degrees,
/// neighbor lists) — the header field binding a snapshot to its graph.
pub(crate) fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut d = Digest::new();
    d.u64(graph.node_count() as u64);
    for v in 0..graph.node_count() {
        let v = v as stoneage_graph::NodeId;
        d.u64(graph.degree(v) as u64);
        for &u in graph.neighbors(v) {
            d.u64(u as u64);
        }
    }
    d.finish()
}

/// Best-effort protocol identity: the concrete Rust type name plus the
/// static protocol parameters (|Σ|, `b`, σ₀). Transition tables are *not*
/// hashed — two table protocols of the same type, alphabet size, bound,
/// and initial letter share an id, so this guards against wiring the
/// wrong protocol *kind*, not against every table edit.
pub(crate) fn protocol_digest<P: stoneage_core::Protocol + ?Sized>(protocol: &P) -> u64 {
    let mut d = Digest::new();
    d.bytes(std::any::type_name::<P>().as_bytes());
    d.u64(protocol.alphabet().len() as u64);
    d.u64(protocol.bound() as u64);
    d.u64(protocol.initial_letter().0 as u64);
    d.finish()
}

/// A checkpoint of a running simulation, taken at a round/step boundary
/// through [`crate::Simulation::checkpoint_every`] and delivered to
/// [`crate::Observer::on_checkpoint`]. Resume with
/// [`crate::Simulation::resume_from`]; persist with
/// [`Snapshot::to_bytes`] / [`Snapshot::from_bytes`]. See the [module
/// docs](self) for the format and guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    version: u32,
    backend: u8,
    boundary: u64,
    graph_fp: u64,
    protocol_id: u64,
    config_digest: u64,
    body: Vec<u8>,
}

impl Snapshot {
    pub(crate) fn new(meta: SnapMeta, boundary: u64, body: Vec<u8>) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            backend: meta.backend,
            boundary,
            graph_fp: meta.graph_fp,
            protocol_id: meta.protocol_id,
            config_digest: meta.config_digest,
            body,
        }
    }

    /// The format version this snapshot was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The backend tag: 0 = sync, 1 = scoped, 2 = async.
    pub fn backend(&self) -> u8 {
        self.backend
    }

    /// The boundary the snapshot was taken at: the completed round
    /// (lockstep backends) or the total applied node steps (async).
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// The graph fingerprint this snapshot is bound to.
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fp
    }

    /// The protocol identity this snapshot is bound to.
    pub fn protocol_id(&self) -> u64 {
        self.protocol_id
    }

    /// The configuration digest (seed, inputs, churn plan, adversary)
    /// this snapshot is bound to.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    pub(crate) fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serializes the snapshot into the versioned, checksummed wire frame
    /// documented in the [module docs](self).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 1 + 8 * 5 + self.body.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.backend);
        out.extend_from_slice(&self.boundary.to_le_bytes());
        out.extend_from_slice(&self.graph_fp.to_le_bytes());
        out.extend_from_slice(&self.protocol_id.to_le_bytes());
        out.extend_from_slice(&self.config_digest.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.body);
        let mut d = Digest::new();
        d.bytes(&out);
        out.extend_from_slice(&d.finish().to_le_bytes());
        out
    }

    /// Parses a wire frame produced by [`Snapshot::to_bytes`], rejecting
    /// bad magic, unsupported versions, truncation, length mismatches,
    /// and checksum failures with the corresponding [`SnapshotError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = SnapReader::new(bytes, "snapshot header");
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SnapshotError::DigestMismatch { field: "magic" });
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let backend = r.u8()?;
        let boundary = r.u64()?;
        let graph_fp = r.u64()?;
        let protocol_id = r.u64()?;
        let config_digest = r.u64()?;
        let body_len = r.u64()?;
        let header_len = 4 + 4 + 1 + 8 * 5;
        let expect = (header_len as u64)
            .checked_add(body_len)
            .and_then(|l| l.checked_add(8));
        if expect != Some(bytes.len() as u64) {
            return Err(SnapshotError::Truncated {
                context: "snapshot body",
            });
        }
        let body = bytes[header_len..header_len + body_len as usize].to_vec();
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        let mut d = Digest::new();
        d.bytes(&bytes[..bytes.len() - 8]);
        if d.finish() != stored {
            return Err(SnapshotError::DigestMismatch { field: "checksum" });
        }
        Ok(Snapshot {
            version,
            backend,
            boundary,
            graph_fp,
            protocol_id,
            config_digest,
            body,
        })
    }
}

/// Little-endian byte sink for [`SnapState::encode`] implementations.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, x: bool) {
        self.u8(x as u8);
    }

    /// The accumulated bytes. Public so downstream [`SnapState`]
    /// implementations (protocol crates add their own state codecs) can
    /// unit-test their encode/decode round trip.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte source for [`SnapState::decode`] implementations.
/// Every getter fails with [`SnapshotError::Truncated`] instead of
/// panicking when the stream runs out.
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> SnapReader<'a> {
    /// A reader over `bytes`; `context` labels truncation errors. Public
    /// so downstream [`SnapState`] implementations can unit-test their
    /// encode/decode round trip.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        SnapReader {
            bytes,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                context: self.context,
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean byte.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.u8()? != 0)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// How one per-node protocol state serializes into a snapshot body.
///
/// Implemented here for the state types the built-in protocol combinators
/// use (`u16` table states, [`stoneage_core::sync::SyncState`] synchronizer
/// wrappers, letters and options thereof); custom protocols implement it
/// for their own state type to become checkpointable. The encoding must
/// be self-delimiting: `decode` must consume exactly the bytes `encode`
/// produced.
pub trait SnapState: Sized {
    /// Serializes `self` into `w`.
    fn encode(&self, w: &mut SnapWriter);
    /// Reads one state back, consuming exactly what [`SnapState::encode`]
    /// wrote.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

impl SnapState for u16 {
    fn encode(&self, w: &mut SnapWriter) {
        w.u16(*self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.u16()
    }
}

impl SnapState for u64 {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

impl SnapState for Letter {
    fn encode(&self, w: &mut SnapWriter) {
        w.u16(self.0);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Letter(r.u16()?))
    }
}

impl<S: SnapState> SnapState for Option<S> {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(x) => {
                w.u8(1);
                x.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(S::decode(r)?)),
            _ => Err(SnapshotError::DigestMismatch {
                field: "option tag",
            }),
        }
    }
}

impl SnapState for stoneage_core::sync::Scan {
    fn encode(&self, w: &mut SnapWriter) {
        w.u8(match self {
            stoneage_core::sync::Scan::Phi1 => 0,
            stoneage_core::sync::Scan::Phi2 => 1,
            stoneage_core::sync::Scan::Phi3 => 2,
        });
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(stoneage_core::sync::Scan::Phi1),
            1 => Ok(stoneage_core::sync::Scan::Phi2),
            2 => Ok(stoneage_core::sync::Scan::Phi3),
            _ => Err(SnapshotError::DigestMismatch { field: "scan tag" }),
        }
    }
}

impl<S: SnapState> SnapState for stoneage_core::sync::SyncState<S> {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            stoneage_core::sync::SyncState::Pause {
                inner,
                retained,
                trit,
                check,
            } => {
                w.u8(0);
                inner.encode(w);
                retained.encode(w);
                w.u8(*trit);
                w.u16(*check);
            }
            stoneage_core::sync::SyncState::Sim {
                inner,
                retained,
                trit,
                scan,
                idx,
                acc,
                phi1,
                phi2,
            } => {
                w.u8(1);
                inner.encode(w);
                retained.encode(w);
                w.u8(*trit);
                scan.encode(w);
                w.u16(*idx);
                w.u8(*acc);
                w.u8(*phi1);
                w.u8(*phi2);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(stoneage_core::sync::SyncState::Pause {
                inner: S::decode(r)?,
                retained: Option::<Letter>::decode(r)?,
                trit: r.u8()?,
                check: r.u16()?,
            }),
            1 => Ok(stoneage_core::sync::SyncState::Sim {
                inner: S::decode(r)?,
                retained: Option::<Letter>::decode(r)?,
                trit: r.u8()?,
                scan: stoneage_core::sync::Scan::decode(r)?,
                idx: r.u16()?,
                acc: r.u8()?,
                phi1: r.u8()?,
                phi2: r.u8()?,
            }),
            _ => Err(SnapshotError::DigestMismatch {
                field: "sync state tag",
            }),
        }
    }
}

/// A monomorphized encode/decode pair for one protocol state type,
/// captured by [`crate::Simulation::checkpoint_every`] /
/// [`crate::Simulation::resume_from`] so the execution engines stay free
/// of [`SnapState`] bounds.
pub struct StateCodec<S> {
    encode: fn(&S, &mut SnapWriter),
    decode: fn(&mut SnapReader<'_>) -> Result<S, SnapshotError>,
}

impl<S> Clone for StateCodec<S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for StateCodec<S> {}

impl<S> std::fmt::Debug for StateCodec<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StateCodec")
    }
}

impl<S: SnapState> StateCodec<S> {
    /// The codec of `S`'s own [`SnapState`] implementation.
    pub fn auto() -> Self {
        StateCodec {
            encode: |s, w| s.encode(w),
            decode: S::decode,
        }
    }
}

impl<S> StateCodec<S> {
    pub(crate) fn encode_states(&self, states: &[S], w: &mut SnapWriter) {
        for s in states {
            (self.encode)(s, w);
        }
    }

    pub(crate) fn decode_states(
        &self,
        r: &mut SnapReader<'_>,
        n: usize,
    ) -> Result<Vec<S>, SnapshotError> {
        (0..n).map(|_| (self.decode)(r)).collect()
    }
}

/// The header-digest triple a run computes from its own builder
/// configuration, stamped into every snapshot it writes and checked
/// against every snapshot it resumes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapMeta {
    pub backend: u8,
    pub graph_fp: u64,
    pub protocol_id: u64,
    pub config_digest: u64,
}

impl SnapMeta {
    pub(crate) fn none() -> Self {
        SnapMeta {
            backend: 0,
            graph_fp: 0,
            protocol_id: 0,
            config_digest: 0,
        }
    }
}

/// The snapshot plumbing an execution engine receives from the builder:
/// checkpoint cadence, an optional snapshot to resume from, the state
/// codec, and the header digests. `every == 0` and `resume == None`
/// disable the whole layer.
pub(crate) struct SnapArgs<'a, S> {
    pub every: u64,
    pub resume: Option<&'a Snapshot>,
    pub codec: Option<StateCodec<S>>,
    pub meta: SnapMeta,
}

impl<S> Clone for SnapArgs<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for SnapArgs<'_, S> {}

impl<S> SnapArgs<'_, S> {
    pub(crate) fn none() -> Self {
        SnapArgs {
            every: 0,
            resume: None,
            codec: None,
            meta: SnapMeta::none(),
        }
    }

    pub(crate) fn codec(&self) -> StateCodec<S> {
        self.codec
            .expect("the builder supplies a codec whenever the snapshot layer is active")
    }
}

/// The boundary a resumed lockstep run continues from: the loop counters
/// a snapshot restores that live in the round loop rather than in the
/// engine state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResumePoint {
    pub round: u64,
    pub sent: u64,
    pub undecided: u64,
}

/// What a lockstep round loop needs from the snapshot layer: the
/// checkpoint cadence, the resume point (if any), the state codec, and
/// the header digests. Built by the executor entry points from
/// [`SnapArgs`] after the snapshot body has been decoded and spliced
/// into the engine.
pub(crate) struct SnapPlumb<S> {
    pub every: u64,
    pub resume: Option<ResumePoint>,
    pub codec: Option<StateCodec<S>>,
    pub meta: SnapMeta,
}

impl<S> SnapPlumb<S> {
    pub(crate) fn from_args(args: &SnapArgs<'_, S>, resume: Option<ResumePoint>) -> Self {
        SnapPlumb {
            every: args.every,
            resume,
            codec: args.codec,
            meta: args.meta,
        }
    }
}

// ---------------------------------------------------------------------------
// Lockstep (sync / scoped) body layout
// ---------------------------------------------------------------------------

/// Everything a lockstep engine hands the snapshot layer at a round
/// boundary.
pub(crate) struct LockstepCapture<'a, S> {
    pub round: u64,
    pub sent: u64,
    pub undecided: u64,
    pub planes: &'a PortPlanes,
    pub states: &'a [S],
    pub rngs: &'a [SmallRng],
    /// The scoped-delivery transcript so far (scoped backend only).
    pub witness: Option<&'a [ScopedDelivery]>,
    /// The churn event cursor (churn runs only).
    pub churn_next: Option<u64>,
    /// The fault-layer tally so far (faulted runs only).
    pub faults: Option<FaultSummary>,
}

/// Serializes a lockstep boundary into a [`Snapshot`].
pub(crate) fn encode_lockstep<S>(
    meta: SnapMeta,
    codec: &StateCodec<S>,
    cap: &LockstepCapture<'_, S>,
) -> Snapshot {
    let mut w = SnapWriter::new();
    let mut flags = 0u8;
    if cap.witness.is_some() {
        flags |= 1;
    }
    if cap.churn_next.is_some() {
        flags |= 2;
    }
    if cap.faults.is_some() {
        flags |= 4;
    }
    w.u8(flags);
    w.u64(cap.states.len() as u64);
    w.u64(cap.round);
    w.u64(cap.sent);
    w.u64(cap.undecided);
    w.u64(cap.planes.epoch());
    let letters = cap.planes.read().letters();
    w.u64(letters.len() as u64);
    for &l in letters {
        w.u16(l.0);
    }
    codec.encode_states(cap.states, &mut w);
    for rng in cap.rngs {
        for word in rng.state().words {
            w.u64(word);
        }
    }
    if let Some(wit) = cap.witness {
        w.u64(wit.len() as u64);
        for d in wit {
            w.u64(d.round);
            w.u32(d.from);
            w.u32(d.to);
            w.u16(d.letter.0);
        }
    }
    if let Some(next) = cap.churn_next {
        w.u64(next);
    }
    if let Some(f) = cap.faults {
        encode_fault_tally(&mut w, &f);
    }
    Snapshot::new(meta, cap.round, w.into_bytes())
}

/// Serializes a fault-layer tally (both body layouts share this shape).
fn encode_fault_tally(w: &mut SnapWriter, f: &FaultSummary) {
    w.u64(f.evaluated);
    w.u64(f.dropped);
    w.u64(f.duplicated);
    w.u64(f.corrupted);
}

/// Reads a fault-layer tally back.
fn decode_fault_tally(r: &mut SnapReader<'_>) -> Result<FaultSummary, SnapshotError> {
    Ok(FaultSummary {
        evaluated: r.u64()?,
        dropped: r.u64()?,
        duplicated: r.u64()?,
        corrupted: r.u64()?,
    })
}

/// A decoded lockstep boundary, ready to splice into a fresh engine.
pub(crate) struct LockstepResume<S> {
    pub round: u64,
    pub sent: u64,
    pub undecided: u64,
    pub epoch: u64,
    pub letters: Vec<Letter>,
    pub states: Vec<S>,
    pub rngs: Vec<SmallRng>,
    pub witness: Option<Vec<ScopedDelivery>>,
    pub churn_next: Option<u64>,
    pub faults: Option<FaultSummary>,
}

/// Decodes a lockstep snapshot body, validating the node and port-slot
/// counts against the run's graph.
pub(crate) fn decode_lockstep<S>(
    snap: &Snapshot,
    codec: &StateCodec<S>,
    n: usize,
    slots: usize,
) -> Result<LockstepResume<S>, ExecError> {
    decode_lockstep_inner(snap, codec, n, slots).map_err(ExecError::Snapshot)
}

fn decode_lockstep_inner<S>(
    snap: &Snapshot,
    codec: &StateCodec<S>,
    n: usize,
    slots: usize,
) -> Result<LockstepResume<S>, SnapshotError> {
    let mut r = SnapReader::new(snap.body(), "lockstep snapshot body");
    let flags = r.u8()?;
    if r.u64()? != n as u64 {
        return Err(SnapshotError::DigestMismatch {
            field: "node count",
        });
    }
    let round = r.u64()?;
    let sent = r.u64()?;
    let undecided = r.u64()?;
    let epoch = r.u64()?;
    if r.u64()? != slots as u64 {
        return Err(SnapshotError::DigestMismatch {
            field: "port slot count",
        });
    }
    let letters = (0..slots)
        .map(|_| Ok(Letter(r.u16()?)))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let states = codec.decode_states(&mut r, n)?;
    let rngs = (0..n)
        .map(|_| {
            let mut words = [0u64; 4];
            for word in &mut words {
                *word = r.u64()?;
            }
            Ok(SmallRng::from_state(SeedState { words }))
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let witness = if flags & 1 != 0 {
        let len = r.u64()? as usize;
        Some(
            (0..len)
                .map(|_| {
                    Ok(ScopedDelivery {
                        round: r.u64()?,
                        from: r.u32()?,
                        to: r.u32()?,
                        letter: Letter(r.u16()?),
                    })
                })
                .collect::<Result<Vec<_>, SnapshotError>>()?,
        )
    } else {
        None
    };
    let churn_next = if flags & 2 != 0 { Some(r.u64()?) } else { None };
    let faults = if flags & 4 != 0 {
        Some(decode_fault_tally(&mut r)?)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(SnapshotError::DigestMismatch {
            field: "trailing bytes",
        });
    }
    Ok(LockstepResume {
        round,
        sent,
        undecided,
        epoch,
        letters,
        states,
        rngs,
        witness,
        churn_next,
        faults,
    })
}

/// A decoded lockstep snapshot spliced into live engine parts: the
/// restored planes (letters + canonically recomputed counts + epoch),
/// states, RNG streams, optional witness transcript and churn cursor,
/// and the loop counters as a [`ResumePoint`].
pub(crate) struct LockstepSplice<S> {
    pub planes: PortPlanes,
    pub states: Vec<S>,
    pub rngs: Vec<SmallRng>,
    pub witness: Option<Vec<ScopedDelivery>>,
    pub churn_next: Option<u64>,
    pub faults: Option<FaultSummary>,
    pub point: ResumePoint,
}

/// Decodes and splices a lockstep snapshot against the run's graph — the
/// shared restore path of the sync and scoped executors (churn runs pass
/// the churn universe as `graph`).
pub(crate) fn resume_lockstep<S>(
    snap: &Snapshot,
    codec: &StateCodec<S>,
    graph: &Graph,
    sigma: usize,
) -> Result<LockstepSplice<S>, ExecError> {
    let res = decode_lockstep(snap, codec, graph.node_count(), graph.port_slot_count())?;
    Ok(LockstepSplice {
        planes: PortPlanes::from_parts(
            FlatPorts::from_letters(graph, sigma, res.letters),
            res.epoch,
        ),
        states: res.states,
        rngs: res.rngs,
        witness: res.witness,
        churn_next: res.churn_next,
        faults: res.faults,
        point: ResumePoint {
            round: res.round,
            sent: res.sent,
            undecided: res.undecided,
        },
    })
}

// ---------------------------------------------------------------------------
// Async body layout
// ---------------------------------------------------------------------------

/// One queued event of the async backlog, scheduler-agnostic: calendar
/// `DeliverRun` batches are expanded into their per-letter deliveries
/// (with their exact consecutive `seq` values) before capture, so a
/// snapshot's backlog bytes are identical whichever scheduler wrote them.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BacklogEvent {
    pub time: f64,
    pub seq: u64,
    pub kind: BacklogKind,
}

/// The payload of a [`BacklogEvent`]. `inc` carries the incarnation stamp
/// of churn runs; churn-free runs write and ignore zero.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BacklogKind {
    Step {
        node: u32,
        inc: u32,
    },
    Deliver {
        node: u32,
        slot: u32,
        letter: Letter,
        inc: u32,
    },
}

/// Everything the async engine hands the snapshot layer at a step
/// boundary.
pub(crate) struct AsyncCapture<'a, S> {
    pub total_steps: u64,
    pub events: u64,
    pub seq: u64,
    pub messages_sent: u64,
    pub deliveries: u64,
    pub lost_overwrites: u64,
    pub max_param: f64,
    pub unfinished: u64,
    pub states: &'a [S],
    pub letters: &'a [Letter],
    pub pending: &'a [bool],
    pub last_arrival: &'a [f64],
    pub step_counts: &'a [u64],
    pub rngs: &'a [SmallRng],
    /// Per-node incarnations and the churn event cursor (churn runs only).
    pub churn: Option<(&'a [u32], u64)>,
    /// The fault-layer tally so far (faulted runs only).
    pub faults: Option<FaultSummary>,
    /// The queued events, in any order; sorted by `(time, seq)` here.
    pub backlog: Vec<BacklogEvent>,
}

/// Serializes an async step boundary into a [`Snapshot`].
pub(crate) fn encode_async<S>(
    meta: SnapMeta,
    codec: &StateCodec<S>,
    mut cap: AsyncCapture<'_, S>,
) -> Snapshot {
    cap.backlog
        .sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
    let mut w = SnapWriter::new();
    let mut flags = if cap.churn.is_some() { 1u8 } else { 0 };
    if cap.faults.is_some() {
        flags |= 2;
    }
    w.u8(flags);
    w.u64(cap.states.len() as u64);
    w.u64(cap.total_steps);
    w.u64(cap.events);
    w.u64(cap.seq);
    w.u64(cap.messages_sent);
    w.u64(cap.deliveries);
    w.u64(cap.lost_overwrites);
    w.f64(cap.max_param);
    w.u64(cap.unfinished);
    codec.encode_states(cap.states, &mut w);
    w.u64(cap.letters.len() as u64);
    for &l in cap.letters {
        w.u16(l.0);
    }
    for &p in cap.pending {
        w.bool(p);
    }
    for &a in cap.last_arrival {
        w.f64(a);
    }
    for &t in cap.step_counts {
        w.u64(t);
    }
    for rng in cap.rngs {
        for word in rng.state().words {
            w.u64(word);
        }
    }
    if let Some((incarnation, next)) = cap.churn {
        for &i in incarnation {
            w.u32(i);
        }
        w.u64(next);
    }
    if let Some(f) = cap.faults {
        encode_fault_tally(&mut w, &f);
    }
    w.u64(cap.backlog.len() as u64);
    for e in &cap.backlog {
        w.f64(e.time);
        w.u64(e.seq);
        match e.kind {
            BacklogKind::Step { node, inc } => {
                w.u8(0);
                w.u32(node);
                w.u32(inc);
            }
            BacklogKind::Deliver {
                node,
                slot,
                letter,
                inc,
            } => {
                w.u8(1);
                w.u32(node);
                w.u32(slot);
                w.u16(letter.0);
                w.u32(inc);
            }
        }
    }
    Snapshot::new(meta, cap.total_steps, w.into_bytes())
}

/// A decoded async step boundary, ready to splice into a fresh engine.
pub(crate) struct AsyncResume<S> {
    pub total_steps: u64,
    pub events: u64,
    pub seq: u64,
    pub messages_sent: u64,
    pub deliveries: u64,
    pub lost_overwrites: u64,
    pub max_param: f64,
    pub unfinished: u64,
    pub states: Vec<S>,
    pub letters: Vec<Letter>,
    pub pending: Vec<bool>,
    pub last_arrival: Vec<f64>,
    pub step_counts: Vec<u64>,
    pub rngs: Vec<SmallRng>,
    pub churn: Option<(Vec<u32>, u64)>,
    pub faults: Option<FaultSummary>,
    pub backlog: Vec<BacklogEvent>,
}

/// Decodes an async snapshot body, validating the node and port-slot
/// counts against the run's graph.
pub(crate) fn decode_async<S>(
    snap: &Snapshot,
    codec: &StateCodec<S>,
    n: usize,
    slots: usize,
) -> Result<AsyncResume<S>, ExecError> {
    decode_async_inner(snap, codec, n, slots).map_err(ExecError::Snapshot)
}

fn decode_async_inner<S>(
    snap: &Snapshot,
    codec: &StateCodec<S>,
    n: usize,
    slots: usize,
) -> Result<AsyncResume<S>, SnapshotError> {
    let mut r = SnapReader::new(snap.body(), "async snapshot body");
    let flags = r.u8()?;
    if r.u64()? != n as u64 {
        return Err(SnapshotError::DigestMismatch {
            field: "node count",
        });
    }
    let total_steps = r.u64()?;
    let events = r.u64()?;
    let seq = r.u64()?;
    let messages_sent = r.u64()?;
    let deliveries = r.u64()?;
    let lost_overwrites = r.u64()?;
    let max_param = r.f64()?;
    let unfinished = r.u64()?;
    let states = codec.decode_states(&mut r, n)?;
    if r.u64()? != slots as u64 {
        return Err(SnapshotError::DigestMismatch {
            field: "port slot count",
        });
    }
    let letters = (0..slots)
        .map(|_| Ok(Letter(r.u16()?)))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let pending = (0..slots)
        .map(|_| r.bool())
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let last_arrival = (0..slots)
        .map(|_| r.f64())
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let step_counts = (0..n)
        .map(|_| r.u64())
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let rngs = (0..n)
        .map(|_| {
            let mut words = [0u64; 4];
            for word in &mut words {
                *word = r.u64()?;
            }
            Ok(SmallRng::from_state(SeedState { words }))
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let churn = if flags & 1 != 0 {
        let incarnation = (0..n)
            .map(|_| r.u32())
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Some((incarnation, r.u64()?))
    } else {
        None
    };
    let faults = if flags & 2 != 0 {
        Some(decode_fault_tally(&mut r)?)
    } else {
        None
    };
    let backlog_len = r.u64()? as usize;
    let backlog = (0..backlog_len)
        .map(|_| {
            let time = r.f64()?;
            let seq = r.u64()?;
            let kind = match r.u8()? {
                0 => BacklogKind::Step {
                    node: r.u32()?,
                    inc: r.u32()?,
                },
                1 => BacklogKind::Deliver {
                    node: r.u32()?,
                    slot: r.u32()?,
                    letter: Letter(r.u16()?),
                    inc: r.u32()?,
                },
                _ => {
                    return Err(SnapshotError::DigestMismatch {
                        field: "backlog event tag",
                    })
                }
            };
            Ok(BacklogEvent { time, seq, kind })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    if r.remaining() != 0 {
        return Err(SnapshotError::DigestMismatch {
            field: "trailing bytes",
        });
    }
    Ok(AsyncResume {
        total_steps,
        events,
        seq,
        messages_sent,
        deliveries,
        lost_overwrites,
        max_param,
        unfinished,
        states,
        letters,
        pending,
        last_arrival,
        step_counts,
        rngs,
        churn,
        faults,
        backlog,
    })
}

/// A failure while persisting or loading a snapshot file.
///
/// Splits the two layers a file round-trip can fail in: the filesystem
/// ([`PersistError::Io`]) and the wire frame itself
/// ([`PersistError::Format`] — bad magic, truncation from a torn write,
/// checksum mismatch, version skew).
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The bytes on disk are not a valid snapshot frame.
    Format(SnapshotError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot file io: {e}"),
            PersistError::Format(e) => write!(f, "snapshot file format: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Format(e)
    }
}

/// Atomically persists `snapshot` at `path`.
///
/// The frame is written to a sibling `<path>.tmp` file, flushed with
/// `sync_all`, **read back and re-parsed** (so a torn or bit-flipped
/// write is caught before it can shadow a good snapshot), and only then
/// renamed over `path`. Readers therefore never observe a partial file:
/// they see either the previous snapshot or the new one.
pub fn write_snapshot_file(
    path: &std::path::Path,
    snapshot: &Snapshot,
) -> Result<(), PersistError> {
    use std::io::Write as _;

    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let bytes = snapshot.to_bytes();
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    // Read-back validation: the frame's trailing checksum covers every
    // header field and the body, so a successful parse proves the bytes
    // that hit the disk are the bytes we meant to write.
    let back = std::fs::read(&tmp)?;
    if let Err(e) = Snapshot::from_bytes(&back) {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Format(e));
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and validates a snapshot frame persisted by
/// [`write_snapshot_file`] (or any dump of [`Snapshot::to_bytes`]).
///
/// Torn writes and partial files surface as
/// [`PersistError::Format`]`(`[`SnapshotError::Truncated`]` | `
/// [`SnapshotError::DigestMismatch`]`)` rather than a corrupt resume.
pub fn read_snapshot_file(path: &std::path::Path) -> Result<Snapshot, PersistError> {
    let bytes = std::fs::read(path)?;
    Ok(Snapshot::from_bytes(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(
            SnapMeta {
                backend: BACKEND_SYNC,
                graph_fp: 0x1122_3344_5566_7788,
                protocol_id: 0x99aa_bbcc_ddee_ff00,
                config_digest: 0x0123_4567_89ab_cdef,
            },
            42,
            vec![1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let snap = sample();
        let bytes = snap.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::DigestMismatch { field: "magic" })
        );
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 0xEE;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::VersionMismatch { found, .. }) if found != SNAPSHOT_VERSION
        ));
        // Truncated frame.
        assert_eq!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated {
                context: "snapshot body"
            })
        );
        assert_eq!(
            Snapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::Truncated {
                context: "snapshot header"
            })
        );
        // Flipped body byte fails the checksum.
        let mut bad = bytes.clone();
        let body_at = bytes.len() - 8 - 3;
        bad[body_at] ^= 0x40;
        assert_eq!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::DigestMismatch { field: "checksum" })
        );
    }

    #[test]
    fn graph_fingerprint_distinguishes_graphs() {
        use stoneage_graph::generators;
        let a = graph_fingerprint(&generators::cycle(8));
        let b = graph_fingerprint(&generators::cycle(9));
        let c = graph_fingerprint(&generators::path(8));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, graph_fingerprint(&generators::cycle(8)));
    }

    #[test]
    fn sync_state_codec_round_trips() {
        use stoneage_core::sync::{Scan, SyncState};
        let states: Vec<SyncState<u16>> = vec![
            SyncState::Pause {
                inner: 7,
                retained: Some(Letter(3)),
                trit: 2,
                check: 513,
            },
            SyncState::Sim {
                inner: 9,
                retained: None,
                trit: 0,
                scan: Scan::Phi2,
                idx: 40,
                acc: 3,
                phi1: 1,
                phi2: 2,
            },
        ];
        let codec = StateCodec::<SyncState<u16>>::auto();
        let mut w = SnapWriter::new();
        codec.encode_states(&states, &mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, "test");
        let back = codec.decode_states(&mut r, states.len()).unwrap();
        assert_eq!(back, states);
        assert_eq!(r.remaining(), 0);
    }

    /// A unique scratch directory per test, cleaned up on drop.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("stoneage-snap-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn file_round_trip_is_identity() {
        let scratch = Scratch::new("roundtrip");
        let path = scratch.path("latest.snap");
        let snap = sample();
        write_snapshot_file(&path, &snap).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), snap);
        // No .tmp residue after a successful write.
        assert!(!scratch.path("latest.snap.tmp").exists());
    }

    #[test]
    fn overwrite_is_atomic_and_keeps_the_newer_frame() {
        let scratch = Scratch::new("overwrite");
        let path = scratch.path("latest.snap");
        let older = sample();
        write_snapshot_file(&path, &older).unwrap();
        let newer = Snapshot::new(
            SnapMeta {
                backend: BACKEND_SYNC,
                graph_fp: 1,
                protocol_id: 2,
                config_digest: 3,
            },
            43,
            vec![9, 9, 9],
        );
        write_snapshot_file(&path, &newer).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), newer);
    }

    #[test]
    fn torn_write_is_rejected_on_read() {
        let scratch = Scratch::new("torn");
        let path = scratch.path("latest.snap");
        let snap = sample();
        write_snapshot_file(&path, &snap).unwrap();
        // Simulate a torn write: truncate the file mid-body.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match read_snapshot_file(&path) {
            Err(PersistError::Format(SnapshotError::Truncated { .. })) => {}
            other => panic!("torn file must reject as Truncated, got {other:?}"),
        }
    }

    #[test]
    fn partial_and_corrupt_files_are_rejected_on_read() {
        let scratch = Scratch::new("corrupt");
        let empty = scratch.path("empty.snap");
        std::fs::write(&empty, []).unwrap();
        assert!(matches!(
            read_snapshot_file(&empty),
            Err(PersistError::Format(SnapshotError::Truncated { .. }))
        ));

        let flipped = scratch.path("flipped.snap");
        let snap = sample();
        write_snapshot_file(&flipped, &snap).unwrap();
        let mut bytes = std::fs::read(&flipped).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x01;
        std::fs::write(&flipped, &bytes).unwrap();
        assert!(matches!(
            read_snapshot_file(&flipped),
            Err(PersistError::Format(SnapshotError::DigestMismatch { .. }))
        ));

        let missing = scratch.path("missing.snap");
        assert!(matches!(
            read_snapshot_file(&missing),
            Err(PersistError::Io(_))
        ));
    }
}
