//! The shared **round pipeline** of the lockstep executors.
//!
//! Before this module, the synchronous and scoped executors each carried
//! two hand-rolled transcriptions of the same round loop (serial and
//! parallel — four loops total), and every scheduling improvement had to
//! be made four times. The pipeline extracts the loop once, parameterized
//! over the two things that actually differ:
//!
//! * **the per-node step** — how a node transitions and how its emission
//!   resolves into deliveries (a broadcast for `MultiFsm`, the
//!   port-select draw plus witness record for
//!   [`crate::scoped::ScopedMultiFsm`]); and
//! * **the delivery strategy** — where resolved writes land: a serial
//!   replay buffer, or the per-worker destination-sharded
//!   [`crate::parbuf::DeliveryBuffer`]s merged under the policy's
//!   [`crate::parbuf::MergeStrategy`].
//!
//! Every path executes on the epoch-split [`PortPlanes`] store: phase 1
//! of round *r* observes the frozen read plane, phase-2 deliveries land
//! on the write plane, and the plane swap at the round boundary is a
//! pure epoch flip (see the [`crate::engine`] docs for the no-copy
//! argument).
//!
//! # One join per round: the fused schedule
//!
//! The parallel pipeline runs in one of two modes
//! ([`crate::parbuf::RoundMode`]):
//!
//! * **Joined** — the historical schedule: one worker scope for
//!   phase 1 + 2a, a join, then the phase-2b merge (itself a second
//!   scope under the destination-sharded strategy). Two joins per round.
//! * **Fused** — phase 2b of round *r* is deferred into the worker scope
//!   of round *r + 1*: each worker takes the
//!   [`crate::engine::PlaneShard`] for its own node range, first lands
//!   every buffer's bucket destined to that shard (the write plane of
//!   the previous epoch), freezes the shard into the read plane, and
//!   runs phase 1 + 2a of the new round against it. **Exactly one scope
//!   join per round.**
//!
//! Fused is bit-identical to Joined (and hence to the serial engines)
//! because nothing observable moves:
//!
//! * a node's observation reads only its own count row and CSR slots,
//!   both inside the worker's own shard — which that worker brought up
//!   to date before its first read, so every phase-1 observation of
//!   round *r* sees exactly the end-of-round-*r − 1* store;
//! * scoped target draws read only the sender's own ports (same shard)
//!   and consume the sender's private RNG stream in the same
//!   transition-then-target order;
//! * the deferred buckets replay in fixed worker order per shard, the
//!   same order the joined merge uses, and per-round slot uniqueness +
//!   commutative counts make the landed bytes order-independent anyway
//!   (the [`crate::parbuf`] argument);
//! * rounds end on the same undecided-counter zero crossing, and a
//!   terminal round's unlanded buffers are discarded in both modes
//!   (the store is dead once outputs are collected).
//!
//! The differential matrices in `tests/flat_engine.rs` and
//! `tests/scoped_parallel.rs` pin `Fused ≡ Joined ≡ serial` across
//! worker counts, merge strategies, and graph families, and the pinned
//! fingerprint constants are unchanged from their pre-pipeline values.
//!
//! # Who runs a chunk: the work-stealing schedule
//!
//! Orthogonal to the round mode, [`crate::parbuf::ChunkScheduler`]
//! picks how phase 1 + 2a is dealt to workers. `Static` hands each
//! worker its own [`crate::parbuf::ShardPlan`] chunk — zero scheduling
//! cost, but a hub-heavy chunk serializes the round. `Stealing` cuts
//! each shard into [`crate::parbuf::ChunkPlan`] descriptors seeded onto
//! the owning worker's deque (shard-to-worker pinning: a worker starts
//! on exactly the senders whose phase-2b shard it lands under the fused
//! schedule), pops its own deque front-first, and when dry steals from
//! the back of the longest other deque.
//!
//! Stealing is bit-identical to the static schedule because the round's
//! data flow is schedule-free (the [`crate::parbuf`] module docs give
//! the full argument): every node reads only the frozen plane and its
//! private RNG, every write is bucketed by *destination* shard in
//! whichever worker's buffer resolved it, and both merges replay
//! buckets in an order independent of who filled them. The one
//! schedule-dependent artifact — the order scoped witnesses are
//! recorded in — is repaired after the join: each chunk records into
//! its own witness, and the chunk witnesses are absorbed in ascending
//! chunk index (= ascending sender order, the serial transcript).
//! Under [`RoundMode::Fused`] the per-worker plane shards live behind
//! `RwLock`s: each worker write-locks its own shard to land + freeze
//! it, a barrier separates landing from observation, and tasks then
//! read-lock the (frozen) shard their senders live in — a task only
//! ever reads its own shard, so the locks never contend with writers.
//!
//! # Scratch reuse
//!
//! All per-round scratch lives for the whole run and is cleared, not
//! reallocated: the serial write buffer, the per-worker
//! [`crate::parbuf::DeliveryBuffer`]s, the per-worker [`ObsVec`]s
//! (previously rebuilt every round inside the worker closures), and the
//! per-worker witness vectors (drained into the run-level witness each
//! round).

use rand::rngs::SmallRng;
use stoneage_core::{Letter, ObsVec};
use stoneage_graph::{Graph, NodeId};

use crate::engine::{FlatPorts, PlaneShard, PortPlanes};
#[cfg(feature = "parallel")]
use crate::faults::FaultSink;
use crate::faults::{FaultLayer, FaultSummary};
#[cfg(feature = "parallel")]
use crate::parbuf::{
    self, ChunkPlan, ChunkScheduler, DeliveryBuffer, ParallelPolicy, RoundMode, ShardPlan,
    StealStats,
};
use crate::scoped::ScopedDelivery;
use crate::snapshot::{encode_lockstep, LockstepCapture, SnapPlumb};
use crate::sync_exec::SyncObserver;

/// Read access to a frozen plane: the observation surface phase 1 and
/// the scoped target draws run against. Implemented by the whole-store
/// read plane ([`FlatPorts`]) and by a worker's own frozen
/// [`PlaneShard`].
pub(crate) trait PortRead {
    /// Refills `obs` with `f_b` of node `v`'s exact per-letter counts.
    fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8);
    /// The exact count of `letter` over `v`'s ports.
    fn count(&self, v: usize, letter: Letter) -> u32;
    /// Node `v`'s ports as a slice.
    fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter];
}

impl PortRead for FlatPorts {
    #[inline]
    fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8) {
        FlatPorts::refill_obs(self, v, obs, b)
    }
    #[inline]
    fn count(&self, v: usize, letter: Letter) -> u32 {
        FlatPorts::count(self, v, letter)
    }
    #[inline]
    fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        FlatPorts::ports_of(self, graph, v)
    }
}

impl PortRead for PlaneShard<'_> {
    #[inline]
    fn refill_obs(&self, v: usize, obs: &mut ObsVec, b: u8) {
        PlaneShard::refill_obs(self, v, obs, b)
    }
    #[inline]
    fn count(&self, v: usize, letter: Letter) -> u32 {
        PlaneShard::count(self, v, letter)
    }
    #[inline]
    fn ports_of(&self, graph: &Graph, v: NodeId) -> &[Letter] {
        PlaneShard::ports_of(self, graph, v)
    }
}

/// Where phase-2a resolution lands its writes. Deliveries must never
/// touch the port store directly — they are applied (or merged) only
/// after every node of the round has observed and resolved against the
/// frozen read plane.
pub(crate) trait DeliverySink {
    /// Buffers the full broadcast of `letter` from `v` through the
    /// reverse-port map, counting one non-`ε` transmission.
    fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter);
    /// Buffers a single delivery to `u` at absolute flat `slot`.
    fn send_one(&mut self, u: NodeId, slot: usize, letter: Letter);
    /// Counts one non-`ε` transmission without buffering any delivery —
    /// the fault layer decomposes a covered broadcast into per-port
    /// [`DeliverySink::send_one`] decisions but the transmission itself
    /// still happened (the fault is on the channel, not the sender).
    fn note_sent(&mut self);
}

/// The serial delivery strategy: one flat `(receiver, slot, letter)`
/// buffer replayed onto the write plane at the end of the round
/// ([`PortPlanes::land_serial`]). Cleared and reused across rounds.
#[derive(Default)]
pub(crate) struct SerialWrites {
    pub(crate) writes: Vec<(u32, u32, Letter)>,
    pub(crate) sent: u64,
}

impl SerialWrites {
    pub(crate) fn begin_round(&mut self) {
        self.writes.clear();
        self.sent = 0;
    }
}

impl DeliverySink for SerialWrites {
    #[inline]
    fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter) {
        self.sent += 1;
        let nbrs = graph.neighbors(v);
        let rev = graph.reverse_ports(v);
        for (&u, &rp) in nbrs.iter().zip(rev) {
            self.writes
                .push((u, (graph.csr_offset(u) + rp as usize) as u32, letter));
        }
    }
    #[inline]
    fn send_one(&mut self, u: NodeId, slot: usize, letter: Letter) {
        self.writes.push((u, slot as u32, letter));
    }
    #[inline]
    fn note_sent(&mut self) {
        self.sent += 1;
    }
}

/// The parallel delivery strategy: a worker-private [`DeliveryBuffer`]
/// bucketed by destination shard.
#[cfg(feature = "parallel")]
pub(crate) struct ShardedSink<'a> {
    pub(crate) buffer: &'a mut DeliveryBuffer,
    pub(crate) plan: &'a ShardPlan,
}

#[cfg(feature = "parallel")]
impl DeliverySink for ShardedSink<'_> {
    #[inline]
    fn broadcast(&mut self, graph: &Graph, v: NodeId, letter: Letter) {
        self.buffer.broadcast(graph, self.plan, v, letter);
    }
    #[inline]
    fn send_one(&mut self, u: NodeId, slot: usize, letter: Letter) {
        self.buffer.push(self.plan, u, slot, letter);
    }
    #[inline]
    fn note_sent(&mut self) {
        self.buffer.sent += 1;
    }
}

/// The per-protocol half of the pipeline: how one node transitions and
/// how its emission resolves into deliveries. One implementation per
/// lockstep transition flavor (`MultiFsm` in `sync_exec`,
/// `ScopedMultiFsm` in `scoped`); the pipeline supplies the loop, the
/// scheduling, and the undecided-counter bookkeeping around it.
pub(crate) trait RoundStep {
    /// Per-node protocol state.
    type State: Clone;
    /// What phase 1 records for phase-2a resolution.
    type Emission: Copy;
    /// Run-level extra output accumulated in sender order (the scoped
    /// delivery transcript; `()` for plain sync).
    type Witness: Default;

    /// The observation bound `b` of the protocol.
    fn bound(&self) -> u8;
    /// Whether `q` is an output state (drives the undecided counter).
    fn decided(&self, q: &Self::State) -> bool;
    /// The state a crashed node is reborn into when a churn plan
    /// restarts it (delegates to `Protocol::restart_state`; only the
    /// churn drivers call this).
    fn restart_state(&self, input: usize) -> Self::State;
    /// Phase 1 of one node: transition from the frozen observation,
    /// consuming the node's RNG stream exactly as the legacy engines
    /// did.
    fn transition(
        &self,
        q: &Self::State,
        obs: &ObsVec,
        rng: &mut SmallRng,
    ) -> (Self::State, Self::Emission);
    /// Phase 2a of one node: resolve the emission against the frozen
    /// plane into `sink` (and `witness`), consuming any target draws
    /// from the node's own RNG stream.
    #[allow(clippy::too_many_arguments)]
    fn resolve<Pr: PortRead, Sk: DeliverySink>(
        &self,
        round: u64,
        v: NodeId,
        emission: Self::Emission,
        graph: &Graph,
        ports: &Pr,
        rng: &mut SmallRng,
        sink: &mut Sk,
        witness: &mut Self::Witness,
    );
    /// Drains `from` (one worker's per-round witness) into `into` — the
    /// round-major, worker-order concatenation that reproduces the
    /// serial witness order. (Only the parallel schedules split the
    /// witness per worker; the serial pipeline writes into the run-level
    /// witness directly.)
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    fn absorb(into: &mut Self::Witness, from: &mut Self::Witness);
    /// The scoped-delivery transcript inside `witness`, if this flavor
    /// records one — serialized into boundary snapshots and restored on
    /// resume (`None` for plain sync, whose witness is `()`).
    fn witness_slice(witness: &Self::Witness) -> Option<&[ScopedDelivery]>;
}

/// Why a pipeline run ended.
pub(crate) enum RoundEnd {
    /// Every node reached an output state after `rounds` rounds.
    Done {
        /// Rounds until the first output configuration.
        rounds: u64,
        /// Total non-`ε` transmissions.
        sent: u64,
    },
    /// The round budget ran out with `unfinished` nodes undecided.
    Limit {
        /// The configured budget.
        limit: u64,
        /// Nodes not yet in an output state.
        unfinished: usize,
    },
}

/// Emits a boundary checkpoint to the observer when the plumbing's
/// cadence lands on `round`. Called by every lockstep schedule after the
/// round has fully committed — deliveries landed, epoch flipped, witness
/// absorbed, `on_round_end` delivered — and only when the run continues:
/// a terminal round is never checkpointed (the run is over; there is
/// nothing to resume).
#[allow(clippy::too_many_arguments)]
pub(crate) fn boundary_checkpoint<St, O>(
    plumb: &SnapPlumb<St::State>,
    round: u64,
    sent: u64,
    undecided: isize,
    planes: &PortPlanes,
    states: &[St::State],
    rngs: &[SmallRng],
    witness: &St::Witness,
    churn_next: Option<u64>,
    faults: Option<FaultSummary>,
    observer: &mut O,
) where
    St: RoundStep,
    O: SyncObserver<St::State>,
{
    if plumb.every == 0 || !round.is_multiple_of(plumb.every) {
        return;
    }
    let codec = plumb
        .codec
        .expect("active snapshot plumbing always carries a codec");
    let snap = encode_lockstep(
        plumb.meta,
        &codec,
        &LockstepCapture {
            round,
            sent,
            undecided: undecided as u64,
            planes,
            states,
            rngs,
            witness: St::witness_slice(witness),
            churn_next,
            faults,
        },
    );
    observer.on_checkpoint(&snap);
}

/// Phase 1 + 2a of one node against a frozen plane; returns the
/// undecided-counter delta. The single transcription of the per-node
/// round semantics — every schedule (serial, joined, fused) runs this.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn node_round<St: RoundStep, Pr: PortRead, Sk: DeliverySink>(
    step: &St,
    graph: &Graph,
    ports: &Pr,
    round: u64,
    v: usize,
    state: &mut St::State,
    rng: &mut SmallRng,
    obs: &mut ObsVec,
    sink: &mut Sk,
    witness: &mut St::Witness,
) -> isize {
    ports.refill_obs(v, obs, step.bound());
    let (next, emission) = step.transition(state, obs, rng);
    let delta = match (step.decided(state), step.decided(&next)) {
        (false, true) => -1,
        (true, false) => 1,
        _ => 0,
    };
    *state = next;
    step.resolve(
        round,
        v as NodeId,
        emission,
        graph,
        ports,
        rng,
        sink,
        witness,
    );
    delta
}

/// The serial round pipeline: one pass per round over all nodes
/// (phase 1 + 2a fused per node — bit-identical to the legacy two-pass
/// loops because every port read hits the frozen read plane and each
/// node's RNG stream is private), then the buffered writes land on the
/// write plane and the epoch flips.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_serial<St, O>(
    step: &St,
    graph: &Graph,
    planes: &mut PortPlanes,
    states: &mut [St::State],
    rngs: &mut [SmallRng],
    max_rounds: u64,
    observer: &mut O,
    witness: &mut St::Witness,
    plumb: &SnapPlumb<St::State>,
    faults: &mut FaultLayer<'_>,
) -> RoundEnd
where
    St: RoundStep,
    O: SyncObserver<St::State>,
{
    let n = states.len();
    let (start, mut sent, mut undecided) = match &plumb.resume {
        Some(r) => (r.round, r.sent, r.undecided as isize),
        None => (
            0,
            0,
            states.iter().filter(|q| !step.decided(q)).count() as isize,
        ),
    };
    if plumb.resume.is_none() && undecided == 0 {
        return RoundEnd::Done { rounds: 0, sent };
    }
    let mut obs = ObsVec::zeroed(planes.sigma());
    let mut sink = SerialWrites::default();
    for round in start + 1..=max_rounds {
        sink.begin_round();
        {
            let ports = planes.read();
            let mut fsink = faults.sink(&mut sink, round);
            for v in 0..n {
                undecided += node_round(
                    step,
                    graph,
                    ports,
                    round,
                    v,
                    &mut states[v],
                    &mut rngs[v],
                    &mut obs,
                    &mut fsink,
                    witness,
                );
            }
        }
        sent += sink.sent;
        planes.land_serial(&sink.writes);
        observer.on_round_end(round, states);
        if undecided == 0 {
            return RoundEnd::Done {
                rounds: round,
                sent,
            };
        }
        boundary_checkpoint::<St, _>(
            plumb,
            round,
            sent,
            undecided,
            planes,
            states,
            rngs,
            witness,
            None,
            faults.capture(),
            observer,
        );
    }
    RoundEnd::Limit {
        limit: max_rounds,
        unfinished: undecided as usize,
    }
}

/// One unit of stealable phase-1+2a work: a [`ChunkPlan`] descriptor
/// bundled with the disjoint `&mut` windows of the state and RNG arrays
/// it owns. Built fresh each round (the borrows last one scope) and
/// moved between deques; the *data* never moves.
#[cfg(feature = "parallel")]
pub(crate) struct StealTask<'a, S> {
    /// Position in the [`ChunkPlan`] — ascending node order, the key
    /// per-chunk witnesses are re-sorted by after the join.
    pub(crate) index: usize,
    /// First node of the chunk.
    pub(crate) base: usize,
    /// The shard whose deque the task was seeded onto (under the fused
    /// schedule, also the plane shard its senders read).
    pub(crate) shard: usize,
    pub(crate) states: &'a mut [S],
    pub(crate) rngs: &'a mut [SmallRng],
}

/// Deals one [`StealTask`] per chunk onto the owning worker's deque, in
/// ascending node order (so a worker drains its own shard front-to-back
/// — the cache-friendly direction — while thieves take from the back).
#[cfg(feature = "parallel")]
pub(crate) fn seed_deques<'a, S>(
    chunks: &ChunkPlan,
    workers: usize,
    mut states: &'a mut [S],
    mut rngs: &'a mut [SmallRng],
) -> Vec<std::sync::Mutex<std::collections::VecDeque<StealTask<'a, S>>>> {
    let mut deques: Vec<std::collections::VecDeque<StealTask<'a, S>>> = (0..workers)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    for (index, c) in chunks.chunks().iter().enumerate() {
        let (state_c, state_rest) = states.split_at_mut(c.end - c.start);
        let (rng_c, rng_rest) = rngs.split_at_mut(c.end - c.start);
        states = state_rest;
        rngs = rng_rest;
        deques[c.shard].push_back(StealTask {
            index,
            base: c.start,
            shard: c.shard,
            states: state_c,
            rngs: rng_c,
        });
    }
    deques.into_iter().map(std::sync::Mutex::new).collect()
}

/// Worker `w`'s next task: the front of its own deque, or — when dry —
/// the back of the currently longest other deque (`true` marks a
/// steal). Returns `None` once every deque is empty; a lost race with
/// another thief just rescans.
#[cfg(feature = "parallel")]
pub(crate) fn next_task<'a, S>(
    w: usize,
    deques: &[std::sync::Mutex<std::collections::VecDeque<StealTask<'a, S>>>],
) -> Option<(StealTask<'a, S>, bool)> {
    if let Some(t) = deques[w].lock().unwrap().pop_front() {
        return Some((t, false));
    }
    loop {
        let mut best: Option<(usize, usize)> = None;
        for (i, d) in deques.iter().enumerate() {
            if i == w {
                continue;
            }
            let len = d.lock().unwrap().len();
            if len > 0 && best.is_none_or(|(blen, _)| len > blen) {
                best = Some((len, i));
            }
        }
        let (_, victim) = best?;
        if let Some(t) = deques[victim].lock().unwrap().pop_back() {
            return Some((t, true));
        }
    }
}

/// What one stealing worker hands back at the join: its undecided
/// delta, fault tally, per-chunk witnesses (keyed by chunk index for
/// the post-join re-sort), and its steal/chunk counters.
#[cfg(feature = "parallel")]
pub(crate) type StealYield<W> = (isize, FaultSummary, Vec<(usize, W)>, u64, u64);

/// Folds the per-worker [`StealYield`]s into the run accumulators:
/// undecided delta, fault summaries, steal counters, and — the one
/// schedule-dependent artifact stealing creates — the per-chunk
/// witnesses, re-sorted to ascending chunk index (= ascending sender
/// order, the serial transcript) before absorption.
#[cfg(feature = "parallel")]
pub(crate) fn absorb_steal_yields<St: RoundStep>(
    results: Vec<StealYield<St::Witness>>,
    undecided: &mut isize,
    faults: &mut FaultLayer<'_>,
    witness: &mut St::Witness,
    steals: &mut StealStats,
) {
    let mut pairs = Vec::new();
    for (delta, tally, wits, nsteals, nchunks) in results {
        *undecided += delta;
        faults.absorb(&tally);
        steals.steals += nsteals;
        steals.chunks += nchunks;
        pairs.extend(wits);
    }
    pairs.sort_unstable_by_key(|&(i, _)| i);
    for (_, mut w) in pairs {
        St::absorb(witness, &mut w);
    }
}

/// The parallel round pipeline, scheduled per the policy's resolved
/// [`RoundMode`]: `Joined` (phase 1 + 2a scope, join, phase-2b merge —
/// two joins per round) or `Fused` (previous round's phase 2b landed on
/// per-worker plane shards inside the next round's scope — one join per
/// round) — each crossed with the resolved [`ChunkScheduler`] (static
/// shard chunks or work-stealing deques). Bit-identical to
/// [`run_serial`] for every seed, worker count, merge strategy, round
/// mode, and scheduler; only the [`StealStats`] out-param is
/// timing-dependent.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel<St, O>(
    step: &St,
    graph: &Graph,
    planes: &mut PortPlanes,
    states: &mut [St::State],
    rngs: &mut [SmallRng],
    policy: &ParallelPolicy,
    max_rounds: u64,
    observer: &mut O,
    witness: &mut St::Witness,
    plumb: &SnapPlumb<St::State>,
    faults: &mut FaultLayer<'_>,
    steals: &mut StealStats,
) -> RoundEnd
where
    St: RoundStep + Sync,
    St::State: Send + Sync,
    St::Witness: Send,
    O: SyncObserver<St::State>,
{
    let (start, mut sent, mut undecided) = match &plumb.resume {
        Some(r) => (r.round, r.sent, r.undecided as isize),
        None => (
            0,
            0,
            states.iter().filter(|q| !step.decided(q)).count() as isize,
        ),
    };
    if plumb.resume.is_none() && undecided == 0 {
        return RoundEnd::Done { rounds: 0, sent };
    }
    let sigma = planes.sigma();
    let plan = ShardPlan::new(graph, policy.resolve_workers());
    let workers = plan.workers();
    // Per-worker scratch, hoisted out of the round loop: cleared and
    // reused across rounds instead of reallocated.
    let mut buffers: Vec<DeliveryBuffer> =
        (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
    let mut obs: Vec<ObsVec> = (0..workers).map(|_| ObsVec::zeroed(sigma)).collect();
    let mut witnesses: Vec<St::Witness> = (0..workers).map(|_| St::Witness::default()).collect();

    match (policy.resolve_round(), policy.resolve_scheduler()) {
        (RoundMode::Joined, ChunkScheduler::Stealing) => {
            let chunks = ChunkPlan::new(graph, &plan);
            for round in start + 1..=max_rounds {
                let ports = planes.read();
                let fctx = faults.ctx;
                let results: Vec<StealYield<St::Witness>> = {
                    let deques = seed_deques(&chunks, workers, &mut *states, &mut *rngs);
                    let deques = &deques;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = buffers
                            .iter_mut()
                            .zip(obs.iter_mut())
                            .enumerate()
                            .map(|(w, (buffer, obs))| {
                                let plan = &plan;
                                scope.spawn(move || {
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    let mut wits = Vec::new();
                                    let (mut nsteals, mut nchunks) = (0u64, 0u64);
                                    while let Some((task, stolen)) = next_task(w, deques) {
                                        nchunks += 1;
                                        nsteals += stolen as u64;
                                        let StealTask {
                                            index,
                                            base,
                                            states: state_c,
                                            rngs: rng_c,
                                            ..
                                        } = task;
                                        let mut wit = St::Witness::default();
                                        for i in 0..state_c.len() {
                                            delta += node_round(
                                                step,
                                                graph,
                                                ports,
                                                round,
                                                base + i,
                                                &mut state_c[i],
                                                &mut rng_c[i],
                                                obs,
                                                &mut fsink,
                                                &mut wit,
                                            );
                                        }
                                        wits.push((index, wit));
                                    }
                                    (delta, ftally, wits, nsteals, nchunks)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                absorb_steal_yields::<St>(results, &mut undecided, faults, witness, steals);
                sent += buffers.iter().map(|b| b.sent).sum::<u64>();
                parbuf::merge(policy.merge, planes.write(), graph, &plan, &buffers);
                planes.advance();
                observer.on_round_end(round, states);
                if undecided == 0 {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                boundary_checkpoint::<St, _>(
                    plumb,
                    round,
                    sent,
                    undecided,
                    planes,
                    states,
                    rngs,
                    witness,
                    None,
                    faults.capture(),
                    observer,
                );
            }
        }
        (RoundMode::Fused, ChunkScheduler::Stealing) => {
            let chunks = ChunkPlan::new(graph, &plan);
            let mut landing = buffers;
            let mut filling: Vec<DeliveryBuffer> =
                (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
            for round in start + 1..=max_rounds {
                // The plane shards go behind RwLocks so tasks can read
                // whichever (frozen) shard their senders live in; the
                // barrier separates the exclusive land+freeze writes
                // from the shared reads.
                let shard_cells: Vec<std::sync::RwLock<PlaneShard>> = planes
                    .epoch_shards(graph, plan.bounds())
                    .into_iter()
                    .map(std::sync::RwLock::new)
                    .collect();
                let shard_cells = &shard_cells;
                let barrier = std::sync::Barrier::new(workers);
                let barrier = &barrier;
                let landing_ref = &landing;
                let fctx = faults.ctx;
                let results: Vec<StealYield<St::Witness>> = {
                    let deques = seed_deques(&chunks, workers, &mut *states, &mut *rngs);
                    let deques = &deques;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = filling
                            .iter_mut()
                            .zip(obs.iter_mut())
                            .enumerate()
                            .map(|(w, (buffer, obs))| {
                                let plan = &plan;
                                scope.spawn(move || {
                                    // Deferred phase 2b of the previous
                                    // round, exactly as the static fused
                                    // schedule: this worker owns shard w.
                                    {
                                        let mut shard = shard_cells[w].write().unwrap();
                                        for prev in landing_ref {
                                            for wr in prev.bucket(w) {
                                                shard.land(
                                                    wr.node as usize,
                                                    wr.slot as usize,
                                                    wr.letter,
                                                );
                                            }
                                        }
                                        shard.freeze();
                                    }
                                    barrier.wait();
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    let mut wits = Vec::new();
                                    let (mut nsteals, mut nchunks) = (0u64, 0u64);
                                    while let Some((task, stolen)) = next_task(w, deques) {
                                        nchunks += 1;
                                        nsteals += stolen as u64;
                                        let StealTask {
                                            index,
                                            base,
                                            shard: task_shard,
                                            states: state_c,
                                            rngs: rng_c,
                                        } = task;
                                        // A task reads only the shard its
                                        // senders live in (observation =
                                        // own count row + slots; scoped
                                        // draws = own ports), all frozen
                                        // behind the barrier.
                                        let shard = shard_cells[task_shard].read().unwrap();
                                        let mut wit = St::Witness::default();
                                        for i in 0..state_c.len() {
                                            delta += node_round(
                                                step,
                                                graph,
                                                &*shard,
                                                round,
                                                base + i,
                                                &mut state_c[i],
                                                &mut rng_c[i],
                                                obs,
                                                &mut fsink,
                                                &mut wit,
                                            );
                                        }
                                        wits.push((index, wit));
                                    }
                                    (delta, ftally, wits, nsteals, nchunks)
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).collect()
                    })
                };
                planes.advance();
                std::mem::swap(&mut landing, &mut filling);
                absorb_steal_yields::<St>(results, &mut undecided, faults, witness, steals);
                sent += landing.iter().map(|b| b.sent).sum::<u64>();
                observer.on_round_end(round, states);
                if undecided == 0 {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                if plumb.every > 0 && round % plumb.every == 0 {
                    // Same deferred-phase-2b flush as the static fused
                    // boundary: land this round's buffers serially and
                    // clear them so the next scope lands nothing.
                    let ports = planes.write();
                    for ci in 0..workers {
                        for prev in landing.iter() {
                            for w in prev.bucket(ci) {
                                ports.deliver(w.node as usize, w.slot as usize, w.letter);
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    boundary_checkpoint::<St, _>(
                        plumb,
                        round,
                        sent,
                        undecided,
                        planes,
                        states,
                        rngs,
                        witness,
                        None,
                        faults.capture(),
                        observer,
                    );
                }
            }
        }
        (RoundMode::Joined, ChunkScheduler::Static) => {
            for round in start + 1..=max_rounds {
                // Phase 1 + 2a, one scope: disjoint &mut chunks over
                // states, RNGs, buffers, and scratch; shared reads of
                // the frozen read plane, the graph, and the fault plan
                // (whose decisions are pure hashes — no shared state).
                let ports = planes.read();
                let fctx = faults.ctx;
                let results: Vec<(isize, FaultSummary)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = plan
                        .chunks_mut(&mut *states)
                        .into_iter()
                        .zip(plan.chunks_mut(&mut *rngs))
                        .zip(buffers.iter_mut())
                        .zip(obs.iter_mut())
                        .zip(witnesses.iter_mut())
                        .enumerate()
                        .map(|(ci, ((((state_c, rng_c), buffer), obs), wit))| {
                            let base = plan.bounds()[ci];
                            let plan = &plan;
                            scope.spawn(move || {
                                buffer.clear();
                                let mut sink = ShardedSink { buffer, plan };
                                let mut ftally = FaultSummary::default();
                                let mut fsink =
                                    FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                let mut delta = 0isize;
                                for i in 0..state_c.len() {
                                    delta += node_round(
                                        step,
                                        graph,
                                        ports,
                                        round,
                                        base + i,
                                        &mut state_c[i],
                                        &mut rng_c[i],
                                        obs,
                                        &mut fsink,
                                        wit,
                                    );
                                }
                                (delta, ftally)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                undecided += results.iter().map(|&(d, _)| d).sum::<isize>();
                for (_, t) in &results {
                    faults.absorb(t);
                }
                sent += buffers.iter().map(|b| b.sent).sum::<u64>();
                for w in witnesses.iter_mut() {
                    St::absorb(witness, w);
                }
                // Phase 2b: merge the buffers into the write plane (the
                // second join of the round under the sharded strategy).
                parbuf::merge(policy.merge, planes.write(), graph, &plan, &buffers);
                planes.advance();
                observer.on_round_end(round, states);
                if undecided == 0 {
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                boundary_checkpoint::<St, _>(
                    plumb,
                    round,
                    sent,
                    undecided,
                    planes,
                    states,
                    rngs,
                    witness,
                    None,
                    faults.capture(),
                    observer,
                );
            }
        }
        (RoundMode::Fused, ChunkScheduler::Static) => {
            // Double-buffered delivery generations: `landing` holds the
            // previous round's buffers (read by every worker during the
            // deferred phase 2b), `filling` receives this round's.
            let mut landing = buffers;
            let mut filling: Vec<DeliveryBuffer> =
                (0..workers).map(|_| DeliveryBuffer::new(workers)).collect();
            for round in start + 1..=max_rounds {
                let shards = planes.epoch_shards(graph, plan.bounds());
                let landing_ref = &landing;
                let fctx = faults.ctx;
                let results: Vec<(isize, FaultSummary)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .into_iter()
                        .zip(plan.chunks_mut(&mut *states))
                        .zip(plan.chunks_mut(&mut *rngs))
                        .zip(filling.iter_mut())
                        .zip(obs.iter_mut())
                        .zip(witnesses.iter_mut())
                        .enumerate()
                        .map(
                            |(ci, (((((mut shard, state_c), rng_c), buffer), obs), wit))| {
                                let base = plan.bounds()[ci];
                                let plan = &plan;
                                scope.spawn(move || {
                                    // Deferred phase 2b of the previous
                                    // round: land every buffer's bucket for
                                    // this worker's shard on the write
                                    // plane, in fixed worker order.
                                    for prev in landing_ref {
                                        for w in prev.bucket(ci) {
                                            shard.land(w.node as usize, w.slot as usize, w.letter);
                                        }
                                    }
                                    // The shard is now this round's frozen
                                    // read plane.
                                    shard.freeze();
                                    buffer.clear();
                                    let mut sink = ShardedSink { buffer, plan };
                                    let mut ftally = FaultSummary::default();
                                    let mut fsink =
                                        FaultSink::wrap(&mut sink, fctx, round, &mut ftally);
                                    let mut delta = 0isize;
                                    for i in 0..state_c.len() {
                                        delta += node_round(
                                            step,
                                            graph,
                                            &shard,
                                            round,
                                            base + i,
                                            &mut state_c[i],
                                            &mut rng_c[i],
                                            obs,
                                            &mut fsink,
                                            wit,
                                        );
                                    }
                                    (delta, ftally)
                                })
                            },
                        )
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                // The single join of the round is behind us; flip the
                // epoch and swap the buffer generations.
                planes.advance();
                std::mem::swap(&mut landing, &mut filling);
                undecided += results.iter().map(|&(d, _)| d).sum::<isize>();
                for (_, t) in &results {
                    faults.absorb(t);
                }
                sent += landing.iter().map(|b| b.sent).sum::<u64>();
                for w in witnesses.iter_mut() {
                    St::absorb(witness, w);
                }
                observer.on_round_end(round, states);
                if undecided == 0 {
                    // The terminal round's buffers are never landed: the
                    // store is dead once outputs are collected, so the
                    // bytes the joined schedule's terminal merge writes
                    // are unobservable.
                    return RoundEnd::Done {
                        rounds: round,
                        sent,
                    };
                }
                if plumb.every > 0 && round % plumb.every == 0 {
                    // A fused boundary still owes the store this round's
                    // deliveries — they normally land inside the next
                    // round's scope. Land them now, in the same fixed
                    // worker order per shard, and clear the buffers so
                    // the deferred landing becomes a no-op; per-round
                    // slot uniqueness + commutative counts make the
                    // store bytes identical either way.
                    let ports = planes.write();
                    for ci in 0..workers {
                        for prev in landing.iter() {
                            for w in prev.bucket(ci) {
                                ports.deliver(w.node as usize, w.slot as usize, w.letter);
                            }
                        }
                    }
                    for b in landing.iter_mut() {
                        b.clear();
                    }
                    boundary_checkpoint::<St, _>(
                        plumb,
                        round,
                        sent,
                        undecided,
                        planes,
                        states,
                        rngs,
                        witness,
                        None,
                        faults.capture(),
                        observer,
                    );
                }
            }
        }
    }
    RoundEnd::Limit {
        limit: max_rounds,
        unfinished: undecided as usize,
    }
}
