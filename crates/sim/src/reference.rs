//! The pre-flat **reference executor**, kept as a differential-testing
//! oracle and benchmark baseline.
//!
//! This is the synchronous engine as it stood before the flat delivery
//! engine ([`crate::engine`]): nested `Vec<Vec<Letter>>` ports, a
//! per-delivery `port_of` binary search, a freshly collected [`ObsVec`]
//! per node per round, and a full O(|V|) output scan for termination.
//! The flat sync engine behind [`crate::Simulation`] must produce
//! **bit-identical** outcomes to this
//! executor for every `(protocol, graph, seed)` — that contract is pinned
//! by `tests/flat_engine.rs` — and the engine-throughput bench measures
//! the flat engine's speedup against it.
//!
//! Do not "optimize" this module; its value is being the slow, obviously
//! correct transcription of the semantics.

// The naive engine is kept textually close to the pre-flat executor, index
// loops included.
#![allow(clippy::needless_range_loop)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{BoundedCount, Letter, MultiFsm, ObsVec};
use stoneage_graph::Graph;

use crate::{splitmix64, ExecError, SyncConfig, SyncOutcome};

/// Runs `protocol` with all-zero inputs on the naive reference engine.
pub fn run_sync_reference<P: MultiFsm>(
    protocol: &P,
    graph: &Graph,
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError> {
    let inputs = vec![0usize; graph.node_count()];
    run_sync_reference_with_inputs(protocol, graph, &inputs, config)
}

/// Runs `protocol` on the naive reference engine with per-node inputs.
pub fn run_sync_reference_with_inputs<P: MultiFsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
) -> Result<SyncOutcome, ExecError> {
    let n = graph.node_count();
    if inputs.len() != n {
        return Err(ExecError::InputLengthMismatch {
            nodes: n,
            inputs: inputs.len(),
        });
    }
    let sigma = protocol.alphabet().len();
    let b = protocol.bound();
    let sigma0 = protocol.initial_letter();

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    // ports[v][k] = last letter delivered from graph.neighbors(v)[k].
    let mut ports: Vec<Vec<Letter>> = (0..n)
        .map(|v| vec![sigma0; graph.degree(v as u32)])
        .collect();
    let mut rngs: Vec<SmallRng> = (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(config.seed ^ splitmix64(v))))
        .collect();

    let mut messages_sent = 0u64;
    let mut counts = vec![0usize; sigma];
    let mut emissions: Vec<Option<Letter>> = vec![None; n];

    let finished = |states: &[P::State]| states.iter().all(|q| protocol.output(q).is_some());

    if finished(&states) {
        let outputs = states
            .iter()
            .map(|q| protocol.output(q).expect("checked"))
            .collect();
        return Ok(SyncOutcome {
            outputs,
            rounds: 0,
            messages_sent,
        });
    }

    for round in 1..=config.max_rounds {
        // Phase 1: every node observes its ports and applies δ.
        for (v, port_row) in ports.iter().enumerate() {
            counts.iter_mut().for_each(|c| *c = 0);
            for &l in port_row {
                counts[l.index()] += 1;
            }
            let obs = ObsVec::new(
                counts
                    .iter()
                    .map(|&c| BoundedCount::from_count(c, b))
                    .collect(),
            );
            let transitions = protocol.delta(&states[v], &obs);
            let (next, emission) = transitions.sample(&mut rngs[v]);
            states[v] = next.clone();
            emissions[v] = *emission;
        }
        // Phase 2: deliver all emissions (ε leaves ports untouched).
        for v in 0..n {
            if let Some(letter) = emissions[v] {
                messages_sent += 1;
                for &u in graph.neighbors(v as u32) {
                    let port = graph
                        .port_of(u, v as u32)
                        .expect("neighbor lists are symmetric");
                    ports[u as usize][port] = letter;
                }
            }
        }
        if finished(&states) {
            let outputs = states
                .iter()
                .map(|q| protocol.output(q).expect("checked"))
                .collect();
            return Ok(SyncOutcome {
                outputs,
                rounds: round,
                messages_sent,
            });
        }
    }
    let unfinished = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count();
    Err(ExecError::RoundLimit {
        limit: config.max_rounds,
        unfinished,
    })
}
