//! The calendar-queue / hierarchical-timing-wheel scheduler behind the
//! asynchronous executor.
//!
//! PR 1's flat delivery engine removed the per-delivery `port_of` searches
//! from the async executor behind [`crate::Simulation`]; what
//! remained was the single global
//! `BinaryHeap<Reverse<Event>>`, whose `O(log m)` push/pop factor (with
//! `m` the number of in-flight events — hundreds of thousands on a
//! gnp(50k, avg deg 8) sweep) dominated the event loop. [`CalendarQueue`]
//! replaces it with the standard discrete-event answer: a timing wheel
//! whose per-event cost is O(1) amortized, independent of `m`.
//!
//! # Structure
//!
//! Time is quantized into **ticks** of a caller-chosen `bucket_width`
//! (see below). Events live in one of three places:
//!
//! * the **front heap** — a tiny `BinaryHeap` holding only the events of
//!   the *current* tick, ordered by exact `(time, seq)`;
//! * the **wheel** — [`LEVELS`] levels of [`SLOTS`] buckets each. Level
//!   `ℓ` buckets span `64^ℓ` ticks, so the wheel covers `64^4 ≈ 16.8M`
//!   ticks ahead of the current tick. An event at tick delta `d` is
//!   filed, unsorted, in level `⌊log₆₄ d⌋`, slot `(tick >> 6ℓ) mod 64`;
//! * the **overflow heap** — events beyond the wheel horizon (rare: it
//!   takes a delay more than ~16M ticks ahead to land here), drained back
//!   into the wheel as the current tick approaches them.
//!
//! Advancing the clock scans level 0 for the next occupied tick; at each
//! level-`ℓ` window boundary the corresponding level-`ℓ` slot **cascades**
//! down into the finer levels, exactly like a hierarchical timing wheel.
//! Empty stretches are skipped a whole window at a time (when all levels
//! below `ℓ` are empty, the clock jumps straight to the next level-`ℓ`
//! boundary), so draining a sparse schedule never degenerates into
//! tick-by-tick stepping.
//!
//! # Exact ordering
//!
//! Unlike a classical calendar queue, pop order here is **bit-identical**
//! to a global binary heap ordered by `(time, seq)`: ticks only bound
//! *which* events are candidates; the front heap always orders the
//! current tick's events by their exact `f64` time (via `total_cmp`) and
//! the caller-supplied tie-breaking sequence number. Quantization
//! therefore affects performance only, never semantics — the async
//! executor's differential tests pin this.
//!
//! # Bucket-width selection
//!
//! The width trades the front-heap size against empty-tick traversal:
//!
//! * **too wide** — many events share a tick, the front heap grows, and
//!   the scheduler degenerates toward the global heap it replaces;
//! * **too narrow** — most ticks are empty and (far worse) events
//!   scatter into the coarse levels, paying a cascade each before they
//!   can drain.
//!
//! The sweet spot is a width that keeps a handful of events per tick:
//! `width ≈ target / rate`, where `rate` is the expected number of
//! scheduled events per unit of simulated time. The async executor
//! estimates `rate ≈ (|V| + Σ_v deg(v)) / mean_step_length` — every step
//! reschedules itself and fans out at most `deg(v)` deliveries — with the
//! mean step length taken from [`crate::Adversary::time_scale_hint`]
//! when the policy knows its own scale, or from a small deterministic
//! sample of the policy otherwise, and targets ~4 events per tick
//! ([`crate::AsyncConfig::bucket_width`] overrides the estimate). Getting
//! this wrong is safe: both failure modes are graceful slowdowns back
//! toward heap behavior.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Slots per wheel level (64 = one 6-bit digit of the tick index).
pub const SLOTS: usize = 64;
/// log2 of [`SLOTS`]: ticks shift by `BITS` per level.
const BITS: u32 = 6;
/// Wheel levels. Level `ℓ` slots span `64^ℓ` ticks, so the wheel horizon
/// is `64^LEVELS` ticks past the current tick.
pub const LEVELS: usize = 4;
/// Ticks covered by the wheel before events fall into the overflow heap.
const HORIZON: u64 = 1 << (BITS * LEVELS as u32); // 64^4

/// Ticks are clamped here so `time / width` overflow on pathological
/// widths cannot wrap the arithmetic below. Ordering is unaffected:
/// clamped events all sit in the overflow heap, which compares exact
/// `(time, seq)`.
const TICK_CLAMP: u64 = 1 << 62;

#[derive(Clone, Copy, Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    tick: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A hierarchical-timing-wheel event queue with exact `(time, seq)` pop
/// order. See the module docs for the structure and the bucket-width
/// trade-off.
///
/// `seq` values must be unique across live events (the async executor
/// hands out a fresh one per scheduled delivery); times must be finite,
/// non-negative, and non-decreasing relative to the last popped event —
/// the discrete-event invariant that nothing is scheduled in the past.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    width: f64,
    inv_width: f64,
    current_tick: u64,
    front: BinaryHeap<Reverse<Entry<T>>>,
    /// `levels[l][s]`: unsorted events whose tick has digit `s` at level
    /// `l` and lies within level `l`'s span of the current tick.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    level_counts: [usize; LEVELS],
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the given bucket (tick) width in simulated
    /// time units. Non-finite or non-positive widths fall back to 1.0.
    pub fn new(bucket_width: f64) -> Self {
        let width = if bucket_width.is_finite() && bucket_width > 0.0 {
            bucket_width
        } else {
            1.0
        };
        CalendarQueue {
            width,
            inv_width: width.recip(),
            current_tick: 0,
            front: BinaryHeap::new(),
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            level_counts: [0; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// The tick width this queue was built with.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visits every queued event as `(time, seq, &item)`, in **no
    /// particular order** — the snapshot layer collects and sorts them by
    /// `(time, seq)` itself. Non-destructive: the queue is unchanged.
    pub fn entries(&self) -> impl Iterator<Item = (f64, u64, &T)> {
        self.front
            .iter()
            .map(|Reverse(e)| (e.time, e.seq, &e.item))
            .chain(
                self.levels
                    .iter()
                    .flatten()
                    .flatten()
                    .map(|e| (e.time, e.seq, &e.item)),
            )
            .chain(
                self.overflow
                    .iter()
                    .map(|Reverse(e)| (e.time, e.seq, &e.item)),
            )
    }

    #[inline]
    fn tick_of(&self, time: f64) -> u64 {
        // `as` saturates on overflow/NaN; the explicit clamp keeps the
        // delta arithmetic below honest.
        ((time * self.inv_width) as u64).min(TICK_CLAMP)
    }

    /// Schedules `item` at `time` with tie-break rank `seq`.
    #[inline]
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        let tick = self.tick_of(time).max(self.current_tick);
        self.len += 1;
        self.place(Entry {
            time,
            seq,
            tick,
            item,
        });
    }

    /// Files an entry into front/wheel/overflow by its tick. Does not
    /// touch `len`.
    #[inline]
    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.tick - self.current_tick;
        if delta == 0 {
            self.front.push(Reverse(entry));
        } else if delta < HORIZON {
            // ⌊log64 delta⌋ via the bit length of delta (delta ≥ 1).
            let level = ((63 - delta.leading_zeros()) / BITS) as usize;
            let slot = ((entry.tick >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.levels[level][slot].push(entry);
            self.level_counts[level] += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Pops the globally earliest event by `(time, seq)`.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        loop {
            if let Some(Reverse(e)) = self.front.pop() {
                self.len -= 1;
                return Some((e.time, e.seq, e.item));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Moves overflow events that now fit under the wheel horizon into
    /// the wheel (or the front, for the current tick).
    fn drain_overflow(&mut self) {
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.tick - self.current_tick >= HORIZON {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }

    /// Empties `levels[level][slot]` into the finer levels / front.
    fn cascade(&mut self, level: usize, slot: usize) {
        if self.levels[level][slot].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.levels[level][slot]);
        self.level_counts[level] -= entries.len();
        for e in entries {
            debug_assert!(e.tick >= self.current_tick);
            self.place(e);
        }
    }

    /// Front is empty and `len > 0`: advance the clock to the next
    /// occupied tick and load its events into the front heap.
    fn advance(&mut self) {
        self.drain_overflow();
        if self.level_counts.iter().all(|&c| c == 0) {
            // Everything left is beyond the horizon: jump the clock
            // straight to the earliest overflow event and re-drain (its
            // tick now matches `current_tick`, so it lands in the front).
            let Reverse(top) = self.overflow.peek().expect("len > 0, wheel empty");
            self.current_tick = top.tick;
            self.drain_overflow();
            return;
        }

        // Scan the rest of the current level-0 window for an occupied
        // tick. Level-0 entries always sit within 64 ticks of the clock,
        // but entries past the window boundary are reached only after the
        // boundary cascade below.
        if self.level_counts[0] > 0 {
            let window_end = (self.current_tick | (SLOTS as u64 - 1)) + 1;
            for t in self.current_tick + 1..window_end {
                let slot = (t & (SLOTS as u64 - 1)) as usize;
                if !self.levels[0][slot].is_empty() {
                    debug_assert!(self.levels[0][slot].iter().all(|e| e.tick == t));
                    self.current_tick = t;
                    let entries = std::mem::take(&mut self.levels[0][slot]);
                    self.level_counts[0] -= entries.len();
                    self.front.extend(entries.into_iter().map(Reverse));
                    return;
                }
            }
        }

        // Nothing before the next boundary. Jump a whole window at the
        // granularity of the consecutive-empty level prefix: after the
        // cascade at each 64^ℓ boundary crossing, every remaining
        // level-ℓ event's tick lies at or past the *next* 64^ℓ boundary,
        // so a jump to the next 64^g boundary can pass no event of any
        // level ≥ g — and levels < g are empty. Then cascade every slot
        // whose window starts at the new clock, coarsest first.
        let mut empty = 0usize;
        while empty < LEVELS && self.level_counts[empty] == 0 {
            empty += 1;
        }
        debug_assert!(empty < LEVELS, "wheel-empty case handled above");
        let jump = empty.max(1);
        let span = 1u64 << (BITS * jump as u32);
        self.current_tick = (self.current_tick | (span - 1)) + 1;
        for level in (1..LEVELS).rev() {
            let level_span = 1u64 << (BITS * level as u32);
            if self.current_tick.is_multiple_of(level_span) {
                let slot =
                    ((self.current_tick >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.cascade(level, slot);
            }
        }
        // Cascaded entries for the new clock tick were placed with
        // delta == 0, i.e. straight into the front — but the boundary's
        // own level-0 slot may also hold events filed *before* the jump
        // (pushed with delta < 64 from the previous window). The scan
        // above starts past the clock, so drain that slot here.
        let slot = (self.current_tick & (SLOTS as u64 - 1)) as usize;
        if !self.levels[0][slot].is_empty() {
            debug_assert!(self.levels[0][slot]
                .iter()
                .all(|e| e.tick == self.current_tick));
            let entries = std::mem::take(&mut self.levels[0][slot]);
            self.level_counts[0] -= entries.len();
            self.front.extend(entries.into_iter().map(Reverse));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference scheduler: the global binary heap the wheel replaces.
    struct HeapRef {
        heap: BinaryHeap<Reverse<Entry<u64>>>,
    }

    impl HeapRef {
        fn new() -> Self {
            HeapRef {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, time: f64, seq: u64, item: u64) {
            self.heap.push(Reverse(Entry {
                time,
                seq,
                tick: 0,
                item,
            }));
        }
        fn pop(&mut self) -> Option<(f64, u64, u64)> {
            self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.item))
        }
    }

    /// Deterministic xorshift for schedule generation.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn differential(width: f64, seed: u64, pushes_per_round: usize, rounds: usize) {
        let mut wheel = CalendarQueue::new(width);
        let mut heap = HeapRef::new();
        let mut next = rng(seed);
        let mut seq = 0u64;
        let mut clock = 0.0f64;
        for _ in 0..rounds {
            for _ in 0..pushes_per_round {
                // Mixture of near, far, and equal-time events.
                let r = next();
                let dt = match r % 5 {
                    0 => 0.25, // exact ties across pushes
                    1 => (r >> 8) as f64 % 1.0 * 1e-3,
                    2 => (r >> 8) as f64 % 1.0,
                    3 => 10.0 + (r >> 8) as f64 % 100.0,
                    _ => 1e4 + (r >> 8) as f64 % 1e5, // deep into coarse levels
                };
                let t = clock + dt.max(1e-9);
                wheel.push(t, seq, seq);
                heap.push(t, seq, seq);
                seq += 1;
            }
            // Drain a few, keeping the queues non-empty.
            for _ in 0..pushes_per_round / 2 {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "width {width} seed {seed}");
                if let Some((t, _, _)) = w {
                    assert!(t >= clock);
                    clock = t;
                }
            }
        }
        // Full drain must agree to the last event.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "drain: width {width} seed {seed}");
            if w.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn pop_order_matches_binary_heap_across_widths() {
        for &width in &[1.0, 0.01, 1e-4, 123.0] {
            for seed in 1..5 {
                differential(width, seed, 40, 30);
            }
        }
    }

    #[test]
    fn extreme_widths_fall_back_gracefully() {
        // Degenerate widths must stay correct (everything lands in one
        // tick, or everything overflows) even if slow.
        differential(1e12, 9, 25, 10); // one giant bucket
        differential(1e-12, 11, 10, 6); // every event beyond the horizon
        assert_eq!(CalendarQueue::<u8>::new(f64::NAN).width(), 1.0);
        assert_eq!(CalendarQueue::<u8>::new(-3.0).width(), 1.0);
    }

    #[test]
    fn ties_pop_in_seq_order() {
        let mut q = CalendarQueue::new(0.5);
        for seq in (0..20u64).rev() {
            q.push(7.25, seq, seq);
        }
        for want in 0..20u64 {
            let (t, seq, item) = q.pop().unwrap();
            assert_eq!((t, seq, item), (7.25, want, want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_events_cross_every_level_and_the_overflow() {
        let mut q = CalendarQueue::new(1.0);
        // One event per level span plus one past the horizon.
        let times = [3.0, 100.0, 5_000.0, 300_000.0, 20_000_000.0, 1e12];
        for (seq, &t) in times.iter().enumerate() {
            q.push(t, seq as u64, seq as u64);
        }
        assert_eq!(q.len(), times.len());
        for (seq, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, seq as u64, seq as u64)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pushes_into_the_current_tick_stay_ordered() {
        // Events scheduled between pops, landing inside the tick being
        // drained, must still pop in (time, seq) order.
        let mut q = CalendarQueue::new(1.0);
        q.push(0.1, 0, 0);
        q.push(0.9, 1, 1);
        assert_eq!(q.pop(), Some((0.1, 0, 0)));
        q.push(0.5, 2, 2); // same tick, earlier than the queued 0.9
        assert_eq!(q.pop(), Some((0.5, 2, 2)));
        assert_eq!(q.pop(), Some((0.9, 1, 1)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn entries_visit_every_queued_event_without_draining() {
        let mut q = CalendarQueue::new(1.0);
        let times = [0.5, 3.0, 100.0, 5_000.0, 300_000.0, 20_000_000.0, 1e12];
        for (seq, &t) in times.iter().enumerate() {
            q.push(t, seq as u64, seq as u64);
        }
        q.pop().unwrap(); // populate the front heap mid-drain
        q.push(0.75, 99, 99);
        let mut seen: Vec<(f64, u64, u64)> = q.entries().map(|(t, s, &i)| (t, s, i)).collect();
        assert_eq!(seen.len(), q.len());
        seen.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some((t, s, i)) = q.pop() {
            popped.push((t, s, i));
        }
        assert_eq!(seen, popped);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = CalendarQueue::new(2.0);
        assert!(q.is_empty());
        for i in 0..100u64 {
            q.push(i as f64 * 3.7, i, i);
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop().unwrap();
        }
        assert_eq!(q.len(), 60);
    }
}
