//! Deterministic parallel phase-2 delivery: sharded per-worker write
//! buffers for the lockstep executors (`parallel` feature).
//!
//! PR 1 parallelized only phase 1 (observation + transition) of the
//! synchronous round loop; phase 2 — delivering every emission into
//! [`FlatPorts`] — stayed a single-threaded write pass, and on multi-core
//! hardware the round loop was bottlenecked on it. This module makes
//! phase 2 data-parallel while keeping the executors **bit-identical** to
//! their serial twins:
//!
//! 1. **Partition.** [`ShardPlan`] cuts the node range into one
//!    contiguous chunk per worker, balanced by port-slot count (degree
//!    sum), not node count — a hub-heavy chunk would otherwise serialize
//!    the round. The same partition serves double duty: worker `i`
//!    processes the *emissions* of sender chunk `i` (phase 2a) and merges
//!    the deliveries destined to *receiver* shard `i` (phase 2b).
//! 2. **Buffer.** Each worker resolves its senders' emissions into a
//!    private [`DeliveryBuffer`]: flat `(receiver, slot, letter)` triples
//!    pre-bucketed by destination shard, plus the worker's non-`ε`
//!    transmission count. No shared state is touched — phase 2a reads
//!    only the frozen previous-round ports and the graph's reverse-port
//!    map.
//! 3. **Merge.** [`merge_sharded`] (the default) hands each worker one
//!    disjoint [`crate::engine::PortShard`] view and replays, in fixed
//!    worker order, every buffer's bucket for that shard.
//!    [`merge_replay`] applies the same buffers serially in the same
//!    fixed order — the differential oracle the property tests pit the
//!    sharded merge against.
//!
//! # Why this is bit-identical to the serial engine
//!
//! The argument rests on three facts, none of them scheduling-dependent:
//!
//! * **Frozen reads.** Phase 2a resolves emissions against the
//!   previous-round port store, which nothing mutates until every worker
//!   has joined — so the resolved write set (and any scoped target draws,
//!   which use per-node RNGs) is exactly the serial engine's.
//! * **Slot uniqueness.** A delivery from `v` to `u` writes slot
//!   `csr_offset(u) + ψ_u(v)`, and a sender emits at most once per round
//!   — so every flat slot is written at most once per round, by exactly
//!   one sender. The final letter of each slot is therefore independent
//!   of write order.
//! * **Commutative counts.** Each write's count update is "old letter −1,
//!   new letter +1" with the *old* letter frozen by slot uniqueness; the
//!   per-node count rows are integer sums of these deltas and the sparse
//!   maps are canonical (sorted, non-zero), so any apply order yields the
//!   same bytes.
//!
//! The fixed worker order of both merges is therefore not needed for
//! *correctness* of the final store — it pins the *transcript*: within a
//! receiver shard, writes land in (worker, emission) order, which is
//! exactly ascending sender order, so even an instrumented store (or a
//! future non-commutative extension) observes the serial sequence. The
//! property tests in `tests/flat_engine.rs` and
//! `tests/scoped_parallel.rs` assert outcome equality across worker
//! counts, merge strategies, and the serial engines.
//!
//! # When the merge runs: [`RoundMode`]
//!
//! The three facts above say nothing about *when* a buffered delivery
//! must land — only that it must land before any observation of the next
//! round reads its slot or count row. The round pipeline
//! (`crate::pipeline`) exploits that freedom: under the default
//! [`RoundMode::Joined`] the merge runs as its own step between rounds
//! (two scope joins per round, the historical schedule), while under
//! [`RoundMode::Fused`] phase 2b of round *r* is deferred into the
//! worker scope of round *r + 1* — each worker lands the buckets
//! destined to its own [`crate::engine::PlaneShard`] and then observes
//! through the same shard, dropping one scope join per round. Both
//! modes replay buckets in fixed worker order and are bit-identical for
//! every seed; `Joined` is kept as the differential oracle.
//!
//! # Who computes a chunk: [`ChunkScheduler`]
//!
//! The three facts also say nothing about *which thread* runs phase
//! 1 + 2a for a given sender — only that the resolved write set is a
//! function of the frozen read plane and the per-node RNGs. The static
//! schedule (one contiguous chunk per worker, the [`ShardPlan`] itself)
//! is optimal when per-node work is uniform, but the stone-age model
//! bounds the *alphabet*, not the *degree*: on a power-law or
//! hub-and-spoke graph one shard's hub drains its worker long after the
//! others have joined. [`ChunkScheduler::Stealing`] splits each shard
//! into finer [`ChunkPlan`] descriptors seeded onto per-worker deques
//! (worker `w` starts with exactly the chunks of shard `w` — the
//! pinning that keeps its phase-2b write shard hot in cache), and an
//! idle worker steals from the back of the currently longest deque.
//! Stealing reorders **who** computes a chunk and **when**, never
//! **where** a `(receiver, slot, letter)` write lands: every delivery is
//! still bucketed by destination shard in the *sender's* buffer, per-node
//! RNG draws still depend only on the node, and per-chunk witnesses are
//! absorbed in ascending chunk order after the join — so the store, the
//! transcript, and the scoped witness are bit-identical to the static
//! schedule (and hence to serial) by the same three facts. Only the
//! [`StealStats`] — how many chunks moved between workers — are
//! timing-dependent, which is why they are reported on the outcome but
//! excluded from every fingerprint.

use stoneage_core::Letter;
use stoneage_graph::{Graph, NodeId};

use crate::engine::FlatPorts;

/// Below this node count the per-round thread spawn+join overhead of the
/// chunked phases outweighs the parallel speedup, so the parallel
/// executors fall back to their serial twins (which are bit-identical
/// anyway) unless a [`ParallelPolicy`] forces an explicit worker count.
pub const PARALLEL_MIN_NODES: usize = 4096;

/// How phase-2b folds the per-worker buffers into the port store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// One worker per destination shard applies, in fixed worker order,
    /// every buffer's bucket for its shard — workers never contend on a
    /// node's CSR slots or count rows. The default.
    #[default]
    DestinationSharded,
    /// Serial replay of every buffer in fixed worker order. The
    /// differential oracle for the sharded merge (and the sensible
    /// choice when the caller already knows the round is tiny).
    BufferReplay,
}

/// How the parallel round pipeline schedules phase 2b against the next
/// round's phase 1 (see `crate::pipeline`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoundMode {
    /// Two joins per round: one worker scope runs phase 1 + 2a, joins,
    /// then the policy's [`MergeStrategy`] lands the buffers (the
    /// destination-sharded merge spawns a second scope). The historical
    /// schedule and the differential oracle for [`RoundMode::Fused`];
    /// the default.
    #[default]
    Joined,
    /// One join per round: phase 2b of round *r* is fused into phase 1
    /// of round *r + 1* — each worker first lands the previous round's
    /// deliveries on its own [`crate::engine::PlaneShard`] (the write
    /// plane), freezes it into the read plane, and runs phase 1 + 2a of
    /// the new round against it, all inside a single scope. Bit-identical
    /// to `Joined` for every seed, worker count, and merge strategy
    /// (in fused rounds the merge is destination-sharded by
    /// construction, so the [`MergeStrategy`] knob selects the *joined*
    /// oracle's behavior only).
    Fused,
}

/// Environment variable overriding every [`ParallelPolicy::round`] at
/// run time (`joined` / `fused`, case-insensitive): lets CI force the
/// whole test suite through the fused pipeline without a second test
/// matrix in code. Unset or unrecognized values defer to the policy.
pub const ROUND_MODE_ENV: &str = "STONEAGE_ROUND_MODE";

/// Environment variable overriding every [`ParallelPolicy::scheduler`]
/// at run time (`static` / `stealing`, case-insensitive), the
/// [`ROUND_MODE_ENV`] pattern applied to the chunk scheduler: CI's
/// stealing leg forces the whole differential suite through the
/// work-stealing path. Unset or unrecognized values defer to the policy.
pub const SCHEDULER_ENV: &str = "STONEAGE_SCHEDULER";

/// How phase 1 + 2a chunks are assigned to workers within a round's
/// scope (see the [module docs](self) for the bit-identity argument).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChunkScheduler {
    /// One contiguous slot-balanced chunk per worker — the [`ShardPlan`]
    /// partition itself. No scheduling overhead; optimal when per-node
    /// work is uniform. The default and the differential oracle for
    /// [`ChunkScheduler::Stealing`].
    #[default]
    Static,
    /// Each shard is split into finer [`ChunkPlan`] descriptors seeded
    /// onto its owning worker's deque; a worker drains its own deque
    /// front-first (shard-to-worker pinning) and, when dry, steals from
    /// the back of the longest other deque. Bit-identical to `Static`
    /// for every seed; pays a small per-chunk locking cost to win back
    /// the idle time skewed-degree graphs leave on the static schedule.
    Stealing,
}

/// Chunks migrated between workers during a run, reported on
/// `Outcome::steals`. **Timing-dependent** (a steal happens when a deque
/// happens to run dry first), unlike everything else an outcome carries
/// — never fold these into fingerprints or differential assertions.
/// `chunks` (total descriptors executed) *is* deterministic: it depends
/// only on the graph, worker count, and round count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Chunks executed by a worker other than their shard's owner.
    pub steals: u64,
    /// Total chunk descriptors executed across all rounds.
    pub chunks: u64,
}

impl StealStats {
    /// Folds another run segment's counters into this one.
    pub fn absorb(&mut self, other: StealStats) {
        self.steals += other.steals;
        self.chunks += other.chunks;
    }
}

/// Tuning knobs of the parallel executors. The defaults reproduce the
/// auto behavior: hardware worker count, destination-sharded merge, and
/// the [`PARALLEL_MIN_NODES`] serial fallback.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelPolicy {
    /// Worker count. `None` resolves to `std::thread::available_parallelism`
    /// and falls back to the serial engine when that is 1; an explicit
    /// `Some(w)` is honored even on narrower hardware (the differential
    /// tests pin adversarial counts like 7 this way).
    pub workers: Option<usize>,
    /// Phase-2b merge strategy.
    pub merge: MergeStrategy,
    /// Node-count floor below which the run delegates to the serial
    /// engine. `None` means [`PARALLEL_MIN_NODES`]; tests force the
    /// parallel machinery on small graphs with `Some(0)`.
    pub min_nodes: Option<usize>,
    /// Round-pipeline schedule: the historical two-join [`RoundMode::Joined`]
    /// (default, the differential oracle) or the one-join
    /// [`RoundMode::Fused`]. Overridable at run time via
    /// [`ROUND_MODE_ENV`].
    pub round: RoundMode,
    /// Chunk-to-worker assignment: the static [`ShardPlan`] partition
    /// (default, the differential oracle) or the work-stealing deques.
    /// Overridable at run time via [`SCHEDULER_ENV`].
    pub scheduler: ChunkScheduler,
}

impl ParallelPolicy {
    /// A policy forcing `workers` workers and no serial fallback — every
    /// round genuinely runs the chunked phases and the buffered merge.
    pub fn forced(workers: usize, merge: MergeStrategy) -> Self {
        ParallelPolicy {
            workers: Some(workers.max(1)),
            merge,
            min_nodes: Some(0),
            round: RoundMode::default(),
            scheduler: ChunkScheduler::default(),
        }
    }

    /// This policy with the given round-pipeline schedule.
    pub fn with_round(mut self, round: RoundMode) -> Self {
        self.round = round;
        self
    }

    /// This policy with the work-stealing chunk scheduler.
    pub fn with_stealing(mut self) -> Self {
        self.scheduler = ChunkScheduler::Stealing;
        self
    }

    /// This policy with the given chunk scheduler.
    pub fn with_scheduler(mut self, scheduler: ChunkScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Resolves the effective [`RoundMode`]: the [`ROUND_MODE_ENV`]
    /// environment variable when set to a recognized value, the policy's
    /// own `round` field otherwise.
    pub fn resolve_round(&self) -> RoundMode {
        match std::env::var(ROUND_MODE_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("fused") => RoundMode::Fused,
            Ok(v) if v.eq_ignore_ascii_case("joined") => RoundMode::Joined,
            _ => self.round,
        }
    }

    /// Resolves the effective [`ChunkScheduler`]: the [`SCHEDULER_ENV`]
    /// environment variable when set to a recognized value, the policy's
    /// own `scheduler` field otherwise.
    pub fn resolve_scheduler(&self) -> ChunkScheduler {
        match std::env::var(SCHEDULER_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("stealing") => ChunkScheduler::Stealing,
            Ok(v) if v.eq_ignore_ascii_case("static") => ChunkScheduler::Static,
            _ => self.scheduler,
        }
    }

    /// Resolves the effective worker count on this hardware.
    pub fn resolve_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Whether a run on `n` nodes should delegate to the serial engine
    /// outright (too small, or auto-resolved to a single worker).
    pub fn use_serial(&self, n: usize) -> bool {
        let min_nodes = self.min_nodes.unwrap_or(PARALLEL_MIN_NODES);
        n < min_nodes || (self.workers.is_none() && self.resolve_workers() < 2)
    }
}

/// The contiguous node partition shared by phase 1 chunking, phase-2a
/// sender chunks, and phase-2b destination shards: `workers + 1`
/// ascending bounds with `bounds[0] = 0` and `bounds[workers] = |V|`,
/// chosen so each shard owns roughly the same number of port slots.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Plans `workers` shards over `graph`, balancing by CSR slot count
    /// (degree sum): shard `s` is the node range `bounds[s] ..
    /// bounds[s + 1]`, and both its phase-2b merge work and its slice of
    /// the flat stores are proportional to its slots.
    pub fn new(graph: &Graph, workers: usize) -> Self {
        let n = graph.node_count();
        let workers = workers.clamp(1, n.max(1));
        let total_slots = graph.port_slot_count();
        let mut bounds = Vec::with_capacity(workers + 1);
        bounds.push(0);
        for s in 1..workers {
            // The node where the slot prefix first reaches s/workers of
            // the total: binary search over the monotone CSR offsets.
            let target = total_slots * s / workers;
            let mut lo = *bounds.last().unwrap();
            let mut hi = n;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if graph.csr_offset(mid as NodeId) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            bounds.push(lo);
        }
        bounds.push(n);
        ShardPlan { bounds }
    }

    /// The number of shards (= workers).
    pub fn workers(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The ascending node bounds, `workers + 1` entries.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The destination shard owning receiver `node`.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        // partition_point over the interior bounds: the first shard whose
        // upper bound exceeds `node`.
        self.bounds[1..self.bounds.len() - 1].partition_point(|&b| b <= node as usize)
    }

    /// Splits `slice` (of length |V|) into one mutable chunk per shard.
    pub fn chunks_mut<'a, T>(&self, mut slice: &'a mut [T]) -> Vec<&'a mut [T]> {
        let mut out = Vec::with_capacity(self.workers());
        for w in self.bounds.windows(2) {
            let (head, tail) = slice.split_at_mut(w[1] - w[0]);
            out.push(head);
            slice = tail;
        }
        out
    }
}

/// Chunk-granularity target of the work-stealing scheduler: each shard
/// is cut into about this many descriptors. Large enough that the
/// per-chunk deque locking stays under ~1% of useful work on the graphs
/// worth parallelizing, small enough that a hub-heavy shard yields
/// stealable remainders while its owner is stuck on the hub chunk.
pub const CHUNKS_PER_WORKER: usize = 8;

/// One work-stealing chunk: a contiguous sender node range and the
/// shard (= owning worker's deque) it was seeded onto.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkDesc {
    /// First node of the chunk.
    pub start: usize,
    /// One past the last node of the chunk.
    pub end: usize,
    /// The shard the range belongs to — its deliveries' *senders* live
    /// in shard `shard`, so worker `shard` owns the chunk initially.
    pub shard: usize,
}

/// The fine-grained partition the work-stealing scheduler deals onto
/// the per-worker deques: each [`ShardPlan`] shard cut into roughly
/// [`CHUNKS_PER_WORKER`] contiguous descriptors. Chunks are listed in
/// ascending node order, so "absorb per-chunk results by chunk index"
/// is exactly "absorb in serial sender order".
///
/// The cut is **hybrid**: a chunk closes once it reaches either the
/// shard's per-chunk node share or its per-chunk slot share (always
/// taking at least one node). Node-capping bounds the constant
/// per-node cost per chunk; slot-capping isolates hubs into chunks of
/// their own, which is what makes the remainder of a hub-heavy shard
/// stealable. The plan depends only on the graph and the shard plan —
/// never on timing — so every run over the same instance executes the
/// identical chunk list.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    chunks: Vec<ChunkDesc>,
}

impl ChunkPlan {
    /// Cuts each shard of `plan` into hybrid node/slot-capped chunks.
    pub fn new(graph: &Graph, plan: &ShardPlan) -> Self {
        let mut chunks = Vec::with_capacity(plan.workers() * CHUNKS_PER_WORKER);
        for (shard, w) in plan.bounds().windows(2).enumerate() {
            let (lo, hi) = (w[0], w[1]);
            let nodes = hi - lo;
            if nodes == 0 {
                continue;
            }
            let slots = graph.csr_offset(hi as NodeId) - graph.csr_offset(lo as NodeId);
            let target_nodes = nodes.div_ceil(CHUNKS_PER_WORKER).max(1);
            let target_slots = slots.div_ceil(CHUNKS_PER_WORKER).max(1);
            let mut start = lo;
            let mut chunk_slots = 0usize;
            for v in lo..hi {
                chunk_slots += graph.degree(v as NodeId);
                let filled = v + 1 - start >= target_nodes || chunk_slots >= target_slots;
                if filled || v + 1 == hi {
                    chunks.push(ChunkDesc {
                        start,
                        end: v + 1,
                        shard,
                    });
                    start = v + 1;
                    chunk_slots = 0;
                }
            }
        }
        ChunkPlan { chunks }
    }

    /// The chunk descriptors, ascending by node range.
    pub fn chunks(&self) -> &[ChunkDesc] {
        &self.chunks
    }

    /// The number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the plan is empty (zero-node graph).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Splits `slice` (of length |V|) into one mutable chunk per
    /// descriptor, in chunk order.
    pub fn chunks_mut<'a, T>(&self, mut slice: &'a mut [T]) -> Vec<&'a mut [T]> {
        let mut out = Vec::with_capacity(self.chunks.len());
        for c in &self.chunks {
            let (head, tail) = slice.split_at_mut(c.end - c.start);
            out.push(head);
            slice = tail;
        }
        out
    }
}

/// One buffered delivery: receiver node, absolute flat CSR slot, letter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Write {
    /// The receiving node.
    pub node: u32,
    /// The receiver-side flat slot (`csr_offset(node) + ψ_node(sender)`).
    pub slot: u32,
    /// The letter delivered.
    pub letter: Letter,
}

/// A worker-private phase-2a write buffer: the deliveries of one sender
/// chunk, pre-bucketed by destination shard, plus the chunk's non-`ε`
/// transmission count. Reused across rounds ([`DeliveryBuffer::clear`]
/// keeps the bucket capacities).
#[derive(Clone, Debug, Default)]
pub struct DeliveryBuffer {
    buckets: Vec<Vec<Write>>,
    /// Non-`ε` transmissions resolved into this buffer since the last
    /// [`DeliveryBuffer::clear`].
    pub sent: u64,
}

impl DeliveryBuffer {
    /// An empty buffer with one bucket per destination shard.
    pub fn new(shards: usize) -> Self {
        DeliveryBuffer {
            buckets: (0..shards).map(|_| Vec::new()).collect(),
            sent: 0,
        }
    }

    /// Empties every bucket and the sent counter, keeping capacities.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.sent = 0;
    }

    /// The bucket destined to shard `s`, in push (= sender) order.
    pub fn bucket(&self, s: usize) -> &[Write] {
        &self.buckets[s]
    }

    /// Buffers one delivery.
    #[inline]
    pub fn push(&mut self, plan: &ShardPlan, node: NodeId, slot: usize, letter: Letter) {
        self.buckets[plan.shard_of(node)].push(Write {
            node,
            slot: slot as u32,
            letter,
        });
    }

    /// Buffers the full broadcast of `letter` from `v` through the
    /// reverse-port map — the buffered twin of [`FlatPorts::broadcast`].
    /// Counts the transmission.
    #[inline]
    pub fn broadcast(&mut self, graph: &Graph, plan: &ShardPlan, v: NodeId, letter: Letter) {
        self.sent += 1;
        let nbrs = graph.neighbors(v);
        let rev = graph.reverse_ports(v);
        for (&u, &rp) in nbrs.iter().zip(rev) {
            self.push(plan, u, graph.csr_offset(u) + rp as usize, letter);
        }
    }
}

/// Phase 2b, destination-sharded: one scoped worker per shard applies —
/// in fixed worker order — every buffer's bucket for its shard, through
/// a disjoint [`crate::engine::PortShard`] view. Workers never touch the
/// same CSR slot or count row, and within a shard the writes land in
/// ascending sender order (buffer order × push order).
pub fn merge_sharded(
    ports: &mut FlatPorts,
    graph: &Graph,
    plan: &ShardPlan,
    buffers: &[DeliveryBuffer],
) {
    let shards = ports.shards_mut(graph, plan.bounds());
    std::thread::scope(|scope| {
        for (s, mut shard) in shards.into_iter().enumerate() {
            scope.spawn(move || {
                for buffer in buffers {
                    for w in buffer.bucket(s) {
                        shard.deliver(w.node as usize, w.slot as usize, w.letter);
                    }
                }
            });
        }
    });
}

/// Phase 2b, serial replay: applies every buffer in fixed worker order
/// (and bucket order within a buffer) through the ordinary
/// [`FlatPorts::deliver`]. The differential oracle for
/// [`merge_sharded`]; both produce byte-identical stores.
pub fn merge_replay(ports: &mut FlatPorts, buffers: &[DeliveryBuffer]) {
    for buffer in buffers {
        for s in 0..buffer.buckets.len() {
            for w in buffer.bucket(s) {
                ports.deliver(w.node as usize, w.slot as usize, w.letter);
            }
        }
    }
}

/// Applies the configured merge strategy.
pub fn merge(
    strategy: MergeStrategy,
    ports: &mut FlatPorts,
    graph: &Graph,
    plan: &ShardPlan,
    buffers: &[DeliveryBuffer],
) {
    match strategy {
        MergeStrategy::DestinationSharded => merge_sharded(ports, graph, plan, buffers),
        MergeStrategy::BufferReplay => merge_replay(ports, buffers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::generators;

    #[test]
    fn shard_plan_covers_and_balances() {
        let g = generators::gnp(500, 0.05, 3);
        for workers in [1, 2, 3, 7, 16] {
            let plan = ShardPlan::new(&g, workers);
            assert_eq!(plan.workers(), workers);
            assert_eq!(plan.bounds()[0], 0);
            assert_eq!(*plan.bounds().last().unwrap(), 500);
            for w in plan.bounds().windows(2) {
                assert!(w[0] <= w[1]);
            }
            // Every node maps into the shard whose range contains it.
            for v in 0..500u32 {
                let s = plan.shard_of(v);
                assert!(plan.bounds()[s] <= v as usize && (v as usize) < plan.bounds()[s + 1]);
            }
            // Slot balance: no shard owns more than ~2 ideal shares plus
            // one hub (gnp(500, 0.05) has no extreme hubs).
            let total = g.port_slot_count();
            for w in plan.bounds().windows(2) {
                let slots = g.csr_offset(w[1] as u32) - g.csr_offset(w[0] as u32);
                assert!(slots <= total * 2 / workers + g.max_degree());
            }
        }
    }

    #[test]
    fn shard_plan_handles_more_workers_than_nodes() {
        let g = generators::path(3);
        let plan = ShardPlan::new(&g, 16);
        assert_eq!(*plan.bounds().last().unwrap(), 3);
        assert!(plan.workers() <= 3);
    }

    #[test]
    fn merges_agree_with_direct_broadcast() {
        use stoneage_core::Letter;
        let g = generators::gnp(60, 0.15, 9);
        for workers in [1, 2, 5] {
            let plan = ShardPlan::new(&g, workers);
            // Every third node broadcasts a letter derived from its id —
            // the serial ground truth uses FlatPorts::broadcast directly.
            let mut serial = FlatPorts::new(&g, 4, Letter(0));
            let mut buffers: Vec<DeliveryBuffer> = (0..plan.workers())
                .map(|_| DeliveryBuffer::new(plan.workers()))
                .collect();
            for v in (0..60u32).step_by(3) {
                let letter = Letter(1 + (v % 3) as u16);
                serial.broadcast(&g, v, letter);
                let chunk = plan.shard_of(v); // sender chunks reuse the plan
                buffers[chunk].broadcast(&g, &plan, v, letter);
            }
            let mut sharded = FlatPorts::new(&g, 4, Letter(0));
            merge_sharded(&mut sharded, &g, &plan, &buffers);
            let mut replayed = FlatPorts::new(&g, 4, Letter(0));
            merge_replay(&mut replayed, &buffers);
            assert_eq!(
                serial.dense_counts(&g),
                sharded.dense_counts(&g),
                "w{workers}"
            );
            assert_eq!(
                serial.dense_counts(&g),
                replayed.dense_counts(&g),
                "w{workers}"
            );
            for slot in 0..g.port_slot_count() {
                assert_eq!(
                    serial.letter_at(slot),
                    sharded.letter_at(slot),
                    "w{workers}"
                );
                assert_eq!(
                    serial.letter_at(slot),
                    replayed.letter_at(slot),
                    "w{workers}"
                );
            }
            let sent: u64 = buffers.iter().map(|b| b.sent).sum();
            assert_eq!(sent, (0..60).step_by(3).len() as u64);
        }
    }

    #[test]
    fn forced_policy_never_falls_back() {
        let p = ParallelPolicy::forced(7, MergeStrategy::BufferReplay);
        assert!(!p.use_serial(1));
        assert_eq!(p.resolve_workers(), 7);
        assert_eq!(p.round, RoundMode::Joined, "forced defaults to the oracle");
        let auto = ParallelPolicy::default();
        assert!(auto.use_serial(PARALLEL_MIN_NODES - 1));
    }

    #[test]
    fn chunk_plan_partitions_every_shard() {
        for g in [
            generators::gnp(500, 0.05, 3),
            generators::power_law(500, 2, 0.9, 3),
            generators::hub_and_spoke(3, 200),
            generators::path(5),
        ] {
            let n = g.node_count();
            for workers in [1, 2, 7] {
                let plan = ShardPlan::new(&g, workers);
                let chunks = ChunkPlan::new(&g, &plan);
                // Chunks tile 0..n in ascending order…
                let mut next = 0;
                for c in chunks.chunks() {
                    assert_eq!(c.start, next, "w{workers}");
                    assert!(c.end > c.start, "w{workers}");
                    next = c.end;
                    // …and each chunk stays inside its shard.
                    assert!(plan.bounds()[c.shard] <= c.start);
                    assert!(c.end <= plan.bounds()[c.shard + 1]);
                }
                assert_eq!(next, n, "w{workers}");
                assert!(chunks.len() >= plan.workers());
            }
        }
    }

    #[test]
    fn chunk_plan_isolates_hubs() {
        // On hub_and_spoke the slot cap must cut each hub into (nearly)
        // its own chunk, leaving the spoke ranges stealable.
        let g = generators::hub_and_spoke(2, 1000);
        let plan = ShardPlan::new(&g, 2);
        let chunks = ChunkPlan::new(&g, &plan);
        let hub_chunk = chunks.chunks().iter().find(|c| c.start == 0).unwrap();
        assert!(
            hub_chunk.end - hub_chunk.start <= 2,
            "hub 0 shares a chunk with {} spokes",
            hub_chunk.end - hub_chunk.start - 1
        );
    }

    #[test]
    fn chunk_plan_splitting_matches_descriptors() {
        let g = generators::power_law(300, 2, 0.8, 1);
        let plan = ShardPlan::new(&g, 3);
        let chunks = ChunkPlan::new(&g, &plan);
        let mut data: Vec<usize> = (0..300).collect();
        let views = chunks.chunks_mut(&mut data);
        assert_eq!(views.len(), chunks.len());
        for (c, view) in chunks.chunks().iter().zip(&views) {
            assert_eq!(view.first(), Some(&c.start));
            assert_eq!(view.last(), Some(&(c.end - 1)));
        }
    }

    #[test]
    fn steal_stats_absorb_sums() {
        let mut a = StealStats {
            steals: 2,
            chunks: 10,
        };
        a.absorb(StealStats {
            steals: 1,
            chunks: 5,
        });
        assert_eq!(
            a,
            StealStats {
                steals: 3,
                chunks: 15
            }
        );
    }

    #[test]
    fn scheduler_resolution_honors_policy_and_env() {
        let statik = ParallelPolicy::default();
        let stealing = ParallelPolicy::default().with_stealing();
        assert_eq!(statik.scheduler, ChunkScheduler::Static, "Static default");
        assert_eq!(stealing.scheduler, ChunkScheduler::Stealing);
        assert_eq!(
            ParallelPolicy::default()
                .with_scheduler(ChunkScheduler::Stealing)
                .scheduler,
            ChunkScheduler::Stealing
        );
        // Like the round mode, the suite may already be running under a
        // forced scheduler (the CI stealing leg); assert against the env.
        match std::env::var(SCHEDULER_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("stealing") => {
                assert_eq!(statik.resolve_scheduler(), ChunkScheduler::Stealing);
                assert_eq!(stealing.resolve_scheduler(), ChunkScheduler::Stealing);
            }
            Ok(v) if v.eq_ignore_ascii_case("static") => {
                assert_eq!(statik.resolve_scheduler(), ChunkScheduler::Static);
                assert_eq!(stealing.resolve_scheduler(), ChunkScheduler::Static);
            }
            _ => {
                assert_eq!(statik.resolve_scheduler(), ChunkScheduler::Static);
                assert_eq!(stealing.resolve_scheduler(), ChunkScheduler::Stealing);
            }
        }
    }

    #[test]
    fn round_mode_resolution_honors_policy_and_env() {
        let joined = ParallelPolicy::default();
        let fused = ParallelPolicy::default().with_round(RoundMode::Fused);
        assert_eq!(joined.round, RoundMode::Joined, "Joined is the default");
        // The suite may itself be running under a forced round mode (the
        // CI fused job); assert against whatever the environment says.
        match std::env::var(ROUND_MODE_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("fused") => {
                assert_eq!(joined.resolve_round(), RoundMode::Fused);
                assert_eq!(fused.resolve_round(), RoundMode::Fused);
            }
            Ok(v) if v.eq_ignore_ascii_case("joined") => {
                assert_eq!(joined.resolve_round(), RoundMode::Joined);
                assert_eq!(fused.resolve_round(), RoundMode::Joined);
            }
            _ => {
                assert_eq!(joined.resolve_round(), RoundMode::Joined);
                assert_eq!(fused.resolve_round(), RoundMode::Fused);
            }
        }
    }
}
