//! The unified **`Simulation` builder**: one entry point over the
//! synchronous, scoped, and asynchronous executors.
//!
//! Three PRs of engine work had fragmented the crate's surface into a
//! dozen `run_*` free functions — one per (backend × inputs × observer ×
//! parallelism) combination — three config structs, three outcome types,
//! and two observer traits. Every new capability multiplied the function
//! count instead of composing. This module replaces that combinatorial
//! layer with a single builder:
//!
//! * **One entry point.** [`Simulation`] owns the graph, protocol, seed,
//!   inputs, budget, observer, parallel policy, and backend selection;
//!   [`Simulation::run`] executes whichever [`Backend`] is selected.
//! * **One outcome.** [`Outcome`] carries the per-node outputs, the final
//!   per-node *states* (which the legacy outcome types discarded), a
//!   normalized [`Cost`], the worker count the run actually used, and the
//!   backend-specific extras in [`Detail`].
//! * **One observer.** [`Observer`] subsumes the legacy
//!   [`SyncObserver`] / [`AsyncObserver`] pair with default no-op
//!   hooks; existing observers keep working through the [`AdaptSync`] and
//!   [`AdaptAsync`] adapters.
//!
//! The builder is a *veneer*: it dispatches to the exact engines the
//! retired `run_*` functions ran, so outcomes are **bit-identical per
//! seed** to every legacy entry point it replaced (pinned by the
//! fingerprint suite in `tests/builder_parity.rs` and by the unchanged
//! fingerprint constants). The `run_*` shims themselves are gone — the
//! builder is the *only* entry point; see the README migration table.
//! Cross-cutting capabilities land here once and serve every backend:
//! [`Simulation::checkpoint_every`] / [`Simulation::resume_from`] wire
//! the [`crate::snapshot`] layer through all three executors, and future
//! backends become new [`Backend`] variants or [`AsyncOptions`] fields
//! instead of four more free functions each.
//!
//! # Example
//!
//! ```
//! use stoneage_core::{AsMulti, Synchronized};
//! use stoneage_graph::generators;
//! use stoneage_sim::adversary::UniformRandom;
//! use stoneage_sim::{AsyncOptions, Backend, Cost, Simulation};
//! use stoneage_testkit::count_neighbors_quiet;
//!
//! let graph = generators::gnp(40, 0.15, 7);
//! let protocol = Synchronized::new(count_neighbors_quiet(2));
//!
//! // Asynchronous execution under an oblivious adversary.
//! let adversary = UniformRandom { seed: 3 };
//! let outcome = Simulation::asynchronous(&protocol, &graph, &adversary)
//!     .seed(1)
//!     .run()
//!     .expect("the synchronized protocol terminates");
//! assert_eq!(outcome.outputs.len(), graph.node_count());
//! assert!(matches!(outcome.cost, Cost::TimeUnits(t) if t > 0.0));
//!
//! // The same protocol, lockstep synchronous (an Fsm runs the sync
//! // backend through the AsMulti view), with explicit inputs.
//! let sync_protocol = AsMulti(protocol.clone());
//! let inputs = vec![0usize; graph.node_count()];
//! let outcome = Simulation::sync(&sync_protocol, &graph)
//!     .seed(1)
//!     .inputs(&inputs)
//!     .budget(10_000)
//!     .run()
//!     .unwrap();
//! assert!(matches!(outcome.cost, Cost::Rounds(r) if r > 0));
//! assert_eq!(outcome.states.len(), graph.node_count());
//! ```

use std::fmt;

use stoneage_core::{Fsm, MultiFsm, Protocol};
use stoneage_graph::{Graph, NodeId, TopologyEvent};

use crate::churn::{self, ChurnPlan, ChurnSummary};
use crate::faults::{FaultPlan, FaultScope, FaultSummary, FaultWire, FaultsArg, LinkFault};
#[cfg(feature = "parallel")]
use crate::parbuf::ParallelPolicy;
use crate::parbuf::StealStats;
use crate::scoped::{self, ScopedDelivery, ScopedMultiFsm, ScopedOutcome};
use crate::snapshot::{self, SnapArgs, SnapMeta, SnapState, Snapshot, SnapshotError, StateCodec};
use crate::sync_exec::{self, NoopObserver, SyncConfig, SyncObserver, SyncOutcome};
use crate::{
    async_exec, Adversary, AsyncConfig, AsyncObserver, AsyncOutcome, ExecError, NoopAsyncObserver,
    SchedulerKind,
};

/// The normalized run-time of a completed simulation, in the unit native
/// to the backend that produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cost {
    /// Lockstep rounds until the first output configuration — the paper's
    /// run-time measure in the synchronous setting (Sync and Scoped
    /// backends).
    Rounds(u64),
    /// Completion time normalized by the largest step-length/delay
    /// parameter consumed — the paper's *time unit* measure
    /// `T_Π(I, A, R)` (Async backend).
    TimeUnits(f64),
    /// Discrete engine events. Reserved for event-budgeted backends
    /// (no current backend reports its cost this way).
    Events(u64),
}

impl Cost {
    /// The cost as a plain `f64`, for cross-backend tables and plots.
    pub fn value(&self) -> f64 {
        match *self {
            Cost::Rounds(r) => r as f64,
            Cost::TimeUnits(t) => t,
            Cost::Events(e) => e as f64,
        }
    }
}

/// Backend-specific extras of an [`Outcome`] — everything the legacy
/// outcome types carried beyond outputs and cost.
#[derive(Clone, Debug)]
pub enum Detail {
    /// Extras of a [`Backend::Sync`] run.
    Sync {
        /// Total non-`ε` transmissions.
        messages_sent: u64,
        /// What a [`Simulation::with_churn`] plan did to the topology:
        /// effective crash/restart/edge-event counts and the final
        /// live-node set. `None` on churn-free runs.
        churn: Option<ChurnSummary>,
        /// What a [`Simulation::with_faults`] plan did to the message
        /// channels. `None` on fault-free runs.
        faults: Option<FaultSummary>,
    },
    /// Extras of a [`Backend::Async`] run.
    Async {
        /// Raw (unnormalized) completion time.
        completion_time: f64,
        /// The largest step-length or delay parameter consumed — the
        /// paper's **time unit**.
        time_unit: f64,
        /// Total node steps executed.
        total_steps: u64,
        /// Total non-`ε` transmissions (each fans out to all neighbors).
        messages_sent: u64,
        /// Total port writes.
        deliveries: u64,
        /// Deliveries overwritten before the receiver could observe them
        /// — messages lost to the no-buffer port semantics.
        lost_overwrites: u64,
        /// What a [`Simulation::with_churn`] plan did to the topology.
        /// `None` on churn-free runs.
        churn: Option<ChurnSummary>,
        /// What a [`Simulation::with_faults`] plan did to the message
        /// channels. `None` on fault-free runs.
        faults: Option<FaultSummary>,
    },
    /// Extras of a [`Backend::Scoped`] run.
    Scoped {
        /// Every port-selected delivery, in round order — the engine-level
        /// witness the matching runner extracts matched edges from.
        scoped_deliveries: Vec<ScopedDelivery>,
        /// What a [`Simulation::with_churn`] plan did to the topology.
        /// `None` on churn-free runs.
        churn: Option<ChurnSummary>,
        /// What a [`Simulation::with_faults`] plan did to the message
        /// channels. `None` on fault-free runs.
        faults: Option<FaultSummary>,
    },
}

impl Detail {
    /// The churn summary of this run, if it ran under a
    /// [`Simulation::with_churn`] plan.
    pub fn churn(&self) -> Option<&ChurnSummary> {
        match self {
            Detail::Sync { churn, .. }
            | Detail::Async { churn, .. }
            | Detail::Scoped { churn, .. } => churn.as_ref(),
        }
    }

    /// The fault summary of this run, if it ran under a
    /// [`Simulation::with_faults`] plan.
    pub fn faults(&self) -> Option<&FaultSummary> {
        match self {
            Detail::Sync { faults, .. }
            | Detail::Async { faults, .. }
            | Detail::Scoped { faults, .. } => faults.as_ref(),
        }
    }
}

/// Result of a [`Simulation`] that reached an output configuration.
#[derive(Clone, Debug)]
pub struct Outcome<P: Protocol> {
    /// Per-node outputs, decoded from the output states.
    pub outputs: Vec<u64>,
    /// The final per-node states (every node is in an output state).
    pub states: Vec<P::State>,
    /// The backend's normalized run-time.
    pub cost: Cost,
    /// Worker threads the run actually used: 1 on the serial path
    /// (either because no `ParallelPolicy` was set or because the
    /// policy's own small-instance threshold delegated to the serial
    /// engine), otherwise the policy's resolved count clamped to the
    /// node count (the shard plan never spawns more workers than
    /// nodes). Bench snapshots should record this instead of guessing
    /// from host CPUs.
    pub workers: usize,
    /// Work-stealing counters: chunks executed and chunks stolen by a
    /// non-owner worker. All-zero unless the run used a
    /// [`ParallelPolicy`] with [`crate::ChunkScheduler::Stealing`]
    /// (`chunks` counts descriptors, so it is zero on the static
    /// schedule too). `chunks` is deterministic; **`steals` is
    /// timing-dependent** — report it, never fingerprint it.
    pub steals: StealStats,
    /// Backend-specific extras.
    pub detail: Detail,
}

impl<P: Protocol> Outcome<P> {
    /// Rounds until the first output configuration, when the backend
    /// measures cost in rounds.
    pub fn rounds(&self) -> Option<u64> {
        match self.cost {
            Cost::Rounds(r) => Some(r),
            _ => None,
        }
    }

    /// Total non-`ε` transmissions, for the backends that count them.
    pub fn messages_sent(&self) -> Option<u64> {
        match self.detail {
            Detail::Sync { messages_sent, .. } | Detail::Async { messages_sent, .. } => {
                Some(messages_sent)
            }
            Detail::Scoped { .. } => None,
        }
    }

    /// The churn summary, if this run executed under a
    /// [`Simulation::with_churn`] plan.
    pub fn churn(&self) -> Option<&ChurnSummary> {
        self.detail.churn()
    }

    /// The fault summary, if this run executed under a
    /// [`Simulation::with_faults`] plan.
    pub fn faults(&self) -> Option<&FaultSummary> {
        self.detail.faults()
    }

    /// The scoped-delivery witness list of a [`Backend::Scoped`] run.
    pub fn scoped_deliveries(&self) -> Option<&[ScopedDelivery]> {
        match &self.detail {
            Detail::Scoped {
                scoped_deliveries, ..
            } => Some(scoped_deliveries),
            _ => None,
        }
    }

    /// This outcome as the legacy [`SyncOutcome`], if it came from
    /// [`Backend::Sync`].
    pub fn into_sync_outcome(self) -> Option<SyncOutcome> {
        match (self.cost, self.detail) {
            (Cost::Rounds(rounds), Detail::Sync { messages_sent, .. }) => Some(SyncOutcome {
                outputs: self.outputs,
                rounds,
                messages_sent,
            }),
            _ => None,
        }
    }

    /// This outcome as the legacy [`AsyncOutcome`], if it came from
    /// [`Backend::Async`].
    pub fn into_async_outcome(self) -> Option<AsyncOutcome> {
        match (self.cost, self.detail) {
            (
                Cost::TimeUnits(normalized_time),
                Detail::Async {
                    completion_time,
                    time_unit,
                    total_steps,
                    messages_sent,
                    deliveries,
                    lost_overwrites,
                    ..
                },
            ) => Some(AsyncOutcome {
                outputs: self.outputs,
                completion_time,
                time_unit,
                normalized_time,
                total_steps,
                messages_sent,
                deliveries,
                lost_overwrites,
            }),
            _ => None,
        }
    }

    /// This outcome as the legacy [`ScopedOutcome`], if it came from
    /// [`Backend::Scoped`].
    pub fn into_scoped_outcome(self) -> Option<ScopedOutcome> {
        match (self.cost, self.detail) {
            (
                Cost::Rounds(rounds),
                Detail::Scoped {
                    scoped_deliveries, ..
                },
            ) => Some(ScopedOutcome {
                outputs: self.outputs,
                rounds,
                scoped_deliveries,
            }),
            _ => None,
        }
    }
}

/// The unified execution observer: one trait over every backend, with
/// default no-op hooks so an observer implements only what it watches.
///
/// Existing [`SyncObserver`] / [`AsyncObserver`] implementations plug in
/// unchanged through [`AdaptSync`] / [`AdaptAsync`].
pub trait Observer<S> {
    /// Called by the round-based backends (Sync, Scoped) after round
    /// `round` (1-based) has been applied to all nodes.
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        let _ = (round, states);
    }

    /// Called by the Async backend after node `v` applied its step `t`
    /// at time `time`.
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        let _ = (time, v, t, state);
    }

    /// Called at every checkpoint boundary a [`Simulation::checkpoint_every`]
    /// cadence hits, with the freshly captured [`Snapshot`]. The observer
    /// owns persistence: call [`Snapshot::to_bytes`] and write the frame
    /// wherever resumption will find it. Never called on runs without a
    /// checkpoint cadence.
    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        let _ = snapshot;
    }
}

// Forwarding impls so callers holding an observer indirectly — a
// `&mut O` reborrow, or a `Box<dyn Observer<S>>` composed at runtime
// (the simulation server builds its event-streaming observers this
// way) — can hand it to `Simulation::observe` without unwrapping.
impl<S, O: Observer<S> + ?Sized> Observer<S> for &mut O {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        (**self).on_round_end(round, states);
    }

    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        (**self).on_step(time, v, t, state);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        (**self).on_checkpoint(snapshot);
    }
}

impl<S, O: Observer<S> + ?Sized> Observer<S> for Box<O> {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        (**self).on_round_end(round, states);
    }

    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        (**self).on_step(time, v, t, state);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        (**self).on_checkpoint(snapshot);
    }
}

/// Adapts any legacy [`SyncObserver`] into the
/// unified [`Observer`] (its `on_step` hook stays a no-op).
pub struct AdaptSync<O>(pub O);

impl<S, O: SyncObserver<S>> Observer<S> for AdaptSync<O> {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        self.0.on_round_end(round, states);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.0.on_checkpoint(snapshot);
    }
}

/// Adapts any legacy [`AsyncObserver`] into the
/// unified [`Observer`] (its `on_round_end` hook stays a no-op).
pub struct AdaptAsync<O>(pub O);

impl<S, O: AsyncObserver<S>> Observer<S> for AdaptAsync<O> {
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        self.0.on_step(time, v, t, state);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.0.on_checkpoint(snapshot);
    }
}

/// Bridges the unified observer back onto the engines' legacy hook
/// traits, so the engines stay monomorphized over one observer shape.
struct Bridge<'a, 'o, S>(&'a mut (dyn Observer<S> + 'o));

impl<S> SyncObserver<S> for Bridge<'_, '_, S> {
    fn on_round_end(&mut self, round: u64, states: &[S]) {
        self.0.on_round_end(round, states);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.0.on_checkpoint(snapshot);
    }
}

impl<S> AsyncObserver<S> for Bridge<'_, '_, S> {
    fn on_step(&mut self, time: f64, v: NodeId, t: u64, state: &S) {
        self.0.on_step(time, v, t, state);
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        self.0.on_checkpoint(snapshot);
    }
}

/// Options of the asynchronous backend: the oblivious adversary plus the
/// scheduler knobs of the legacy [`AsyncConfig`].
#[derive(Clone, Copy)]
pub struct AsyncOptions<'a> {
    /// The oblivious scheduling policy choosing every step length
    /// `L_{v,t}` and delivery delay `D_{v,t,u}`.
    pub adversary: &'a dyn Adversary,
    /// Event queue driving the run. Outcomes are bit-identical across
    /// kinds; only throughput differs.
    pub scheduler: SchedulerKind,
    /// Explicit calendar bucket width overriding the executor's estimate
    /// (see [`crate::schedule`]). Performance-only: cannot affect
    /// outcomes. Ignored by the heap scheduler.
    pub bucket_width: Option<f64>,
}

impl<'a> AsyncOptions<'a> {
    /// Options running `adversary` under the default scheduler
    /// (calendar wheel, auto-chosen bucket width).
    pub fn new(adversary: &'a dyn Adversary) -> Self {
        AsyncOptions {
            adversary,
            scheduler: SchedulerKind::default(),
            bucket_width: None,
        }
    }

    /// These options with the given scheduler kind.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// These options with an explicit calendar bucket width.
    pub fn with_bucket_width(mut self, width: f64) -> Self {
        self.bucket_width = Some(width);
        self
    }
}

impl fmt::Debug for AsyncOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncOptions")
            .field("adversary", &self.adversary.name())
            .field("scheduler", &self.scheduler)
            .field("bucket_width", &self.bucket_width)
            .finish()
    }
}

/// Which executor a [`Simulation`] runs on.
///
/// The constructor that matches the protocol's transition flavor presets
/// this ([`Simulation::sync`] → `Sync`, [`Simulation::scoped`] →
/// `Scoped`, [`Simulation::asynchronous`] → `Async`); selecting a
/// backend the protocol cannot drive is reported as
/// [`ExecError::Config`] at [`Simulation::run`] time. Future executors
/// (adaptive-resize wheel, NUMA-sharded schedules) slot in as new
/// variants or [`AsyncOptions`] fields.
#[derive(Clone, Copy, Debug, Default)]
pub enum Backend<'a> {
    /// The lockstep synchronous round executor for
    /// [`MultiFsm`] protocols (Theorems 3.1/3.4 make this the
    /// environment protocol *descriptions* assume).
    #[default]
    Sync,
    /// The lockstep executor for the port-select extension
    /// ([`ScopedMultiFsm`] protocols).
    Scoped,
    /// The fully asynchronous adversarial executor for single-letter
    /// [`Fsm`] protocols.
    Async(AsyncOptions<'a>),
}

impl Backend<'_> {
    /// Diagnostic name used in [`ExecError::Config`] messages.
    fn name(&self) -> &'static str {
        match self {
            Backend::Sync => "Sync",
            Backend::Scoped => "Scoped",
            Backend::Async(_) => "Async",
        }
    }
}

/// A capability row captured (monomorphized) by the constructor matching
/// the protocol's transition flavor; `run` dispatches through whichever
/// row the selected backend needs and reports a mismatch as
/// [`ExecError::Config`].
type ObsArg<'a, P> = Option<&'a mut dyn Observer<<P as Protocol>::State>>;

/// The snapshot plumbing every capability row threads to its engine:
/// cadence, resume frame, state codec, and the binding header metadata.
type SnapRef<'a, P> = &'a SnapArgs<'a, <P as Protocol>::State>;

type SyncFn<P> = fn(
    &P,
    &Graph,
    &[usize],
    &SyncConfig,
    ObsArg<'_, P>,
    SnapRef<'_, P>,
    FaultsArg<'_>,
) -> Result<(SyncOutcome, Vec<<P as Protocol>::State>), ExecError>;

type AsyncFn<P> = fn(
    &P,
    &Graph,
    &[usize],
    &dyn Adversary,
    &AsyncConfig,
    ObsArg<'_, P>,
    SnapRef<'_, P>,
    FaultsArg<'_>,
) -> Result<(AsyncOutcome, Vec<<P as Protocol>::State>), ExecError>;

type ScopedFn<P> = fn(
    &P,
    &Graph,
    &[usize],
    u64,
    u64,
    ObsArg<'_, P>,
    SnapRef<'_, P>,
    FaultsArg<'_>,
) -> Result<(ScopedOutcome, Vec<<P as Protocol>::State>), ExecError>;

#[cfg(feature = "parallel")]
type SyncParFn<P> = fn(
    &P,
    &Graph,
    &[usize],
    &SyncConfig,
    &ParallelPolicy,
    ObsArg<'_, P>,
    SnapRef<'_, P>,
    FaultsArg<'_>,
    &mut StealStats,
) -> Result<(SyncOutcome, Vec<<P as Protocol>::State>), ExecError>;

#[cfg(feature = "parallel")]
type ScopedParFn<P> = fn(
    &P,
    &Graph,
    &[usize],
    u64,
    u64,
    &ParallelPolicy,
    ObsArg<'_, P>,
    SnapRef<'_, P>,
    FaultsArg<'_>,
    &mut StealStats,
) -> Result<(ScopedOutcome, Vec<<P as Protocol>::State>), ExecError>;

type SyncChurnFn<P> =
    fn(
        &P,
        &Graph,
        &[usize],
        &SyncConfig,
        &ChurnPlan,
        ObsArg<'_, P>,
        SnapRef<'_, P>,
        FaultsArg<'_>,
    ) -> Result<(SyncOutcome, Vec<<P as Protocol>::State>, ChurnSummary), ExecError>;

type AsyncChurnFn<P> =
    fn(
        &P,
        &Graph,
        &[usize],
        &dyn Adversary,
        &AsyncConfig,
        &ChurnPlan,
        ObsArg<'_, P>,
        SnapRef<'_, P>,
        FaultsArg<'_>,
    ) -> Result<(AsyncOutcome, Vec<<P as Protocol>::State>, ChurnSummary), ExecError>;

type ScopedChurnFn<P> =
    fn(
        &P,
        &Graph,
        &[usize],
        u64,
        u64,
        &ChurnPlan,
        ObsArg<'_, P>,
        SnapRef<'_, P>,
        FaultsArg<'_>,
    ) -> Result<(ScopedOutcome, Vec<<P as Protocol>::State>, ChurnSummary), ExecError>;

#[cfg(feature = "parallel")]
type SyncChurnParFn<P> =
    fn(
        &P,
        &Graph,
        &[usize],
        &SyncConfig,
        &ChurnPlan,
        &ParallelPolicy,
        ObsArg<'_, P>,
        SnapRef<'_, P>,
        FaultsArg<'_>,
        &mut StealStats,
    ) -> Result<(SyncOutcome, Vec<<P as Protocol>::State>, ChurnSummary), ExecError>;

#[cfg(feature = "parallel")]
type ScopedChurnParFn<P> =
    fn(
        &P,
        &Graph,
        &[usize],
        u64,
        u64,
        &ChurnPlan,
        &ParallelPolicy,
        ObsArg<'_, P>,
        SnapRef<'_, P>,
        FaultsArg<'_>,
        &mut StealStats,
    ) -> Result<(ScopedOutcome, Vec<<P as Protocol>::State>, ChurnSummary), ExecError>;

struct Caps<P: Protocol> {
    sync: Option<SyncFn<P>>,
    async_run: Option<AsyncFn<P>>,
    scoped: Option<ScopedFn<P>>,
    sync_churn: Option<SyncChurnFn<P>>,
    async_churn: Option<AsyncChurnFn<P>>,
    scoped_churn: Option<ScopedChurnFn<P>>,
    #[cfg(feature = "parallel")]
    sync_par: Option<SyncParFn<P>>,
    #[cfg(feature = "parallel")]
    scoped_par: Option<ScopedParFn<P>>,
    #[cfg(feature = "parallel")]
    sync_churn_par: Option<SyncChurnParFn<P>>,
    #[cfg(feature = "parallel")]
    scoped_churn_par: Option<ScopedChurnParFn<P>>,
}

impl<P: Protocol> Caps<P> {
    fn none() -> Self {
        Caps {
            sync: None,
            async_run: None,
            scoped: None,
            sync_churn: None,
            async_churn: None,
            scoped_churn: None,
            #[cfg(feature = "parallel")]
            sync_par: None,
            #[cfg(feature = "parallel")]
            scoped_par: None,
            #[cfg(feature = "parallel")]
            sync_churn_par: None,
            #[cfg(feature = "parallel")]
            scoped_churn_par: None,
        }
    }
}

fn cap_sync<P: MultiFsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError> {
    match observer {
        Some(o) => sync_exec::exec_sync(
            protocol,
            graph,
            inputs,
            config,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => sync_exec::exec_sync(
            protocol,
            graph,
            inputs,
            config,
            &mut NoopObserver,
            snap,
            faults,
        ),
    }
}

#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn cap_sync_par<P>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    policy: &ParallelPolicy,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(SyncOutcome, Vec<P::State>), ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    match observer {
        Some(o) => sync_exec::exec_sync_parallel(
            protocol,
            graph,
            inputs,
            config,
            policy,
            &mut Bridge(o),
            snap,
            faults,
            steals,
        ),
        None => sync_exec::exec_sync_parallel(
            protocol,
            graph,
            inputs,
            config,
            policy,
            &mut NoopObserver,
            snap,
            faults,
            steals,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cap_async<P: Fsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    adversary: &dyn Adversary,
    config: &AsyncConfig,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>), ExecError> {
    match observer {
        Some(o) => async_exec::exec_async(
            protocol,
            graph,
            inputs,
            adversary,
            config,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => async_exec::exec_async(
            protocol,
            graph,
            inputs,
            adversary,
            config,
            &mut NoopAsyncObserver,
            snap,
            faults,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cap_scoped<P: ScopedMultiFsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError> {
    match observer {
        Some(o) => scoped::exec_scoped(
            protocol,
            graph,
            inputs,
            seed,
            max_rounds,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => scoped::exec_scoped(
            protocol,
            graph,
            inputs,
            seed,
            max_rounds,
            &mut NoopObserver,
            snap,
            faults,
        ),
    }
}

#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn cap_scoped_par<P>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    policy: &ParallelPolicy,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    match observer {
        Some(o) => scoped::exec_scoped_parallel(
            protocol,
            graph,
            inputs,
            seed,
            max_rounds,
            policy,
            &mut Bridge(o),
            snap,
            faults,
            steals,
        ),
        None => scoped::exec_scoped_parallel(
            protocol,
            graph,
            inputs,
            seed,
            max_rounds,
            policy,
            &mut NoopObserver,
            snap,
            faults,
            steals,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cap_sync_churn<P: MultiFsm>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    plan: &ChurnPlan,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(SyncOutcome, Vec<P::State>, ChurnSummary), ExecError> {
    match observer {
        Some(o) => churn::exec_sync_churn(
            protocol,
            base,
            inputs,
            config,
            plan,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => churn::exec_sync_churn(
            protocol,
            base,
            inputs,
            config,
            plan,
            &mut NoopObserver,
            snap,
            faults,
        ),
    }
}

#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn cap_sync_churn_par<P>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    config: &SyncConfig,
    plan: &ChurnPlan,
    policy: &ParallelPolicy,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(SyncOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    match observer {
        Some(o) => churn::exec_sync_churn_parallel(
            protocol,
            base,
            inputs,
            config,
            plan,
            policy,
            &mut Bridge(o),
            snap,
            faults,
            steals,
        ),
        None => churn::exec_sync_churn_parallel(
            protocol,
            base,
            inputs,
            config,
            plan,
            policy,
            &mut NoopObserver,
            snap,
            faults,
            steals,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cap_async_churn<P: Fsm>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    adversary: &dyn Adversary,
    config: &AsyncConfig,
    plan: &ChurnPlan,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(AsyncOutcome, Vec<P::State>, ChurnSummary), ExecError> {
    match observer {
        Some(o) => async_exec::exec_async_churn(
            protocol,
            base,
            inputs,
            adversary,
            config,
            plan,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => async_exec::exec_async_churn(
            protocol,
            base,
            inputs,
            adversary,
            config,
            plan,
            &mut NoopAsyncObserver,
            snap,
            faults,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cap_scoped_churn<P: ScopedMultiFsm>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    plan: &ChurnPlan,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
) -> Result<(ScopedOutcome, Vec<P::State>, ChurnSummary), ExecError> {
    match observer {
        Some(o) => churn::exec_scoped_churn(
            protocol,
            base,
            inputs,
            seed,
            max_rounds,
            plan,
            &mut Bridge(o),
            snap,
            faults,
        ),
        None => churn::exec_scoped_churn(
            protocol,
            base,
            inputs,
            seed,
            max_rounds,
            plan,
            &mut NoopObserver,
            snap,
            faults,
        ),
    }
}

#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn cap_scoped_churn_par<P>(
    protocol: &P,
    base: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    plan: &ChurnPlan,
    policy: &ParallelPolicy,
    observer: ObsArg<'_, P>,
    snap: SnapRef<'_, P>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(ScopedOutcome, Vec<P::State>, ChurnSummary), ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    match observer {
        Some(o) => churn::exec_scoped_churn_parallel(
            protocol,
            base,
            inputs,
            seed,
            max_rounds,
            plan,
            policy,
            &mut Bridge(o),
            snap,
            faults,
            steals,
        ),
        None => churn::exec_scoped_churn_parallel(
            protocol,
            base,
            inputs,
            seed,
            max_rounds,
            plan,
            policy,
            &mut NoopObserver,
            snap,
            faults,
            steals,
        ),
    }
}

/// The unified simulation builder. See the [module docs](self) for the
/// design and an end-to-end example.
///
/// Construct with the method matching the protocol's transition flavor —
/// [`Simulation::sync`] ([`MultiFsm`]), [`Simulation::asynchronous`]
/// ([`Fsm`] under an [`Adversary`]), or [`Simulation::scoped`]
/// ([`ScopedMultiFsm`]) — then chain configuration and [`run`](Self::run).
/// Setters are independent: the order they are chained in never affects
/// the outcome.
///
/// The `sync` and `scoped` constructors require the protocol and its
/// states to be thread-shareable (`Sync`/`Send`) so one construction
/// serves both the serial and the `parallel`-feature schedules; every
/// protocol in the workspace qualifies (they are plain data shared by
/// reference across all nodes, per model requirement (M2)).
pub struct Simulation<'g, P: Protocol> {
    protocol: &'g P,
    graph: &'g Graph,
    seed: u64,
    inputs: Option<&'g [usize]>,
    budget: Option<u64>,
    backend: Backend<'g>,
    observer: Option<&'g mut (dyn Observer<P::State> + 'g)>,
    churn: Option<&'g ChurnPlan>,
    faults: Option<&'g FaultPlan>,
    #[cfg(feature = "parallel")]
    policy: Option<ParallelPolicy>,
    checkpoint: Option<u64>,
    resume: Option<&'g Snapshot>,
    codec: Option<StateCodec<P::State>>,
    caps: Caps<P>,
}

impl<'g, P> Simulation<'g, P>
where
    P: MultiFsm + Sync,
    P::State: Send + Sync,
{
    /// A simulation of a multi-letter protocol on the lockstep
    /// synchronous backend ([`Backend::Sync`] preset). Run single-letter
    /// [`Fsm`] protocols here through [`stoneage_core::AsMulti`].
    pub fn sync(protocol: &'g P, graph: &'g Graph) -> Self {
        let mut caps = Caps::none();
        caps.sync = Some(cap_sync::<P>);
        caps.sync_churn = Some(cap_sync_churn::<P>);
        #[cfg(feature = "parallel")]
        {
            caps.sync_par = Some(cap_sync_par::<P>);
            caps.sync_churn_par = Some(cap_sync_churn_par::<P>);
        }
        Simulation::with_caps(protocol, graph, Backend::Sync, caps)
    }
}

impl<'g, P: Fsm> Simulation<'g, P> {
    /// A simulation of a single-letter protocol on the fully
    /// asynchronous backend, scheduled by `adversary`
    /// ([`Backend::Async`] preset with default [`AsyncOptions`]; replace
    /// via [`backend`](Self::backend) to pick a scheduler or bucket
    /// width).
    pub fn asynchronous(protocol: &'g P, graph: &'g Graph, adversary: &'g dyn Adversary) -> Self {
        let mut caps = Caps::none();
        caps.async_run = Some(cap_async::<P>);
        caps.async_churn = Some(cap_async_churn::<P>);
        Simulation::with_caps(
            protocol,
            graph,
            Backend::Async(AsyncOptions::new(adversary)),
            caps,
        )
    }
}

impl<'g, P> Simulation<'g, P>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
{
    /// A simulation of a port-select-extension protocol on the scoped
    /// lockstep backend ([`Backend::Scoped`] preset).
    pub fn scoped(protocol: &'g P, graph: &'g Graph) -> Self {
        let mut caps = Caps::none();
        caps.scoped = Some(cap_scoped::<P>);
        caps.scoped_churn = Some(cap_scoped_churn::<P>);
        #[cfg(feature = "parallel")]
        {
            caps.scoped_par = Some(cap_scoped_par::<P>);
            caps.scoped_churn_par = Some(cap_scoped_churn_par::<P>);
        }
        Simulation::with_caps(protocol, graph, Backend::Scoped, caps)
    }
}

impl<'g, P: Protocol> Simulation<'g, P> {
    fn with_caps(protocol: &'g P, graph: &'g Graph, backend: Backend<'g>, caps: Caps<P>) -> Self {
        Simulation {
            protocol,
            graph,
            seed: 0,
            inputs: None,
            budget: None,
            backend,
            observer: None,
            churn: None,
            faults: None,
            #[cfg(feature = "parallel")]
            policy: None,
            checkpoint: None,
            resume: None,
            codec: None,
            caps,
        }
    }

    /// Master seed of the per-node protocol RNG streams (default 0). The
    /// streams are pure functions of `(seed, node id)`, identical across
    /// backends' serial and parallel schedules.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-node input symbols (default: all zeros). Length must equal the
    /// node count — the builder is the single place this is validated,
    /// for every backend ([`ExecError::InputLengthMismatch`]).
    pub fn inputs(mut self, inputs: &'g [usize]) -> Self {
        self.inputs = Some(inputs);
        self
    }

    /// Execution budget: rounds for the Sync/Scoped backends, events for
    /// Async. Exceeding it aborts with [`ExecError::RoundLimit`] /
    /// [`ExecError::EventLimit`]; zero is rejected as
    /// [`ExecError::Config`]. Defaults: 1 000 000 rounds / 200 000 000
    /// events (the legacy config defaults).
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Selects the backend explicitly, overriding the constructor's
    /// preset — e.g. to pick the binary-heap scheduler through
    /// [`AsyncOptions`]. Selecting a backend the protocol's transition
    /// flavor cannot drive is reported as [`ExecError::Config`] by
    /// [`run`](Self::run).
    pub fn backend(mut self, backend: Backend<'g>) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches the unified [`Observer`]. Round-based backends fire
    /// `on_round_end`; the Async backend fires `on_step`. Wrap legacy
    /// observers in [`AdaptSync`] / [`AdaptAsync`].
    pub fn observe(mut self, observer: &'g mut (dyn Observer<P::State> + 'g)) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the simulation under a deterministic topology fault-injection
    /// schedule (see [`crate::churn`]). The plan's events — crashes,
    /// restarts, edge insertions and deletions — are applied only at
    /// round/epoch boundaries, so lockstep outcomes stay bit-identical
    /// across the serial and parallel schedules, every worker count, and
    /// both round modes; the empty plan is bit-identical to the churn-free
    /// engine. The effective event counts and final live-node set are
    /// reported through [`Outcome::churn`]. Nodes dead at termination
    /// report the output they had decided before crashing, or
    /// [`crate::churn::DEAD_OUTPUT`] if they never decided.
    pub fn with_churn(mut self, plan: &'g ChurnPlan) -> Self {
        self.churn = Some(plan);
        self
    }

    /// Runs the simulation under a seeded deterministic message-fault
    /// schedule (see [`crate::faults`]). Every transmission is evaluated
    /// against the plan's rules at the single delivery boundary of each
    /// backend; a firing rule drops, duplicates, or corrupts the letter
    /// on that channel. Fault decisions are pure functions of the plan
    /// seed, the receiving channel slot, and the transmission's time
    /// index — never a shared sequential RNG — so faulted lockstep
    /// outcomes stay bit-identical across the serial and parallel
    /// schedules, every worker count, and both round modes, and the
    /// empty plan is bit-identical to the fault-free engine. Composes
    /// with [`with_churn`](Self::with_churn): faults apply to whatever
    /// channels the churned topology has live. The per-class injection
    /// counts are reported through [`Outcome::faults`]. An invalid plan
    /// (bad rate, out-of-range node or letter, rule on a non-edge) is a
    /// typed [`ExecError::Config`] from [`run`](Self::run).
    ///
    /// On the Async backend a fault plan forces the binary-heap
    /// scheduler: duplicate copies break the calendar wheel's
    /// one-letter-per-run batching invariant, and outcomes must not
    /// depend on the scheduler knob.
    pub fn with_faults(mut self, plan: &'g FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the Sync or Scoped backend on the parallel schedule under
    /// `policy` (chunked phase 1 + sharded-write-buffer phase 2 — see
    /// [`crate::parbuf`]). The policy's [`crate::parbuf::RoundMode`]
    /// picks the round schedule: the two-join `Joined` oracle (default)
    /// or the one-join `Fused` pipeline that defers phase 2b of each
    /// round into the next round's worker scope (see
    /// [`crate::pipeline`]). Bit-identical to the serial schedule for
    /// every seed, worker count, merge strategy, and round mode; the
    /// policy's small-instance threshold may still delegate to the
    /// serial engine (reported via [`Outcome::workers`]). Only exists on
    /// `parallel` builds, so a policy can never be configured on a build
    /// that cannot honor it; combining it with [`Backend::Async`] is an
    /// [`ExecError::Config`].
    #[cfg(feature = "parallel")]
    pub fn parallel(mut self, policy: ParallelPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Captures a [`Snapshot`] of the complete mid-run simulation state
    /// every `every` committed boundaries — rounds on the lockstep
    /// backends (Sync, Scoped), applied node steps on the Async backend —
    /// and hands each frame to [`Observer::on_checkpoint`]. A run resumed
    /// from any such frame via [`resume_from`](Self::resume_from) replays
    /// the remainder **bit-identically** to the uninterrupted run, for
    /// every backend, worker count, and round mode. `every == 0` is
    /// rejected as [`ExecError::Config`] by [`run`](Self::run).
    ///
    /// Requires the protocol's state type to implement [`SnapState`]
    /// (every fixed-width plain-data state qualifies; see the
    /// [`crate::snapshot`] docs for implementing it on custom states).
    pub fn checkpoint_every(mut self, every: u64) -> Self
    where
        P::State: SnapState,
    {
        self.checkpoint = Some(every);
        self.codec = Some(StateCodec::auto());
        self
    }

    /// Resumes this simulation from a mid-run [`Snapshot`] instead of
    /// round/step 0. The snapshot's header must match this builder's
    /// graph, protocol, backend, and configuration (seed, inputs, churn
    /// plan, adversary) — any mismatch is a typed
    /// [`ExecError::Snapshot`] from [`run`](Self::run), never a panic or
    /// a silently divergent run. The resumed remainder is bit-identical
    /// to the uninterrupted run per seed, including when the snapshot
    /// round-tripped through [`Snapshot::to_bytes`] /
    /// [`Snapshot::from_bytes`] on disk.
    pub fn resume_from(mut self, snapshot: &'g Snapshot) -> Self
    where
        P::State: SnapState,
    {
        self.resume = Some(snapshot);
        self.codec = Some(StateCodec::auto());
        self
    }

    /// The snapshot plumbing of this run: the header metadata binding
    /// frames to this exact configuration, plus validation of any
    /// [`resume_from`](Self::resume_from) snapshot against it.
    fn snap_args(
        &self,
        backend: u8,
        inputs: &[usize],
        adversary: Option<&str>,
    ) -> Result<SnapArgs<'g, P::State>, ExecError> {
        if self.checkpoint.is_none() && self.resume.is_none() {
            return Ok(SnapArgs::none());
        }
        let meta = SnapMeta {
            backend,
            graph_fp: snapshot::graph_fingerprint(self.graph),
            protocol_id: snapshot::protocol_digest(self.protocol),
            config_digest: config_digest(self.seed, inputs, self.churn, self.faults, adversary),
        };
        if let Some(s) = self.resume {
            let field = if s.backend() != meta.backend {
                Some("backend")
            } else if s.graph_fingerprint() != meta.graph_fp {
                Some("graph fingerprint")
            } else if s.protocol_id() != meta.protocol_id {
                Some("protocol id")
            } else if s.config_digest() != meta.config_digest {
                Some("config digest")
            } else {
                None
            };
            if let Some(field) = field {
                return Err(ExecError::Snapshot(SnapshotError::DigestMismatch { field }));
            }
        }
        Ok(SnapArgs {
            every: self.checkpoint.unwrap_or(0),
            resume: self.resume,
            codec: self.codec,
            meta,
        })
    }

    /// Executes the selected backend and returns the unified outcome.
    ///
    /// Dispatches to the exact engine the corresponding retired `run_*`
    /// function ran — outcomes are bit-identical per seed to every
    /// legacy entry point this builder replaced.
    pub fn run(mut self) -> Result<Outcome<P>, ExecError> {
        let n = self.graph.node_count();
        if self.budget == Some(0) {
            return Err(ExecError::Config {
                reason: "budget must be positive: a zero budget can never reach an output \
                         configuration"
                    .into(),
            });
        }
        if self.checkpoint == Some(0) {
            return Err(ExecError::Config {
                reason: "checkpoint_every(0) never reaches a boundary: the checkpoint cadence \
                         must be a positive number of rounds (lockstep backends) or node steps \
                         (Async)"
                    .into(),
            });
        }
        if let Some(inputs) = self.inputs {
            if inputs.len() != n {
                return Err(ExecError::InputLengthMismatch {
                    nodes: n,
                    inputs: inputs.len(),
                });
            }
        }
        let zeros;
        let inputs: &[usize] = match self.inputs {
            Some(inputs) => inputs,
            None => {
                zeros = vec![0usize; n];
                &zeros
            }
        };
        let observer = self.observer.take();
        // Every engine call threads an optional FaultWire pointing at
        // this slot; whichever engine runs writes its final tally here.
        let fault_plan = self.faults;
        let mut fault_summary: Option<FaultSummary> = None;

        fn mismatch(backend: &Backend<'_>, constructor: &str) -> ExecError {
            ExecError::Config {
                reason: format!(
                    "the {} backend needs a protocol with the matching transition flavor: \
                     construct the builder with Simulation::{}",
                    backend.name(),
                    constructor
                ),
            }
        }

        match self.backend {
            Backend::Sync => {
                let config = SyncConfig {
                    seed: self.seed,
                    max_rounds: self.budget.unwrap_or(SyncConfig::default().max_rounds),
                };
                let snap = self.snap_args(snapshot::BACKEND_SYNC, inputs, None)?;
                if let Some(plan) = self.churn {
                    #[cfg(feature = "parallel")]
                    if let Some(policy) = self.policy {
                        let run = self
                            .caps
                            .sync_churn_par
                            .ok_or_else(|| mismatch(&self.backend, "sync"))?;
                        if !policy.use_serial(n) {
                            let workers = policy.resolve_workers().min(n.max(1));
                            let mut steals = StealStats::default();
                            let (out, states, summary) = run(
                                self.protocol,
                                self.graph,
                                inputs,
                                &config,
                                plan,
                                &policy,
                                observer,
                                &snap,
                                fault_plan.map(|p| FaultWire {
                                    plan: p,
                                    out: &mut fault_summary,
                                }),
                                &mut steals,
                            )?;
                            return Ok(sync_outcome(
                                out,
                                states,
                                workers,
                                Some(summary),
                                fault_summary,
                                steals,
                            ));
                        }
                    }
                    let run = self
                        .caps
                        .sync_churn
                        .ok_or_else(|| mismatch(&self.backend, "sync"))?;
                    let (out, states, summary) = run(
                        self.protocol,
                        self.graph,
                        inputs,
                        &config,
                        plan,
                        observer,
                        &snap,
                        fault_plan.map(|p| FaultWire {
                            plan: p,
                            out: &mut fault_summary,
                        }),
                    )?;
                    return Ok(sync_outcome(
                        out,
                        states,
                        1,
                        Some(summary),
                        fault_summary,
                        StealStats::default(),
                    ));
                }
                #[cfg(feature = "parallel")]
                if let Some(policy) = self.policy {
                    let run = self
                        .caps
                        .sync_par
                        .ok_or_else(|| mismatch(&self.backend, "sync"))?;
                    if !policy.use_serial(n) {
                        // The shard plan clamps to the node count — report
                        // what actually runs, not the raw policy value.
                        let workers = policy.resolve_workers().min(n.max(1));
                        let mut steals = StealStats::default();
                        let (out, states) = run(
                            self.protocol,
                            self.graph,
                            inputs,
                            &config,
                            &policy,
                            observer,
                            &snap,
                            fault_plan.map(|p| FaultWire {
                                plan: p,
                                out: &mut fault_summary,
                            }),
                            &mut steals,
                        )?;
                        return Ok(sync_outcome(
                            out,
                            states,
                            workers,
                            None,
                            fault_summary,
                            steals,
                        ));
                    }
                }
                let run = self
                    .caps
                    .sync
                    .ok_or_else(|| mismatch(&self.backend, "sync"))?;
                let (out, states) = run(
                    self.protocol,
                    self.graph,
                    inputs,
                    &config,
                    observer,
                    &snap,
                    fault_plan.map(|p| FaultWire {
                        plan: p,
                        out: &mut fault_summary,
                    }),
                )?;
                Ok(sync_outcome(
                    out,
                    states,
                    1,
                    None,
                    fault_summary,
                    StealStats::default(),
                ))
            }
            Backend::Scoped => {
                let max_rounds = self.budget.unwrap_or(SyncConfig::default().max_rounds);
                let snap = self.snap_args(snapshot::BACKEND_SCOPED, inputs, None)?;
                if let Some(plan) = self.churn {
                    #[cfg(feature = "parallel")]
                    if let Some(policy) = self.policy {
                        let run = self
                            .caps
                            .scoped_churn_par
                            .ok_or_else(|| mismatch(&self.backend, "scoped"))?;
                        if !policy.use_serial(n) {
                            let workers = policy.resolve_workers().min(n.max(1));
                            let mut steals = StealStats::default();
                            let (out, states, summary) = run(
                                self.protocol,
                                self.graph,
                                inputs,
                                self.seed,
                                max_rounds,
                                plan,
                                &policy,
                                observer,
                                &snap,
                                fault_plan.map(|p| FaultWire {
                                    plan: p,
                                    out: &mut fault_summary,
                                }),
                                &mut steals,
                            )?;
                            return Ok(scoped_outcome(
                                out,
                                states,
                                workers,
                                Some(summary),
                                fault_summary,
                                steals,
                            ));
                        }
                    }
                    let run = self
                        .caps
                        .scoped_churn
                        .ok_or_else(|| mismatch(&self.backend, "scoped"))?;
                    let (out, states, summary) = run(
                        self.protocol,
                        self.graph,
                        inputs,
                        self.seed,
                        max_rounds,
                        plan,
                        observer,
                        &snap,
                        fault_plan.map(|p| FaultWire {
                            plan: p,
                            out: &mut fault_summary,
                        }),
                    )?;
                    return Ok(scoped_outcome(
                        out,
                        states,
                        1,
                        Some(summary),
                        fault_summary,
                        StealStats::default(),
                    ));
                }
                #[cfg(feature = "parallel")]
                if let Some(policy) = self.policy {
                    let run = self
                        .caps
                        .scoped_par
                        .ok_or_else(|| mismatch(&self.backend, "scoped"))?;
                    if !policy.use_serial(n) {
                        // The shard plan clamps to the node count — report
                        // what actually runs, not the raw policy value.
                        let workers = policy.resolve_workers().min(n.max(1));
                        let mut steals = StealStats::default();
                        let (out, states) = run(
                            self.protocol,
                            self.graph,
                            inputs,
                            self.seed,
                            max_rounds,
                            &policy,
                            observer,
                            &snap,
                            fault_plan.map(|p| FaultWire {
                                plan: p,
                                out: &mut fault_summary,
                            }),
                            &mut steals,
                        )?;
                        return Ok(scoped_outcome(
                            out,
                            states,
                            workers,
                            None,
                            fault_summary,
                            steals,
                        ));
                    }
                }
                let run = self
                    .caps
                    .scoped
                    .ok_or_else(|| mismatch(&self.backend, "scoped"))?;
                let (out, states) = run(
                    self.protocol,
                    self.graph,
                    inputs,
                    self.seed,
                    max_rounds,
                    observer,
                    &snap,
                    fault_plan.map(|p| FaultWire {
                        plan: p,
                        out: &mut fault_summary,
                    }),
                )?;
                Ok(scoped_outcome(
                    out,
                    states,
                    1,
                    None,
                    fault_summary,
                    StealStats::default(),
                ))
            }
            Backend::Async(options) => {
                #[cfg(feature = "parallel")]
                if self.policy.is_some() {
                    return Err(ExecError::Config {
                        reason: "the Async backend has no parallel schedule: remove the \
                                 ParallelPolicy or select a lockstep backend"
                            .into(),
                    });
                }
                let config = AsyncConfig {
                    seed: self.seed,
                    max_events: self.budget.unwrap_or(AsyncConfig::default().max_events),
                    scheduler: options.scheduler,
                    bucket_width: options.bucket_width,
                };
                let snap = self.snap_args(
                    snapshot::BACKEND_ASYNC,
                    inputs,
                    Some(options.adversary.name()),
                )?;
                let (out, states, summary) = match self.churn {
                    Some(plan) => {
                        let run = self
                            .caps
                            .async_churn
                            .ok_or_else(|| mismatch(&self.backend, "asynchronous"))?;
                        let (out, states, summary) = run(
                            self.protocol,
                            self.graph,
                            inputs,
                            options.adversary,
                            &config,
                            plan,
                            observer,
                            &snap,
                            fault_plan.map(|p| FaultWire {
                                plan: p,
                                out: &mut fault_summary,
                            }),
                        )?;
                        (out, states, Some(summary))
                    }
                    None => {
                        let run = self
                            .caps
                            .async_run
                            .ok_or_else(|| mismatch(&self.backend, "asynchronous"))?;
                        let (out, states) = run(
                            self.protocol,
                            self.graph,
                            inputs,
                            options.adversary,
                            &config,
                            observer,
                            &snap,
                            fault_plan.map(|p| FaultWire {
                                plan: p,
                                out: &mut fault_summary,
                            }),
                        )?;
                        (out, states, None)
                    }
                };
                Ok(Outcome {
                    outputs: out.outputs,
                    states,
                    cost: Cost::TimeUnits(out.normalized_time),
                    workers: 1,
                    steals: StealStats::default(),
                    detail: Detail::Async {
                        completion_time: out.completion_time,
                        time_unit: out.time_unit,
                        total_steps: out.total_steps,
                        messages_sent: out.messages_sent,
                        deliveries: out.deliveries,
                        lost_overwrites: out.lost_overwrites,
                        churn: summary,
                        faults: fault_summary,
                    },
                })
            }
        }
    }
}

/// FNV-1a over everything that steers a run besides the graph and
/// protocol (which get their own header fields): master seed, per-node
/// inputs, the churn plan's events and extra edges, the fault plan's
/// seed and rules, and the adversary's diagnostic name on the Async
/// backend. Resuming under a different value of any of these would
/// silently diverge from the uninterrupted run, so a mismatch is
/// rejected up front. Knobs that provably cannot affect outcomes —
/// worker count, round mode, merge strategy, chunk scheduler
/// (static/stealing), event-scheduler kind, bucket width, patch mode,
/// budget — are deliberately *excluded*: resuming a serial run on the
/// parallel schedule (or heap → wheel, or static → stealing) is a
/// supported feature, not a configuration error.
fn config_digest(
    seed: u64,
    inputs: &[usize],
    churn: Option<&ChurnPlan>,
    faults: Option<&FaultPlan>,
    adversary: Option<&str>,
) -> u64 {
    let mut d = snapshot::Digest::new();
    d.u64(seed);
    d.u64(inputs.len() as u64);
    for &input in inputs {
        d.u64(input as u64);
    }
    match churn {
        Some(plan) => {
            d.u64(1);
            d.u64(plan.events().len() as u64);
            for (round, event) in plan.events() {
                d.u64(*round);
                let (tag, a, b) = match event {
                    TopologyEvent::Crash(v) => (0u64, *v, 0),
                    TopologyEvent::Restart(v) => (1, *v, 0),
                    TopologyEvent::EdgeInsert(u, v) => (2, *u, *v),
                    TopologyEvent::EdgeDelete(u, v) => (3, *u, *v),
                };
                d.u64(tag);
                d.u64(a as u64);
                d.u64(b as u64);
            }
            d.u64(plan.extra_edges().len() as u64);
            for &(u, v) in plan.extra_edges() {
                d.u64(u as u64);
                d.u64(v as u64);
            }
        }
        None => d.u64(0),
    }
    match faults {
        Some(plan) => {
            d.u64(1);
            d.u64(plan.seed());
            d.u64(plan.rules().len() as u64);
            for rule in plan.rules() {
                let (scope_tag, from, to) = match rule.scope {
                    FaultScope::AllEdges => (0u64, 0, 0),
                    FaultScope::Edge { from, to } => (1, from, to),
                };
                d.u64(scope_tag);
                d.u64(from as u64);
                d.u64(to as u64);
                let (fault_tag, arg) = match rule.fault {
                    LinkFault::Drop => (0u64, 0u64),
                    LinkFault::Duplicate(k) => (1, k as u64),
                    LinkFault::Corrupt(l) => (2, l.0 as u64),
                };
                d.u64(fault_tag);
                d.u64(arg);
                d.u64(rule.rate.to_bits());
            }
        }
        None => d.u64(0),
    }
    if let Some(name) = adversary {
        d.u64(name.len() as u64);
        d.bytes(name.as_bytes());
    }
    d.finish()
}

fn sync_outcome<P: Protocol>(
    out: SyncOutcome,
    states: Vec<P::State>,
    workers: usize,
    churn: Option<ChurnSummary>,
    faults: Option<FaultSummary>,
    steals: StealStats,
) -> Outcome<P> {
    Outcome {
        outputs: out.outputs,
        states,
        cost: Cost::Rounds(out.rounds),
        workers,
        steals,
        detail: Detail::Sync {
            messages_sent: out.messages_sent,
            churn,
            faults,
        },
    }
}

fn scoped_outcome<P: Protocol>(
    out: ScopedOutcome,
    states: Vec<P::State>,
    workers: usize,
    churn: Option<ChurnSummary>,
    faults: Option<FaultSummary>,
    steals: StealStats,
) -> Outcome<P> {
    Outcome {
        outputs: out.outputs,
        states,
        cost: Cost::Rounds(out.rounds),
        workers,
        steals,
        detail: Detail::Scoped {
            scoped_deliveries: out.scoped_deliveries,
            churn,
            faults,
        },
    }
}
