//! The **port-select extension** of the nFSM model, used only by the
//! maximal-matching protocol.
//!
//! Section 1 of the paper announces an efficient maximal-matching protocol
//! "but this requires a small unavoidable modification of the nFSM model
//! that goes beyond the scope of the current version of the paper". A
//! broadcast-only node cannot distinguish, or be distinguished by, one
//! particular neighbor — yet a matching is precisely a set of
//! distinguished pairs — so *some* symmetry-breaking addressing primitive
//! is unavoidable. We adopt the smallest one we could design that
//! preserves requirement (M4) (constant-size FSMs, no port numbers in the
//! program): a transmission may be **scoped to a single uniformly random
//! port among those currently holding a given letter**. The FSM names
//! only letters; the engine resolves the port choice with the node's own
//! randomness.
//!
//! This module provides the extended protocol trait and a lockstep
//! synchronous engine for it. The engine also reports every scoped
//! delivery, which is how the matching runner extracts the matched pairs
//! (a node's constant-size output cannot name its partner; the *edge* is
//! the engine-level witness).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_core::{Letter, ObsVec, Protocol};
use stoneage_graph::{Graph, NodeId};

use crate::engine::FlatPorts;
#[cfg(feature = "parallel")]
use crate::parbuf::{self, DeliveryBuffer, ParallelPolicy, ShardPlan};
use crate::{splitmix64, ExecError};

/// An emission under the port-select extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScopedEmission {
    /// Transmit nothing (`ε`).
    Silent,
    /// Ordinary nFSM broadcast to all neighbors.
    Broadcast(Letter),
    /// Deliver `send` to **one** uniformly random port currently holding
    /// `holding`; silently does nothing when no port qualifies.
    ToOnePortHolding {
        /// The letter to transmit.
        send: Letter,
        /// The qualifying port content.
        holding: Letter,
    },
}

/// A transition choice set under the port-select extension.
#[derive(Clone, Debug)]
pub struct ScopedTransitions<S> {
    /// Candidate `(next state, emission)` pairs, drawn uniformly.
    pub choices: Vec<(S, ScopedEmission)>,
}

impl<S> ScopedTransitions<S> {
    /// A deterministic transition.
    pub fn det(state: S, emission: ScopedEmission) -> Self {
        ScopedTransitions {
            choices: vec![(state, emission)],
        }
    }

    /// A uniform choice among the given pairs.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn uniform(choices: Vec<(S, ScopedEmission)>) -> Self {
        assert!(!choices.is_empty());
        ScopedTransitions { choices }
    }
}

/// A multi-letter-query protocol under the port-select extension: the
/// third transition flavor over the shared
/// [`Protocol`] base (next to
/// [`stoneage_core::Fsm`] and [`stoneage_core::MultiFsm`]).
pub trait ScopedMultiFsm: Protocol {
    /// The transition function.
    fn delta(&self, q: &Self::State, obs: &ObsVec) -> ScopedTransitions<Self::State>;
}

/// One scoped (port-selected) delivery, as witnessed by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScopedDelivery {
    /// Round of the transmission.
    pub round: u64,
    /// The transmitting node.
    pub from: NodeId,
    /// The selected recipient.
    pub to: NodeId,
    /// The letter delivered.
    pub letter: Letter,
}

/// Result of a scoped synchronous execution.
#[derive(Clone, Debug)]
pub struct ScopedOutcome {
    /// Per-node outputs.
    pub outputs: Vec<u64>,
    /// Rounds until the first output configuration.
    pub rounds: u64,
    /// Every port-selected delivery, in round order.
    pub scoped_deliveries: Vec<ScopedDelivery>,
}

/// Resolves a `ToOnePortHolding` emission of `v` against the frozen
/// ports: `None` when no port qualifies, otherwise the index of the
/// uniformly drawn qualifying port.
///
/// The incremental per-letter counts give the number of qualifying ports
/// up front — O(1) in the dense layout, a binary search over `v`'s live
/// `(letter, count)` pairs in the sparse layout (|Σ| >
/// [`crate::engine::SPARSE_SIGMA_THRESHOLD`]) — so the draw happens
/// *before* any port scan and the scan early-exits at the drawn
/// qualifying port instead of collecting every candidate. The draw is
/// `gen_range(0 .. count)`, exactly the draw the collect-then-index
/// implementation made (`count` equals the candidate-list length), so
/// per-node RNG streams and therefore outcomes are unchanged.
#[inline]
fn select_scoped_port<R: Rng>(
    graph: &Graph,
    ports: &FlatPorts,
    v: NodeId,
    holding: Letter,
    rng: &mut R,
) -> Option<usize> {
    let count = ports.count(v as usize, holding) as usize;
    if count == 0 {
        return None;
    }
    let j = rng.gen_range(0..count);
    let mut seen = 0usize;
    for (k, &l) in ports.ports_of(graph, v).iter().enumerate() {
        if l == holding {
            if seen == j {
                return Some(k);
            }
            seen += 1;
        }
    }
    unreachable!("incremental counts track every stored letter")
}

/// The scoped synchronous engine: runs a scoped protocol in lockstep
/// rounds, invoking `observer` after every round, and returns the final
/// per-node state vector next to the legacy outcome. The single
/// transcription of the scoped round loop — the [`crate::Simulation`]
/// builder and (through it) the legacy `run_scoped*` shims land here.
///
/// Inputs are validated by the builder; the legacy shims pass all zeros,
/// which reproduces the historical `initial_state(0)` seeding exactly.
pub(crate) fn exec_scoped<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    observer: &mut O,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError>
where
    P: ScopedMultiFsm,
    O: crate::sync_exec::SyncObserver<P::State>,
{
    let n = graph.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let sigma = protocol.alphabet().len();
    let b = protocol.bound();
    let sigma0 = protocol.initial_letter();

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    let mut ports = FlatPorts::new(graph, sigma, sigma0);
    let mut rngs: Vec<SmallRng> = (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v ^ 0x5C0B))))
        .collect();

    let mut scoped_deliveries = Vec::new();
    let mut obs = ObsVec::zeroed(sigma);
    let mut emissions: Vec<ScopedEmission> = vec![ScopedEmission::Silent; n];
    // Round-loop scratch buffer, reused across rounds.
    let mut writes: Vec<(usize, usize, Letter)> = Vec::new(); // (node, flat slot, letter)

    // Undecided-node counter, maintained on state transitions.
    let mut undecided = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count();
    if undecided == 0 {
        let outputs = states.iter().map(|q| protocol.output(q).unwrap()).collect();
        return Ok((
            ScopedOutcome {
                outputs,
                rounds: 0,
                scoped_deliveries,
            },
            states,
        ));
    }

    for round in 1..=max_rounds {
        // Phase 1: transitions from the old ports, observed through the
        // incremental per-letter counts.
        for v in 0..n {
            ports.refill_obs(v, &mut obs, b);
            let t = protocol.delta(&states[v], &obs);
            let idx = if t.choices.len() == 1 {
                0
            } else {
                rngs[v].gen_range(0..t.choices.len())
            };
            let was_output = protocol.output(&states[v]).is_some();
            let is_output = protocol.output(&t.choices[idx].0).is_some();
            match (was_output, is_output) {
                (false, true) => undecided -= 1,
                (true, false) => undecided += 1,
                _ => {}
            }
            states[v] = t.choices[idx].0.clone();
            emissions[v] = t.choices[idx].1;
        }
        // Phase 2: resolve and apply emissions against the old ports.
        // Scoped target selection must use the ports as the sender
        // observed them, so compute all targets before writing.
        writes.clear();
        for v in 0..n {
            match emissions[v] {
                ScopedEmission::Silent => {}
                ScopedEmission::Broadcast(letter) => {
                    let nbrs = graph.neighbors(v as NodeId);
                    let rev = graph.reverse_ports(v as NodeId);
                    for (&u, &rp) in nbrs.iter().zip(rev) {
                        writes.push((u as usize, graph.csr_offset(u) + rp as usize, letter));
                    }
                }
                ScopedEmission::ToOnePortHolding { send, holding } => {
                    if let Some(k) =
                        select_scoped_port(graph, &ports, v as NodeId, holding, &mut rngs[v])
                    {
                        let u = graph.neighbors(v as NodeId)[k];
                        let rp = graph.reverse_ports(v as NodeId)[k] as usize;
                        writes.push((u as usize, graph.csr_offset(u) + rp, send));
                        scoped_deliveries.push(ScopedDelivery {
                            round,
                            from: v as NodeId,
                            to: u,
                            letter: send,
                        });
                    }
                }
            }
        }
        for &(u, slot, letter) in &writes {
            ports.deliver(u, slot, letter);
        }
        observer.on_round_end(round, &states);
        if undecided == 0 {
            let outputs = states.iter().map(|q| protocol.output(q).unwrap()).collect();
            return Ok((
                ScopedOutcome {
                    outputs,
                    rounds: round,
                    scoped_deliveries,
                },
                states,
            ));
        }
    }
    Err(ExecError::RoundLimit {
        limit: max_rounds,
        unfinished: undecided,
    })
}

/// The parallel twin of [`exec_scoped`], on the same sharded-write-buffer
/// schedule as the synchronous executor (see [`crate::parbuf`]): worker
/// `i` owns a contiguous node chunk and, per round in a single
/// `std::thread::scope` pass, applies each of its nodes' transitions and
/// immediately resolves the node's emission — broadcasts through the
/// reverse-port map, port-selected sends via the same early-exit
/// count-draw the serial engine uses — into a private
/// [`DeliveryBuffer`] plus a worker-local [`ScopedDelivery`] transcript.
/// The buffers then merge under the policy's strategy.
///
/// Bit-identical to [`exec_scoped`] for every seed, worker count, and
/// merge strategy:
///
/// * a node's RNG draws happen in the serial order (transition draw, then
///   target draw) because both phases of a node run back to back on its
///   own stream, and target selection reads only the frozen
///   previous-round ports — which no worker mutates until the merge;
/// * the scoped-delivery witness list is the concatenation of the
///   worker transcripts in worker order, i.e. ascending sender order —
///   exactly the serial engine's push order;
/// * the merged port store is byte-identical by the slot-uniqueness /
///   commutative-counts argument of the [`crate::parbuf`] module docs.
///
/// `observer` fires after each round's merge — the same post-round
/// states the serial engine reports. The [`crate::Simulation`] builder
/// delegates to the serial engine when [`ParallelPolicy::use_serial`]
/// says the instance is too small, so this function always runs the
/// chunked machinery.
#[cfg(feature = "parallel")]
pub(crate) fn exec_scoped_parallel<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    policy: &ParallelPolicy,
    observer: &mut O,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
    O: crate::sync_exec::SyncObserver<P::State>,
{
    let n = graph.node_count();
    debug_assert_eq!(inputs.len(), n, "the builder validates input length");
    let sigma = protocol.alphabet().len();
    let b = protocol.bound();
    let sigma0 = protocol.initial_letter();

    let mut states: Vec<P::State> = inputs.iter().map(|&i| protocol.initial_state(i)).collect();
    let mut ports = FlatPorts::new(graph, sigma, sigma0);
    // The identical per-node streams of the serial engine.
    let mut rngs: Vec<SmallRng> = (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v ^ 0x5C0B))))
        .collect();

    let mut scoped_deliveries = Vec::new();
    let mut undecided = states
        .iter()
        .filter(|q| protocol.output(q).is_none())
        .count() as isize;
    if undecided == 0 {
        let outputs = states.iter().map(|q| protocol.output(q).unwrap()).collect();
        return Ok((
            ScopedOutcome {
                outputs,
                rounds: 0,
                scoped_deliveries,
            },
            states,
        ));
    }

    let plan = ShardPlan::new(graph, policy.resolve_workers());
    let mut buffers: Vec<DeliveryBuffer> = (0..plan.workers())
        .map(|_| DeliveryBuffer::new(plan.workers()))
        .collect();
    let mut transcripts: Vec<Vec<ScopedDelivery>> = vec![Vec::new(); plan.workers()];

    for round in 1..=max_rounds {
        let ports_ref = &ports;
        let chunk_deltas: Vec<isize> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .chunks_mut(&mut states)
                .into_iter()
                .zip(plan.chunks_mut(&mut rngs))
                .zip(buffers.iter_mut())
                .zip(transcripts.iter_mut())
                .enumerate()
                .map(|(ci, (((state_c, rng_c), buffer), transcript))| {
                    let base = plan.bounds()[ci];
                    let plan = &plan;
                    scope.spawn(move || {
                        let mut obs = ObsVec::zeroed(sigma);
                        let mut delta = 0isize;
                        buffer.clear();
                        transcript.clear();
                        for i in 0..state_c.len() {
                            let v = (base + i) as NodeId;
                            ports_ref.refill_obs(base + i, &mut obs, b);
                            let t = protocol.delta(&state_c[i], &obs);
                            let idx = if t.choices.len() == 1 {
                                0
                            } else {
                                rng_c[i].gen_range(0..t.choices.len())
                            };
                            let was_output = protocol.output(&state_c[i]).is_some();
                            let is_output = protocol.output(&t.choices[idx].0).is_some();
                            match (was_output, is_output) {
                                (false, true) => delta -= 1,
                                (true, false) => delta += 1,
                                _ => {}
                            }
                            state_c[i] = t.choices[idx].0.clone();
                            match t.choices[idx].1 {
                                ScopedEmission::Silent => {}
                                ScopedEmission::Broadcast(letter) => {
                                    buffer.broadcast(graph, plan, v, letter);
                                }
                                ScopedEmission::ToOnePortHolding { send, holding } => {
                                    if let Some(k) = select_scoped_port(
                                        graph,
                                        ports_ref,
                                        v,
                                        holding,
                                        &mut rng_c[i],
                                    ) {
                                        let u = graph.neighbors(v)[k];
                                        let rp = graph.reverse_ports(v)[k] as usize;
                                        buffer.push(plan, u, graph.csr_offset(u) + rp, send);
                                        transcript.push(ScopedDelivery {
                                            round,
                                            from: v,
                                            to: u,
                                            letter: send,
                                        });
                                    }
                                }
                            }
                        }
                        delta
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        undecided += chunk_deltas.iter().sum::<isize>();
        // Worker order = ascending sender order: the serial witness list.
        for transcript in &transcripts {
            scoped_deliveries.extend_from_slice(transcript);
        }

        parbuf::merge(policy.merge, &mut ports, graph, &plan, &buffers);
        observer.on_round_end(round, &states);

        if undecided == 0 {
            let outputs = states.iter().map(|q| protocol.output(q).unwrap()).collect();
            return Ok((
                ScopedOutcome {
                    outputs,
                    rounds: round,
                    scoped_deliveries,
                },
                states,
            ));
        }
    }
    Err(ExecError::RoundLimit {
        limit: max_rounds,
        unfinished: undecided as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_core::Alphabet;
    use stoneage_graph::generators;

    // In-crate builder twin (testkit's harness links the other build of
    // this crate; see the note in `sync_exec`'s tests).

    /// Builder twin of the legacy `run_scoped`.
    fn run_scoped<P>(
        protocol: &P,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Result<ScopedOutcome, ExecError>
    where
        P: ScopedMultiFsm + Sync,
        P::State: Send + Sync,
    {
        crate::Simulation::scoped(protocol, graph)
            .seed(seed)
            .budget(max_rounds)
            .run()
            .map(|o| o.into_scoped_outcome().expect("scoped backend"))
    }

    /// Toy scoped protocol: node 0-behavior is id-free — every node beeps
    /// FREE once, then pokes exactly one FREE port with POKE, then outputs
    /// how many pokes it got (b = 2).
    #[derive(Clone, Debug)]
    struct Poke {
        alphabet: Alphabet,
    }

    impl Poke {
        fn new() -> Self {
            Poke {
                alphabet: Alphabet::new(["INIT", "FREE", "POKE"]),
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum PokeState {
        Announce,
        Poke,
        Wait,
        Done(u64),
    }

    impl Protocol for Poke {
        type State = PokeState;

        fn alphabet(&self) -> &Alphabet {
            &self.alphabet
        }

        fn bound(&self) -> u8 {
            2
        }

        fn initial_letter(&self) -> Letter {
            Letter(0)
        }

        fn initial_state(&self, _input: usize) -> PokeState {
            PokeState::Announce
        }

        fn output(&self, q: &PokeState) -> Option<u64> {
            match q {
                PokeState::Done(v) => Some(*v),
                _ => None,
            }
        }
    }

    impl ScopedMultiFsm for Poke {
        fn delta(&self, q: &PokeState, obs: &ObsVec) -> ScopedTransitions<PokeState> {
            match q {
                PokeState::Announce => {
                    ScopedTransitions::det(PokeState::Poke, ScopedEmission::Broadcast(Letter(1)))
                }
                PokeState::Poke => ScopedTransitions::det(
                    PokeState::Wait,
                    ScopedEmission::ToOnePortHolding {
                        send: Letter(2),
                        holding: Letter(1),
                    },
                ),
                PokeState::Wait => ScopedTransitions::det(
                    PokeState::Done(obs.get(Letter(2)).raw() as u64),
                    ScopedEmission::Silent,
                ),
                PokeState::Done(v) => {
                    ScopedTransitions::det(PokeState::Done(*v), ScopedEmission::Silent)
                }
            }
        }
    }

    #[test]
    fn each_node_pokes_exactly_one_neighbor() {
        let g = generators::complete(6);
        let out = run_scoped(&Poke::new(), &g, 3, 100).unwrap();
        // 6 nodes × 1 scoped send each.
        assert_eq!(out.scoped_deliveries.len(), 6);
        // Total pokes received equals pokes sent; counts are truncated at
        // b = 2 in outputs but deliveries are exact.
        let mut received = [0usize; 6];
        for d in &out.scoped_deliveries {
            assert_eq!(d.letter, Letter(2));
            assert_ne!(d.from, d.to);
            received[d.to as usize] += 1;
        }
        for (v, &r) in received.iter().enumerate() {
            assert_eq!(out.outputs[v], r.min(2) as u64);
        }
    }

    #[test]
    fn scoping_with_no_qualifying_port_is_silent() {
        // Isolated nodes: no FREE port ever, no deliveries.
        let g = stoneage_graph::Graph::empty(3);
        let out = run_scoped(&Poke::new(), &g, 0, 100).unwrap();
        assert!(out.scoped_deliveries.is_empty());
        assert_eq!(out.outputs, vec![0, 0, 0]);
    }

    #[test]
    fn scoped_runs_are_deterministic_per_seed() {
        let g = generators::gnp(20, 0.3, 1);
        let a = run_scoped(&Poke::new(), &g, 7, 100).unwrap();
        let b = run_scoped(&Poke::new(), &g, 7, 100).unwrap();
        assert_eq!(a.scoped_deliveries, b.scoped_deliveries);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn target_choice_is_random_across_seeds() {
        let g = generators::star(5);
        let targets: std::collections::HashSet<NodeId> = (0..30)
            .map(|seed| {
                let out = run_scoped(&Poke::new(), &g, seed, 100).unwrap();
                out.scoped_deliveries
                    .iter()
                    .find(|d| d.from == 0)
                    .unwrap()
                    .to
            })
            .collect();
        assert!(targets.len() > 1, "center should poke varying leaves");
    }
}
