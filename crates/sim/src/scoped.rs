//! The **port-select extension** of the nFSM model, used only by the
//! maximal-matching protocol.
//!
//! Section 1 of the paper announces an efficient maximal-matching protocol
//! "but this requires a small unavoidable modification of the nFSM model
//! that goes beyond the scope of the current version of the paper". A
//! broadcast-only node cannot distinguish, or be distinguished by, one
//! particular neighbor — yet a matching is precisely a set of
//! distinguished pairs — so *some* symmetry-breaking addressing primitive
//! is unavoidable. We adopt the smallest one we could design that
//! preserves requirement (M4) (constant-size FSMs, no port numbers in the
//! program): a transmission may be **scoped to a single uniformly random
//! port among those currently holding a given letter**. The FSM names
//! only letters; the engine resolves the port choice with the node's own
//! randomness.
//!
//! This module provides the extended protocol trait and a lockstep
//! synchronous engine for it. The engine also reports every scoped
//! delivery, which is how the matching runner extracts the matched pairs
//! (a node's constant-size output cannot name its partner; the *edge* is
//! the engine-level witness).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_core::{Letter, ObsVec, Protocol};
use stoneage_graph::{Graph, NodeId};

use crate::engine::PortPlanes;
use crate::faults::{FaultLayer, FaultSummary, FaultsArg};
#[cfg(feature = "parallel")]
use crate::parbuf::{ParallelPolicy, StealStats};
use crate::pipeline::{self, DeliverySink, PortRead, RoundEnd, RoundStep};
use crate::snapshot::{self, SnapArgs, SnapPlumb, SnapshotError};
use crate::sync_exec::compile_faults;
use crate::{splitmix64, ExecError};

/// An emission under the port-select extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScopedEmission {
    /// Transmit nothing (`ε`).
    Silent,
    /// Ordinary nFSM broadcast to all neighbors.
    Broadcast(Letter),
    /// Deliver `send` to **one** uniformly random port currently holding
    /// `holding`; silently does nothing when no port qualifies.
    ToOnePortHolding {
        /// The letter to transmit.
        send: Letter,
        /// The qualifying port content.
        holding: Letter,
    },
}

/// A transition choice set under the port-select extension.
#[derive(Clone, Debug)]
pub struct ScopedTransitions<S> {
    /// Candidate `(next state, emission)` pairs, drawn uniformly.
    pub choices: Vec<(S, ScopedEmission)>,
}

impl<S> ScopedTransitions<S> {
    /// A deterministic transition.
    pub fn det(state: S, emission: ScopedEmission) -> Self {
        ScopedTransitions {
            choices: vec![(state, emission)],
        }
    }

    /// A uniform choice among the given pairs.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn uniform(choices: Vec<(S, ScopedEmission)>) -> Self {
        assert!(!choices.is_empty());
        ScopedTransitions { choices }
    }
}

/// A multi-letter-query protocol under the port-select extension: the
/// third transition flavor over the shared
/// [`Protocol`] base (next to
/// [`stoneage_core::Fsm`] and [`stoneage_core::MultiFsm`]).
pub trait ScopedMultiFsm: Protocol {
    /// The transition function.
    fn delta(&self, q: &Self::State, obs: &ObsVec) -> ScopedTransitions<Self::State>;
}

/// One scoped (port-selected) delivery, as witnessed by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScopedDelivery {
    /// Round of the transmission.
    pub round: u64,
    /// The transmitting node.
    pub from: NodeId,
    /// The selected recipient.
    pub to: NodeId,
    /// The letter delivered.
    pub letter: Letter,
}

/// Result of a scoped synchronous execution.
#[derive(Clone, Debug)]
pub struct ScopedOutcome {
    /// Per-node outputs.
    pub outputs: Vec<u64>,
    /// Rounds until the first output configuration.
    pub rounds: u64,
    /// Every port-selected delivery, in round order.
    pub scoped_deliveries: Vec<ScopedDelivery>,
}

/// Resolves a `ToOnePortHolding` emission of `v` against the frozen
/// ports: `None` when no port qualifies, otherwise the index of the
/// uniformly drawn qualifying port.
///
/// The incremental per-letter counts give the number of qualifying ports
/// up front — O(1) in the dense layout, a binary search over `v`'s live
/// `(letter, count)` pairs in the sparse layout (|Σ| >
/// [`crate::engine::SPARSE_SIGMA_THRESHOLD`]) — so the draw happens
/// *before* any port scan and the scan early-exits at the drawn
/// qualifying port instead of collecting every candidate. The draw is
/// `gen_range(0 .. count)`, exactly the draw the collect-then-index
/// implementation made (`count` equals the candidate-list length), so
/// per-node RNG streams and therefore outcomes are unchanged.
#[inline]
fn select_scoped_port<Pr: PortRead, R: Rng>(
    graph: &Graph,
    ports: &Pr,
    v: NodeId,
    holding: Letter,
    rng: &mut R,
) -> Option<usize> {
    let count = ports.count(v as usize, holding) as usize;
    if count == 0 {
        return None;
    }
    let j = rng.gen_range(0..count);
    let mut seen = 0usize;
    for (k, &l) in ports.ports_of(graph, v).iter().enumerate() {
        if l == holding {
            if seen == j {
                return Some(k);
            }
            seen += 1;
        }
    }
    unreachable!("incremental counts track every stored letter")
}

/// The [`RoundStep`] of the port-select extension: draw the transition
/// uniformly, then resolve the emission — broadcasts through the
/// reverse-port map, port-selected sends via the early-exit count-draw
/// of [`select_scoped_port`] (consuming the sender's own RNG stream) —
/// and record every scoped delivery in the witness transcript.
pub(crate) struct ScopedStep<'p, P>(pub(crate) &'p P);

impl<P: ScopedMultiFsm> RoundStep for ScopedStep<'_, P> {
    type State = P::State;
    type Emission = ScopedEmission;
    type Witness = Vec<ScopedDelivery>;

    fn bound(&self) -> u8 {
        self.0.bound()
    }

    fn decided(&self, q: &P::State) -> bool {
        self.0.output(q).is_some()
    }

    fn restart_state(&self, input: usize) -> P::State {
        self.0.restart_state(input)
    }

    fn transition(
        &self,
        q: &P::State,
        obs: &ObsVec,
        rng: &mut SmallRng,
    ) -> (P::State, ScopedEmission) {
        let t = self.0.delta(q, obs);
        let idx = if t.choices.len() == 1 {
            0
        } else {
            rng.gen_range(0..t.choices.len())
        };
        (t.choices[idx].0.clone(), t.choices[idx].1)
    }

    fn resolve<Pr: PortRead, Sk: DeliverySink>(
        &self,
        round: u64,
        v: NodeId,
        emission: ScopedEmission,
        graph: &Graph,
        ports: &Pr,
        rng: &mut SmallRng,
        sink: &mut Sk,
        witness: &mut Vec<ScopedDelivery>,
    ) {
        match emission {
            ScopedEmission::Silent => {}
            ScopedEmission::Broadcast(letter) => sink.broadcast(graph, v, letter),
            ScopedEmission::ToOnePortHolding { send, holding } => {
                if let Some(k) = select_scoped_port(graph, ports, v, holding, rng) {
                    let u = graph.neighbors(v)[k];
                    let rp = graph.reverse_ports(v)[k] as usize;
                    sink.send_one(u, graph.csr_offset(u) + rp, send);
                    witness.push(ScopedDelivery {
                        round,
                        from: v,
                        to: u,
                        letter: send,
                    });
                }
            }
        }
    }

    fn absorb(into: &mut Vec<ScopedDelivery>, from: &mut Vec<ScopedDelivery>) {
        into.append(from);
    }

    fn witness_slice(witness: &Vec<ScopedDelivery>) -> Option<&[ScopedDelivery]> {
        Some(witness)
    }
}

/// The per-node RNG streams of the scoped engines: a pure function of
/// `(seed, node id)` with a salt distinguishing them from the plain sync
/// streams, shared by the serial and parallel schedules.
pub(crate) fn scoped_rngs(n: usize, seed: u64) -> Vec<SmallRng> {
    (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v ^ 0x5C0B))))
        .collect()
}

/// The engine state a scoped run starts from — fresh, or spliced from a
/// resume snapshot (which must carry a witness transcript, no churn
/// cursor, and a fault tally exactly when the run wires a fault plan; a
/// mismatch means it belongs to another backend/configuration). The
/// restored transcript already holds every scoped delivery up to the
/// snapshot boundary, so the resumed run's witness is the full-run
/// witness.
type ScopedStart<S> = (
    Vec<S>,
    PortPlanes,
    Vec<SmallRng>,
    Vec<ScopedDelivery>,
    SnapPlumb<S>,
    FaultSummary,
);

fn scoped_start<P: ScopedMultiFsm>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    snap: &SnapArgs<'_, P::State>,
    faulted: bool,
) -> Result<ScopedStart<P::State>, ExecError> {
    let sigma = protocol.alphabet().len();
    if let Some(s) = snap.resume {
        let splice = snapshot::resume_lockstep(s, &snap.codec(), graph, sigma)?;
        let (Some(witness), None) = (splice.witness, splice.churn_next) else {
            return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                field: "snapshot body kind",
            }));
        };
        if splice.faults.is_some() != faulted {
            return Err(ExecError::Snapshot(SnapshotError::DigestMismatch {
                field: "snapshot body kind",
            }));
        }
        let tally = splice.faults.unwrap_or_default();
        let plumb = SnapPlumb::from_args(snap, Some(splice.point));
        Ok((
            splice.states,
            splice.planes,
            splice.rngs,
            witness,
            plumb,
            tally,
        ))
    } else {
        Ok((
            inputs.iter().map(|&i| protocol.initial_state(i)).collect(),
            PortPlanes::new(graph, sigma, protocol.initial_letter()),
            scoped_rngs(graph.node_count(), seed),
            Vec::new(),
            SnapPlumb::from_args(snap, None),
            FaultSummary::default(),
        ))
    }
}

fn scoped_end<P: ScopedMultiFsm>(
    protocol: &P,
    states: Vec<P::State>,
    scoped_deliveries: Vec<ScopedDelivery>,
    end: RoundEnd,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError> {
    match end {
        RoundEnd::Done { rounds, .. } => {
            let outputs = states.iter().map(|q| protocol.output(q).unwrap()).collect();
            Ok((
                ScopedOutcome {
                    outputs,
                    rounds,
                    scoped_deliveries,
                },
                states,
            ))
        }
        RoundEnd::Limit { limit, unfinished } => Err(ExecError::RoundLimit { limit, unfinished }),
    }
}

/// The scoped synchronous engine: the shared [`crate::pipeline`] round
/// loop over an epoch-split [`PortPlanes`] store, invoking `observer`
/// after every round, returning the final per-node state vector next to
/// the legacy outcome. The [`crate::Simulation`] builder and (through
/// it) the legacy `run_scoped*` shims land here.
///
/// Inputs are validated by the builder; the legacy shims pass all zeros,
/// which reproduces the historical `initial_state(0)` seeding exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_scoped<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError>
where
    P: ScopedMultiFsm,
    O: crate::sync_exec::SyncObserver<P::State>,
{
    debug_assert_eq!(
        inputs.len(),
        graph.node_count(),
        "the builder validates input length"
    );
    let (fctx, fout) = compile_faults(faults, graph, protocol.alphabet().len())?;
    let (mut states, mut planes, mut rngs, mut scoped_deliveries, plumb, tally) =
        scoped_start(protocol, graph, inputs, seed, snap, fctx.is_some())?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = pipeline::run_serial(
        &ScopedStep(protocol),
        graph,
        &mut planes,
        &mut states,
        &mut rngs,
        max_rounds,
        observer,
        &mut scoped_deliveries,
        &plumb,
        &mut layer,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    scoped_end(protocol, states, scoped_deliveries, end)
}

/// The parallel twin of [`exec_scoped`], on the shared
/// [`crate::pipeline`] parallel round loop: worker `i` owns a contiguous
/// node chunk and, per round, applies each of its nodes' transitions and
/// immediately resolves the node's emission — broadcasts through the
/// reverse-port map, port-selected sends via the same early-exit
/// count-draw the serial engine uses — into a private
/// [`crate::parbuf::DeliveryBuffer`] plus a worker-local
/// [`ScopedDelivery`] transcript. Phase 2b runs per the policy's
/// [`crate::parbuf::RoundMode`]: merged between rounds (`Joined`) or
/// deferred into the next round's worker scope over per-worker
/// [`crate::engine::PlaneShard`]s (`Fused`, one join per round).
///
/// Bit-identical to [`exec_scoped`] for every seed, worker count, merge
/// strategy, and round mode:
///
/// * a node's RNG draws happen in the serial order (transition draw, then
///   target draw) because both phases of a node run back to back on its
///   own stream, and target selection reads only the frozen read plane —
///   which no worker mutates while any observation of the round can see
///   it;
/// * the scoped-delivery witness list is the round-major concatenation
///   of the worker transcripts in worker order, i.e. ascending sender
///   order — exactly the serial engine's push order;
/// * the landed port store is byte-identical by the slot-uniqueness /
///   commutative-counts argument of the [`crate::parbuf`] module docs.
///
/// `observer` fires after each round's states are complete — the same
/// post-round states the serial engine reports. The
/// [`crate::Simulation`] builder delegates to the serial engine when
/// [`ParallelPolicy::use_serial`] says the instance is too small, so
/// this function always runs the chunked machinery.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_scoped_parallel<P, O>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    policy: &ParallelPolicy,
    observer: &mut O,
    snap: &SnapArgs<'_, P::State>,
    faults: FaultsArg<'_>,
    steals: &mut StealStats,
) -> Result<(ScopedOutcome, Vec<P::State>), ExecError>
where
    P: ScopedMultiFsm + Sync,
    P::State: Send + Sync,
    O: crate::sync_exec::SyncObserver<P::State>,
{
    debug_assert_eq!(
        inputs.len(),
        graph.node_count(),
        "the builder validates input length"
    );
    let (fctx, fout) = compile_faults(faults, graph, protocol.alphabet().len())?;
    // The identical per-node streams (or restored mid-run streams) of
    // the serial engine.
    let (mut states, mut planes, mut rngs, mut scoped_deliveries, plumb, tally) =
        scoped_start(protocol, graph, inputs, seed, snap, fctx.is_some())?;
    let mut layer = FaultLayer::new(fctx.as_ref(), tally);
    let end = pipeline::run_parallel(
        &ScopedStep(protocol),
        graph,
        &mut planes,
        &mut states,
        &mut rngs,
        policy,
        max_rounds,
        observer,
        &mut scoped_deliveries,
        &plumb,
        &mut layer,
        steals,
    );
    if let Some(out) = fout {
        *out = Some(layer.tally);
    }
    scoped_end(protocol, states, scoped_deliveries, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_core::Alphabet;
    use stoneage_graph::generators;

    // In-crate builder twin (testkit's harness links the other build of
    // this crate; see the note in `sync_exec`'s tests).

    /// Builder twin of the legacy `run_scoped`.
    fn run_scoped<P>(
        protocol: &P,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Result<ScopedOutcome, ExecError>
    where
        P: ScopedMultiFsm + Sync,
        P::State: Send + Sync,
    {
        crate::Simulation::scoped(protocol, graph)
            .seed(seed)
            .budget(max_rounds)
            .run()
            .map(|o| o.into_scoped_outcome().expect("scoped backend"))
    }

    /// Toy scoped protocol: node 0-behavior is id-free — every node beeps
    /// FREE once, then pokes exactly one FREE port with POKE, then outputs
    /// how many pokes it got (b = 2).
    #[derive(Clone, Debug)]
    struct Poke {
        alphabet: Alphabet,
    }

    impl Poke {
        fn new() -> Self {
            Poke {
                alphabet: Alphabet::new(["INIT", "FREE", "POKE"]),
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum PokeState {
        Announce,
        Poke,
        Wait,
        Done(u64),
    }

    impl Protocol for Poke {
        type State = PokeState;

        fn alphabet(&self) -> &Alphabet {
            &self.alphabet
        }

        fn bound(&self) -> u8 {
            2
        }

        fn initial_letter(&self) -> Letter {
            Letter(0)
        }

        fn initial_state(&self, _input: usize) -> PokeState {
            PokeState::Announce
        }

        fn output(&self, q: &PokeState) -> Option<u64> {
            match q {
                PokeState::Done(v) => Some(*v),
                _ => None,
            }
        }
    }

    impl ScopedMultiFsm for Poke {
        fn delta(&self, q: &PokeState, obs: &ObsVec) -> ScopedTransitions<PokeState> {
            match q {
                PokeState::Announce => {
                    ScopedTransitions::det(PokeState::Poke, ScopedEmission::Broadcast(Letter(1)))
                }
                PokeState::Poke => ScopedTransitions::det(
                    PokeState::Wait,
                    ScopedEmission::ToOnePortHolding {
                        send: Letter(2),
                        holding: Letter(1),
                    },
                ),
                PokeState::Wait => ScopedTransitions::det(
                    PokeState::Done(obs.get(Letter(2)).raw() as u64),
                    ScopedEmission::Silent,
                ),
                PokeState::Done(v) => {
                    ScopedTransitions::det(PokeState::Done(*v), ScopedEmission::Silent)
                }
            }
        }
    }

    #[test]
    fn each_node_pokes_exactly_one_neighbor() {
        let g = generators::complete(6);
        let out = run_scoped(&Poke::new(), &g, 3, 100).unwrap();
        // 6 nodes × 1 scoped send each.
        assert_eq!(out.scoped_deliveries.len(), 6);
        // Total pokes received equals pokes sent; counts are truncated at
        // b = 2 in outputs but deliveries are exact.
        let mut received = [0usize; 6];
        for d in &out.scoped_deliveries {
            assert_eq!(d.letter, Letter(2));
            assert_ne!(d.from, d.to);
            received[d.to as usize] += 1;
        }
        for (v, &r) in received.iter().enumerate() {
            assert_eq!(out.outputs[v], r.min(2) as u64);
        }
    }

    #[test]
    fn scoping_with_no_qualifying_port_is_silent() {
        // Isolated nodes: no FREE port ever, no deliveries.
        let g = stoneage_graph::Graph::empty(3);
        let out = run_scoped(&Poke::new(), &g, 0, 100).unwrap();
        assert!(out.scoped_deliveries.is_empty());
        assert_eq!(out.outputs, vec![0, 0, 0]);
    }

    #[test]
    fn scoped_runs_are_deterministic_per_seed() {
        let g = generators::gnp(20, 0.3, 1);
        let a = run_scoped(&Poke::new(), &g, 7, 100).unwrap();
        let b = run_scoped(&Poke::new(), &g, 7, 100).unwrap();
        assert_eq!(a.scoped_deliveries, b.scoped_deliveries);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn target_choice_is_random_across_seeds() {
        let g = generators::star(5);
        let targets: std::collections::HashSet<NodeId> = (0..30)
            .map(|seed| {
                let out = run_scoped(&Poke::new(), &g, seed, 100).unwrap();
                out.scoped_deliveries
                    .iter()
                    .find(|d| d.from == 0)
                    .unwrap()
                    .to
            })
            .collect();
        assert!(targets.len() > 1, "center should poke varying leaves");
    }
}
