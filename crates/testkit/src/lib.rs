//! Shared deterministic fixtures for the engine test suites and the
//! `stoneage-bench` `fingerprint` bin.
//!
//! The pinned-fingerprint panels used to be duplicated between
//! `crates/sim/tests/flat_engine.rs`, `crates/sim/tests/async_wheel.rs`,
//! and the fingerprint bin so the tests stayed hermetic. With three
//! copies the panel had grown past the point where drift between copies
//! was a bigger risk than the shared dependency, so the fixtures live
//! here now — **one** transcription of each protocol builder, the fnv1a
//! outcome hashes, and the pinned case *instances*. The pinned hash
//! constants themselves stay in the test files: a test still fails on its
//! own recorded numbers, not on values this crate could silently move.
//!
//! Nothing here is randomized at fixture level: every builder is a pure
//! function of its arguments, and every case table is a fixed instance,
//! so two processes running the same case always hash identical outcomes
//! (the CI determinism job relies on this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stoneage_core::{
    Alphabet, AsMulti, Letter, ObsVec, Protocol, Synchronized, TableProtocol, TableProtocolBuilder,
    Transitions,
};
use stoneage_graph::{generators, Graph};
use stoneage_sim::{
    AsyncOptions, AsyncOutcome, Backend, ChurnPlan, ChurnSummary, FaultPlan, FaultSummary,
    LinkFault, SchedulerKind, ScopedEmission, ScopedMultiFsm, ScopedTransitions, Simulation,
    SyncOutcome,
};

/// Builder-backed twins of the retired legacy `run_*` free functions,
/// with the legacy call shapes.
///
/// The `run_*` shims were deleted from `stoneage_sim` (the builder is
/// the only entry point now), but many test suites and the experiment
/// harness are written against the legacy shapes; these wrappers route
/// those call sites through the unified [`Simulation`] builder from
/// **one** place, so a builder signature change doesn't ripple through
/// a dozen local copies. (The
/// `parallel`-schedule twins stay local to the few `--features
/// parallel` suites that need them: this crate cannot observe which
/// features its `stoneage-sim` was built with.)
pub mod harness {
    use stoneage_core::{Fsm, MultiFsm};
    use stoneage_graph::Graph;
    use stoneage_sim::{
        AdaptSync, Adversary, AsyncConfig, AsyncOptions, AsyncOutcome, Backend, ExecError,
        ScopedMultiFsm, ScopedOutcome, Simulation, SyncConfig, SyncObserver, SyncOutcome,
    };

    /// Builder twin of the legacy `run_sync`.
    pub fn run_sync<P>(
        protocol: &P,
        graph: &Graph,
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_with_inputs`.
    pub fn run_sync_with_inputs<P>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_sync_observed`.
    pub fn run_sync_observed<P, O>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        config: &SyncConfig,
        observer: &mut O,
    ) -> Result<SyncOutcome, ExecError>
    where
        P: MultiFsm + Sync,
        P::State: Send + Sync,
        O: SyncObserver<P::State>,
    {
        let mut adapter = AdaptSync(observer);
        Simulation::sync(protocol, graph)
            .seed(config.seed)
            .budget(config.max_rounds)
            .inputs(inputs)
            .observe(&mut adapter)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    }

    /// Builder twin of the legacy `run_async`. Forwards every
    /// [`AsyncConfig`] field, scheduler and bucket width included.
    pub fn run_async<P: Fsm, A: Adversary + ?Sized>(
        protocol: &P,
        graph: &Graph,
        adversary: &A,
        config: &AsyncConfig,
    ) -> Result<AsyncOutcome, ExecError> {
        let mut options = AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
        options.bucket_width = config.bucket_width;
        Simulation::asynchronous(protocol, graph, &adversary)
            .seed(config.seed)
            .budget(config.max_events)
            .backend(Backend::Async(options))
            .run()
            .map(|o| o.into_async_outcome().expect("async backend"))
    }

    /// Builder twin of the legacy `run_async_with_inputs`. Forwards
    /// every [`AsyncConfig`] field.
    pub fn run_async_with_inputs<P: Fsm, A: Adversary + ?Sized>(
        protocol: &P,
        graph: &Graph,
        inputs: &[usize],
        adversary: &A,
        config: &AsyncConfig,
    ) -> Result<AsyncOutcome, ExecError> {
        let mut options = AsyncOptions::new(&adversary).with_scheduler(config.scheduler);
        options.bucket_width = config.bucket_width;
        Simulation::asynchronous(protocol, graph, &adversary)
            .seed(config.seed)
            .budget(config.max_events)
            .backend(Backend::Async(options))
            .inputs(inputs)
            .run()
            .map(|o| o.into_async_outcome().expect("async backend"))
    }

    /// Builder twin of the legacy `run_scoped`.
    pub fn run_scoped<P>(
        protocol: &P,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Result<ScopedOutcome, ExecError>
    where
        P: ScopedMultiFsm + Sync,
        P::State: Send + Sync,
    {
        Simulation::scoped(protocol, graph)
            .seed(seed)
            .budget(max_rounds)
            .run()
            .map(|o| o.into_scoped_outcome().expect("scoped backend"))
    }
}

/// Deterministic single-letter protocol over `["beep"]`: every node beeps
/// in round 1, then outputs `1 + f_b(#beeps heard)`. The synchronous
/// suites' workhorse — its outputs encode the truncated degree profile.
pub fn count_neighbors(b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep"]);
    let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(0));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=b {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    builder.build().unwrap()
}

/// The asynchronous suites' variant of [`count_neighbors`]: σ₀ is a
/// distinct `"quiet"` letter, so the observed count genuinely reflects
/// *delivered* beeps — which makes the protocol synchrony-dependent (the
/// property the async differential tests need).
pub fn count_neighbors_quiet(b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "quiet"]);
    let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(1));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=b {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    builder.build().unwrap()
}

/// Randomized protocol: for `phases` rounds each node flips a three-way
/// coin between beeping, idling loudly, and staying silent (exercising
/// the per-node RNG streams, whose draw order no engine rewrite may
/// perturb), then outputs the truncated count of beeps it heard last.
pub fn random_beeper(phases: usize, b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "idle"]);
    let mut builder = TableProtocolBuilder::new("rbeep", alphabet, b, Letter(1));
    let states: Vec<_> = (0..phases)
        .map(|i| builder.add_state(format!("r{i}"), Letter(0)))
        .collect();
    builder.add_input_state(states[0]);
    for i in 0..phases {
        if i + 1 < phases {
            let next = states[i + 1];
            builder.set_transition_all(
                states[i],
                Transitions::uniform(vec![
                    (next, Some(Letter(0))),
                    (next, None),
                    (next, Some(Letter(1))),
                ]),
            );
        } else {
            for o in 0..=b {
                let out = builder.add_output_state(format!("out{o}"), Letter(0), o as u64);
                builder.set_transition(states[i], o, Transitions::det(out, None));
                builder.set_transition_all(out, Transitions::det(out, None));
            }
        }
    }
    builder.build().unwrap()
}

/// The adversarial worker counts of the parallel differential matrices:
/// serial-fallback territory (1), the smallest real split (2), a count
/// that never divides the test graphs evenly (7), and whatever this
/// machine actually has — sorted and deduplicated.
pub fn adversarial_worker_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut ws = vec![1, 2, 7, hw];
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// Both round-pipeline schedules, for the `Fused ≡ Joined ≡ serial`
/// differential matrices: the historical two-join round (the oracle) and
/// the one-join fused round.
pub fn round_modes() -> [stoneage_sim::RoundMode; 2] {
    [
        stoneage_sim::RoundMode::Joined,
        stoneage_sim::RoundMode::Fused,
    ]
}

/// Both chunk schedulers, for the `stealing ≡ static ≡ serial`
/// differential matrices: the shard-owned static schedule (the oracle)
/// and the work-stealing deque schedule.
pub fn chunk_schedulers() -> [stoneage_sim::ChunkScheduler; 2] {
    [
        stoneage_sim::ChunkScheduler::Static,
        stoneage_sim::ChunkScheduler::Stealing,
    ]
}

/// The skewed graph instances of the work-stealing differential
/// matrices: a preferential-attachment power law (one heavy hub, long
/// degree tail) and the hub-and-spoke stress family whose hub shard
/// carries almost all port slots. Fixed seeds — every caller sees the
/// same instances, so pinned hashes built on them never move.
pub fn skewed_graph_family() -> Vec<(&'static str, Graph)> {
    vec![
        ("power-law", generators::power_law(300, 2, 0.85, 42)),
        ("hub-spoke", generators::hub_and_spoke(3, 60)),
    ]
}

/// The fnv1a-64 word hash all outcome fingerprints build on.
pub fn fnv1a(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Fingerprint of a synchronous outcome: rounds, message count, and the
/// full output vector.
pub fn sync_fingerprint(out: &SyncOutcome) -> u64 {
    fnv1a(
        out.rounds ^ (out.messages_sent << 20),
        out.outputs.iter().copied(),
    )
}

/// Fingerprint of an asynchronous outcome: every counter plus the exact
/// bits of the completion time and time unit.
pub fn async_fingerprint(out: &AsyncOutcome) -> u64 {
    fnv1a(
        out.total_steps ^ (out.messages_sent << 16) ^ (out.deliveries << 32),
        out.outputs.iter().copied().chain([
            out.completion_time.to_bits(),
            out.time_unit.to_bits(),
            out.lost_overwrites,
        ]),
    )
}

/// Fingerprint of a scoped outcome: rounds, outputs, and the full scoped
/// delivery transcript (round, endpoints, letter of every port-selected
/// send) — any reordering or drift in the witness list changes the hash.
pub fn scoped_fingerprint(out: &stoneage_sim::ScopedOutcome) -> u64 {
    fnv1a(
        out.rounds ^ ((out.scoped_deliveries.len() as u64) << 24),
        out.outputs
            .iter()
            .copied()
            .chain(out.scoped_deliveries.iter().flat_map(|d| {
                [
                    d.round,
                    ((d.from as u64) << 32) | d.to as u64,
                    d.letter.0 as u64,
                ]
            })),
    )
}

/// The `(case name, seed)` pairs of the pinned synchronous panel.
pub const SYNC_PINNED_CASES: [(&str, u64); 6] = [
    ("gnp-count", 1),
    ("gnp-count2", 2),
    ("tree-rbeep", 1),
    ("tree-rbeep", 2),
    ("grid-rbeep", 7),
    ("grid-rbeep", 8),
];

/// Runs a protocol synchronously through the unified builder, returning
/// the legacy outcome shape the fingerprint helpers hash.
fn sync_via_builder(protocol: TableProtocol, graph: &Graph, seed: u64) -> SyncOutcome {
    Simulation::sync(&AsMulti(protocol), graph)
        .seed(seed)
        .run()
        .expect("pinned cases terminate")
        .into_sync_outcome()
        .expect("sync backend")
}

/// Runs one case of the pinned synchronous panel. Panics on an unknown
/// case name; the instances must never change (the recorded hashes in
/// `crates/sim/tests/flat_engine.rs` pin their outcomes).
pub fn run_sync_pinned(name: &str, seed: u64) -> SyncOutcome {
    match name {
        "gnp-count" => sync_via_builder(count_neighbors(3), &generators::gnp(120, 0.06, 9), seed),
        "gnp-count2" => sync_via_builder(count_neighbors(2), &generators::gnp(90, 0.1, 23), seed),
        "tree-rbeep" => {
            sync_via_builder(random_beeper(5, 2), &generators::random_tree(150, 21), seed)
        }
        "grid-rbeep" => sync_via_builder(random_beeper(4, 3), &generators::grid(10, 14), seed),
        other => panic!("unknown pinned sync case {other}"),
    }
}

/// Fingerprint of a synchronous outcome *plus* its churn summary: the
/// sync fingerprint words followed by the effective event counts and the
/// final live-node set. Any drift in outputs, cost, applied events, or
/// liveness changes the hash.
pub fn churn_fingerprint(out: &SyncOutcome, summary: &ChurnSummary) -> u64 {
    fnv1a(
        out.rounds
            ^ (out.messages_sent << 18)
            ^ (summary.crashes << 40)
            ^ (summary.restarts << 44)
            ^ (summary.edge_inserts << 48)
            ^ (summary.edge_deletes << 52),
        out.outputs
            .iter()
            .copied()
            .chain(summary.live_nodes.iter().map(|&l| l as u64)),
    )
}

/// The `(case name, seed)` pairs of the pinned churn panel.
pub const CHURN_PINNED_CASES: [(&str, u64); 4] = [
    ("gnp-churn", 1),
    ("tree-churn", 3),
    ("tree-churn", 4),
    ("grid-churn", 5),
];

/// The instance behind one pinned churn case: base graph, protocol, and
/// the seeded fault schedule (a pure function of the case name — the
/// plan seed is fixed per case so the schedule never depends on the
/// protocol seed being varied).
pub fn churn_pinned_case(name: &str) -> (Graph, TableProtocol, ChurnPlan) {
    match name {
        "gnp-churn" => {
            let g = generators::gnp(120, 0.06, 9);
            let plan = ChurnPlan::random(&g, 31, 10, 8);
            (g, count_neighbors(3), plan)
        }
        "tree-churn" => {
            let g = generators::random_tree(150, 21);
            let plan = ChurnPlan::random(&g, 47, 8, 7);
            (g, random_beeper(5, 2), plan)
        }
        "grid-churn" => {
            let g = generators::grid(10, 14);
            let plan = ChurnPlan::random(&g, 59, 12, 6);
            (g, random_beeper(4, 3), plan)
        }
        other => panic!("unknown pinned churn case {other}"),
    }
}

/// Runs one case of the pinned churn panel through the unified builder
/// on the serial synchronous backend, returning the legacy outcome and
/// the churn summary the fingerprint hashes.
pub fn run_churn_pinned(name: &str, seed: u64) -> (SyncOutcome, ChurnSummary) {
    let (g, p, plan) = churn_pinned_case(name);
    let outcome = Simulation::sync(&AsMulti(p), &g)
        .seed(seed)
        .with_churn(&plan)
        .run()
        .expect("pinned churn cases terminate");
    let summary = outcome.churn().expect("churn plan was set").clone();
    let out = outcome.into_sync_outcome().expect("sync backend");
    (out, summary)
}

/// Fingerprint of a synchronous outcome *plus* its fault summary: the
/// sync fingerprint words followed by the exact decision and injection
/// tallies. Any drift in outputs, cost, or the per-rule fault decisions
/// changes the hash.
pub fn fault_fingerprint(out: &SyncOutcome, summary: &FaultSummary) -> u64 {
    fnv1a(
        out.rounds ^ (out.messages_sent << 18),
        out.outputs.iter().copied().chain([
            summary.evaluated,
            summary.dropped,
            summary.duplicated,
            summary.corrupted,
        ]),
    )
}

/// The `(case name, seed)` pairs of the pinned message-fault panel.
pub const FAULT_PINNED_CASES: [(&str, u64); 4] = [
    ("gnp-drop", 1),
    ("gnp-mixed", 2),
    ("tree-corrupt", 3),
    ("grid-dup", 5),
];

/// The instance behind one pinned fault case: base graph, protocol, and
/// the seeded fault plan (a pure function of the case name — the plan
/// seed is fixed per case, so varying the protocol seed never moves the
/// per-channel fault decisions).
pub fn fault_pinned_case(name: &str) -> (Graph, TableProtocol, FaultPlan) {
    match name {
        "gnp-drop" => {
            let g = generators::gnp(120, 0.06, 9);
            let plan = FaultPlan::new(101).drop_rate(0.08);
            (g, count_neighbors(3), plan)
        }
        "gnp-mixed" => {
            let g = generators::gnp(90, 0.1, 23);
            // All three fault kinds plus a per-edge override, so the pinned
            // hash witnesses the rule-order semantics too.
            let plan = FaultPlan::new(202)
                .drop_rate(0.05)
                .duplicate_rate(0.04, 2)
                .corrupt_rate(0.03, Letter(0))
                .on_edge(0, 5, LinkFault::Drop, 0.5);
            (g, count_neighbors(2), plan)
        }
        "tree-corrupt" => {
            let g = generators::random_tree(150, 21);
            let plan = FaultPlan::new(303).corrupt_rate(0.1, Letter(1));
            (g, random_beeper(5, 2), plan)
        }
        "grid-dup" => {
            let g = generators::grid(10, 14);
            let plan = FaultPlan::new(404).duplicate_rate(0.12, 1);
            (g, random_beeper(4, 3), plan)
        }
        other => panic!("unknown pinned fault case {other}"),
    }
}

/// Runs one case of the pinned fault panel through the unified builder
/// on the serial synchronous backend, returning the legacy outcome and
/// the fault summary the fingerprint hashes.
pub fn run_fault_pinned(name: &str, seed: u64) -> (SyncOutcome, FaultSummary) {
    let (g, p, plan) = fault_pinned_case(name);
    let outcome = Simulation::sync(&AsMulti(p), &g)
        .seed(seed)
        .with_faults(&plan)
        .run()
        .expect("pinned fault cases terminate");
    let summary = *outcome.faults().expect("fault plan was set");
    let out = outcome.into_sync_outcome().expect("sync backend");
    (out, summary)
}

/// The `(case name, seed)` pairs of the pinned asynchronous panel.
pub const ASYNC_PINNED_CASES: [(&str, u64); 3] = [
    ("gnp-async", 4242),
    ("tree-async", 77),
    ("grid-async", 9000),
];

/// The instance behind one pinned asynchronous case: graph, synchronized
/// protocol, and the adversary seed.
pub fn async_pinned_case(name: &str) -> (Graph, Synchronized<TableProtocol>, u64) {
    match name {
        "gnp-async" => (
            generators::gnp(90, 0.07, 19),
            Synchronized::new(count_neighbors_quiet(2)),
            4,
        ),
        "tree-async" => (
            generators::random_tree(120, 23),
            Synchronized::new(random_beeper(4, 2)),
            5,
        ),
        "grid-async" => (
            generators::grid(9, 11),
            Synchronized::new(random_beeper(3, 3)),
            6,
        ),
        other => panic!("unknown pinned async case {other}"),
    }
}

/// Runs one case of the pinned asynchronous panel under the given
/// scheduler (the heap and wheel paths must reproduce the same hash).
pub fn run_async_pinned(name: &str, seed: u64, scheduler: SchedulerKind) -> AsyncOutcome {
    let (g, p, adv_seed) = async_pinned_case(name);
    let adv = stoneage_sim::adversary::UniformRandom { seed: adv_seed };
    Simulation::asynchronous(&p, &g, &adv)
        .seed(seed)
        .backend(Backend::Async(
            AsyncOptions::new(&adv).with_scheduler(scheduler),
        ))
        .run()
        .expect("pinned cases terminate")
        .into_async_outcome()
        .expect("async backend")
}

/// A small id-free scoped protocol for the port-select executor tests:
/// every node broadcasts FREE once, then sends POKE to exactly one
/// uniformly random port still holding FREE, waits a round, and outputs
/// `f_2(#POKE received)`. Exercises both scoped-emission kinds, the
/// engine-level delivery witness, and the per-node RNG draws of the
/// target selection.
#[derive(Clone, Debug)]
pub struct Poke {
    alphabet: Alphabet,
}

impl Poke {
    /// A fresh instance (the protocol is stateless beyond its alphabet).
    pub fn new() -> Self {
        Poke {
            alphabet: Alphabet::new(["INIT", "FREE", "POKE"]),
        }
    }
}

impl Default for Poke {
    fn default() -> Self {
        Poke::new()
    }
}

/// States of [`Poke`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PokeState {
    /// About to broadcast FREE.
    Announce,
    /// About to poke one FREE port.
    Poke,
    /// Waiting one round for pokes to land.
    Wait,
    /// Terminal, carrying the truncated poke count.
    Done(u64),
}

impl Protocol for Poke {
    type State = PokeState;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        2
    }

    fn initial_letter(&self) -> Letter {
        Letter(0)
    }

    fn initial_state(&self, _input: usize) -> PokeState {
        PokeState::Announce
    }

    fn output(&self, q: &PokeState) -> Option<u64> {
        match q {
            PokeState::Done(v) => Some(*v),
            _ => None,
        }
    }
}

impl stoneage_sim::SnapState for PokeState {
    fn encode(&self, w: &mut stoneage_sim::SnapWriter) {
        match self {
            PokeState::Announce => w.u8(0),
            PokeState::Poke => w.u8(1),
            PokeState::Wait => w.u8(2),
            PokeState::Done(v) => {
                w.u8(3);
                w.u64(*v);
            }
        }
    }
    fn decode(r: &mut stoneage_sim::SnapReader<'_>) -> Result<Self, stoneage_sim::SnapshotError> {
        Ok(match r.u8()? {
            0 => PokeState::Announce,
            1 => PokeState::Poke,
            2 => PokeState::Wait,
            3 => PokeState::Done(r.u64()?),
            _ => {
                return Err(stoneage_sim::SnapshotError::DigestMismatch {
                    field: "poke state tag",
                })
            }
        })
    }
}

impl ScopedMultiFsm for Poke {
    fn delta(&self, q: &PokeState, obs: &ObsVec) -> ScopedTransitions<PokeState> {
        match q {
            PokeState::Announce => {
                ScopedTransitions::det(PokeState::Poke, ScopedEmission::Broadcast(Letter(1)))
            }
            PokeState::Poke => ScopedTransitions::det(
                PokeState::Wait,
                ScopedEmission::ToOnePortHolding {
                    send: Letter(2),
                    holding: Letter(1),
                },
            ),
            PokeState::Wait => ScopedTransitions::det(
                PokeState::Done(obs.get(Letter(2)).raw() as u64),
                ScopedEmission::Silent,
            ),
            PokeState::Done(v) => {
                ScopedTransitions::det(PokeState::Done(*v), ScopedEmission::Silent)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(0, [0u64]), fnv1a(0, [0u64]));
        assert_ne!(fnv1a(0, [1u64]), fnv1a(0, [2u64]));
        assert_ne!(fnv1a(1, [7u64]), fnv1a(2, [7u64]));
    }

    #[test]
    fn pinned_case_tables_are_runnable() {
        // Every named case must construct and terminate — the hash
        // constants live with the tests, but a broken instance would fail
        // every consumer at once.
        for (name, seed) in SYNC_PINNED_CASES {
            let _ = run_sync_pinned(name, seed);
        }
        for (name, seed) in CHURN_PINNED_CASES {
            let (_, summary) = run_churn_pinned(name, seed);
            // The random plans must actually inject faults — a plan that
            // degenerated to a no-op would pin a meaningless hash.
            assert!(
                summary.crashes + summary.restarts + summary.edge_inserts + summary.edge_deletes
                    > 0,
                "{name} plan is a no-op"
            );
        }
        for (name, seed) in FAULT_PINNED_CASES {
            let (_, summary) = run_fault_pinned(name, seed);
            // The plans must actually fire — an all-miss schedule would
            // pin a hash indistinguishable from the fault-free run.
            assert!(summary.injected() > 0, "{name} plan never fired");
        }
        for (name, seed) in ASYNC_PINNED_CASES {
            let a = run_async_pinned(name, seed, SchedulerKind::BinaryHeap);
            let b = run_async_pinned(name, seed, SchedulerKind::CalendarWheel);
            assert_eq!(async_fingerprint(&a), async_fingerprint(&b), "{name}");
        }
    }
}
