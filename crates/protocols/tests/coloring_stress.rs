//! Stress tests for the tree 3-coloring protocol's waiting-hierarchy
//! corner cases.
//!
//! The wake rule of a WAITING node (see `coloring.rs` module docs) has two
//! historical failure modes, both reproduced and fixed during development:
//!
//! 1. waking when the waited-on neighbor merely stepped deeper into the
//!    waiting hierarchy (premature wake — leaves consumed a sleeping hub's
//!    entire palette);
//! 2. missing the parent's `WAITING` announcement because `f₃(#WAITING)`
//!    was saturated by three waiting children (the 24-node tree from
//!    Prüfer seed 5 below), again stranding a node with zero free colors.
//!
//! These tests sweep thousands of (tree, seed) pairs — including the exact
//! historical counterexamples — and assert every run terminates with a
//! proper 3-coloring.

use stoneage_graph::io::from_edge_list;
use stoneage_graph::{generators, validate};
use stoneage_protocols::{decode_coloring, ColoringProtocol};
use stoneage_sim::SyncConfig;
use stoneage_testkit::harness::run_sync;

fn assert_colors(g: &stoneage_graph::Graph, seed: u64, label: &str) {
    let out = run_sync(
        &ColoringProtocol::new(),
        g,
        &SyncConfig {
            seed,
            max_rounds: 100_000,
        },
    )
    .unwrap_or_else(|e| panic!("{label} seed {seed}: {e}"));
    let colors = decode_coloring(&out.outputs);
    assert!(
        validate::is_proper_k_coloring(g, &colors, 3),
        "{label} seed {seed}: improper coloring"
    );
}

/// The 7-node tree that exposed failure mode 1.
#[test]
fn historical_counterexample_premature_wake() {
    let g = from_edge_list("7 6\n0 3\n0 5\n1 2\n1 3\n2 4\n2 6\n").unwrap();
    for seed in 0..50 {
        assert_colors(&g, seed, "premature-wake tree");
    }
}

/// The 24-node tree that exposed failure mode 2 (saturated #WAITING).
#[test]
fn historical_counterexample_saturated_waiting() {
    let g = from_edge_list(
        "24 23\n0 11\n0 22\n1 17\n2 17\n3 8\n4 8\n4 12\n4 22\n5 8\n6 18\n7 12\n\
         8 15\n9 11\n9 16\n10 18\n11 21\n12 18\n13 17\n13 19\n14 21\n14 23\n17 20\n18 20\n",
    )
    .unwrap();
    for seed in 0..50 {
        assert_colors(&g, seed, "saturated-waiting tree");
    }
}

#[test]
fn random_tree_sweep() {
    for n in [3usize, 5, 8, 13, 21, 34, 55, 89] {
        for gseed in 0..12u64 {
            let g = generators::random_tree(n, gseed);
            for seed in 0..6u64 {
                assert_colors(&g, seed, &format!("random tree n={n} gseed={gseed}"));
            }
        }
    }
}

#[test]
fn deep_waiting_hierarchies() {
    // Caterpillars and broom-like shapes maximize waiting-chain depth and
    // waiting-children saturation simultaneously.
    for (label, g) in [
        ("caterpillar", generators::caterpillar(20, 4)),
        ("broom", generators::caterpillar(2, 12)),
        ("star", generators::star(50)),
        ("double-star", {
            let mut b = stoneage_graph::GraphBuilder::new(22);
            for v in 2..12 {
                b.add_edge(0, v);
            }
            for v in 12..22 {
                b.add_edge(1, v);
            }
            b.add_edge(0, 1);
            b.build()
        }),
        ("spider", {
            // Center with 6 legs of length 4.
            let mut b = stoneage_graph::GraphBuilder::new(25);
            let mut next = 1u32;
            for _ in 0..6 {
                let mut prev = 0u32;
                for _ in 0..4 {
                    b.add_edge(prev, next);
                    prev = next;
                    next += 1;
                }
            }
            b.build()
        }),
    ] {
        for seed in 0..20 {
            assert_colors(&g, seed, label);
        }
    }
}

#[test]
#[ignore = "long-running exhaustive sweep; run with --ignored"]
fn exhaustive_small_trees() {
    for n in 3..45 {
        for gseed in 0..40u64 {
            let g = generators::random_tree(n, gseed);
            for seed in 0..40u64 {
                assert_colors(&g, seed, &format!("n={n} gseed={gseed}"));
            }
        }
    }
}
