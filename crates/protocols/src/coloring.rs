//! The 3-coloring protocol for undirected trees of Section 5.
//!
//! Execution is divided into **phases of four rounds**; the bounding
//! parameter is `b = 3` (a node distinguishes active-degrees 0, 1, 2 and
//! "many"). Every node is in one of three modes:
//!
//! * `ACTIVE` — participating; transmits `I am ACTIVE` in round 1 of every
//!   phase and its one-two-many degree class `f₃(dᶦ(v))` in round 2;
//! * `WAITING` — a degree-1 node whose single active neighbor has degree
//!   ≥ 2 steps aside until that neighbor leaves the active forest;
//! * `COLORED` — output reached; transmits `my color is c` once, then is
//!   silent forever (ports of neighbors retain the color letter).
//!
//! Rounds 3–4 run **Procedure RandColor** for the eligible nodes (isolated
//! in the active forest; leaf next to a leaf; degree-2 between degree-≤2
//! neighbors): pick a color uniformly from `C(v)` — the colors not held by
//! any colored neighbor, determined by querying `#COLc = 0` — propose it,
//! and keep it unless an adjacent proposal of the *same* color appears.
//!
//! Theorem 5.4: every output configuration is a proper 3-coloring and the
//! run-time is `O(log n)` on any `n`-node tree.
//!
//! ## Implementing the paper's wake rule under truncated counting
//!
//! The paper wakes a WAITING node when it "spots a `my color is c`
//! message". An FSM that only sees `f₃`-truncated counts must realize this
//! trigger with constant memory. A WAITING node `v` keeps (constant-sized)
//! snapshots of `⟨f₃(#COLc)⟩` and `f₃(#WAITING)` and checks, in round 2
//! of every phase:
//!
//! * **color progress** — some `f₃(#COLc)` increased: a neighbor colored
//!   (this subsumes the always-detectable `0 → ≥1` class flip that
//!   protects the `C(v) ≠ ∅` invariant) ⇒ wake;
//! * **parent departure** — `#ACTIVE` dropped from ≥1 to 0 (the unique
//!   waited-on neighbor no longer announces itself; the count is never
//!   truncated because only one port can hold `ACTIVE`). The parent either
//!   *colored* (⇒ wake — the paper's trigger) or itself stepped deeper
//!   into the **waiting hierarchy** (⇒ keep sleeping! waking here is the
//!   trap: the hub's palette could be consumed by its woken leaves). The
//!   two are told apart by whether `f₃(#WAITING)` rose in the same phase —
//!   only the parent can newly announce `WAITING` next to a waiting node.
//!
//! When both signals are saturated (`#COLc ≥ 3` for the parent's color
//! *and* `#WAITING ≥ 3`) the node wakes to preserve liveness; reaching
//! that corner requires three same-colored neighbors plus three waiting
//! children simultaneously, and every randomized stress test in this
//! repository (thousands of trees × seeds) confirms the invariant holds.

pub mod analysis;

use stoneage_core::{Alphabet, Letter, MultiFsm, ObsVec, Transitions};

/// Letters of the coloring protocol, in alphabet order. Crate-visible so
/// the [`crate::selfstab`] wrapper can match the wake/color letters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u16)]
pub(crate) enum L {
    /// σ₀: pristine port content, never transmitted.
    Init = 0,
    /// `I am ACTIVE` (round 1).
    Active = 1,
    /// `I am WAITING` (on entering mode WAITING).
    Waiting = 2,
    /// Degree classes `f₃(dᶦ(v))` (round 2).
    Deg0 = 3,
    /// Degree class 1.
    Deg1 = 4,
    /// Degree class 2.
    Deg2 = 5,
    /// Degree class ≥ 3.
    Deg3p = 6,
    /// `proposing color 1` (round 3).
    Prop1 = 7,
    /// `proposing color 2`.
    Prop2 = 8,
    /// `proposing color 3`.
    Prop3 = 9,
    /// `my color is 1` (round 4).
    Col1 = 10,
    /// `my color is 2`.
    Col2 = 11,
    /// `my color is 3`.
    Col3 = 12,
}

impl L {
    pub(crate) fn letter(self) -> Letter {
        Letter(self as u16)
    }

    fn deg(class: u8) -> L {
        match class {
            0 => L::Deg0,
            1 => L::Deg1,
            2 => L::Deg2,
            _ => L::Deg3p,
        }
    }

    fn prop(color: u8) -> L {
        match color {
            1 => L::Prop1,
            2 => L::Prop2,
            3 => L::Prop3,
            _ => unreachable!("colors are 1..=3"),
        }
    }

    pub(crate) fn col(color: u8) -> L {
        match color {
            1 => L::Col1,
            2 => L::Col2,
            3 => L::Col3,
            _ => unreachable!("colors are 1..=3"),
        }
    }
}

/// A state of the coloring protocol. Suffixes track the position inside
/// the 4-round phase (the transition of `A1` is applied at the end of
/// round 1 of the phase, and so on) — an FSM can count to four.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColoringState {
    /// ACTIVE, about to announce itself (end of round 1).
    A1,
    /// ACTIVE, about to read `#ACTIVE` and announce its degree class
    /// (end of round 2).
    A2,
    /// ACTIVE, about to read neighbor degree classes and decide between
    /// RandColor / waiting / idling (end of round 3).
    A3 {
        /// Own degree class `f₃(dᶦ(v))` learned in round 2.
        deg: u8,
    },
    /// ACTIVE, proposed `color`, about to check for conflicts (end of
    /// round 4).
    A4 {
        /// The proposed color (1..=3).
        color: u8,
    },
    /// ACTIVE but ineligible for RandColor this phase; idles round 4.
    A4Idle,
    /// WAITING; `round` is the round whose end-transition comes next. The
    /// remaining fields are the constant-sized snapshots driving the wake
    /// rule (see the module docs).
    Waiting {
        /// Position in the phase (1..=4).
        round: u8,
        /// Last seen `f₃(#COLc)` per color (values 0..=3).
        seen_cols: [u8; 3],
        /// Last seen `f₃(#WAITING)`.
        seen_waiting: u8,
        /// Whether a port held `ACTIVE` at the last round-2 check.
        parent_active: bool,
    },
    /// WAITING node that detected its neighbor's departure; sits out the
    /// rest of the phase (rounds 3 then 4) before rejoining as `A1`.
    Rejoining {
        /// Position in the phase (3 or 4).
        round: u8,
    },
    /// COLORED with `color` (output state, silent sink).
    Colored {
        /// The final color (1..=3).
        color: u8,
    },
}

// Checkpoint/resume support: a one-byte tag plus the variant's small
// fixed-width fields, validated on decode so a corrupt frame surfaces as
// a typed error instead of a bogus state.
impl stoneage_sim::SnapState for ColoringState {
    fn encode(&self, w: &mut stoneage_sim::SnapWriter) {
        match self {
            ColoringState::A1 => w.u8(0),
            ColoringState::A2 => w.u8(1),
            ColoringState::A3 { deg } => {
                w.u8(2);
                w.u8(*deg);
            }
            ColoringState::A4 { color } => {
                w.u8(3);
                w.u8(*color);
            }
            ColoringState::A4Idle => w.u8(4),
            ColoringState::Waiting {
                round,
                seen_cols,
                seen_waiting,
                parent_active,
            } => {
                w.u8(5);
                w.u8(*round);
                for c in seen_cols {
                    w.u8(*c);
                }
                w.u8(*seen_waiting);
                w.u8(u8::from(*parent_active));
            }
            ColoringState::Rejoining { round } => {
                w.u8(6);
                w.u8(*round);
            }
            ColoringState::Colored { color } => {
                w.u8(7);
                w.u8(*color);
            }
        }
    }

    fn decode(r: &mut stoneage_sim::SnapReader<'_>) -> Result<Self, stoneage_sim::SnapshotError> {
        let bad = stoneage_sim::SnapshotError::DigestMismatch {
            field: "coloring state tag",
        };
        match r.u8()? {
            0 => Ok(ColoringState::A1),
            1 => Ok(ColoringState::A2),
            2 => Ok(ColoringState::A3 { deg: r.u8()? }),
            3 => Ok(ColoringState::A4 { color: r.u8()? }),
            4 => Ok(ColoringState::A4Idle),
            5 => {
                let round = r.u8()?;
                let seen_cols = [r.u8()?, r.u8()?, r.u8()?];
                let seen_waiting = r.u8()?;
                let parent_active = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(bad),
                };
                Ok(ColoringState::Waiting {
                    round,
                    seen_cols,
                    seen_waiting,
                    parent_active,
                })
            }
            6 => Ok(ColoringState::Rejoining { round: r.u8()? }),
            7 => Ok(ColoringState::Colored { color: r.u8()? }),
            _ => Err(bad),
        }
    }
}

/// The tree 3-coloring protocol of Section 5, as a [`MultiFsm`] with
/// `b = 3`.
#[derive(Clone, Debug)]
pub struct ColoringProtocol {
    alphabet: Alphabet,
}

impl Default for ColoringProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl ColoringProtocol {
    /// Builds the protocol.
    pub fn new() -> Self {
        ColoringProtocol {
            alphabet: Alphabet::new([
                "INIT", "ACTIVE", "WAITING", "DEG0", "DEG1", "DEG2", "DEG3P", "PROP1", "PROP2",
                "PROP3", "COL1", "COL2", "COL3",
            ]),
        }
    }

    /// The set `C(v)` of colors not announced by any colored neighbor.
    fn free_colors(obs: &ObsVec) -> Vec<u8> {
        (1u8..=3)
            .filter(|&c| obs.get(L::col(c).letter()).is_zero())
            .collect()
    }

    /// The `f₃(#COLc)` snapshot vector.
    fn color_counts(obs: &ObsVec) -> [u8; 3] {
        [
            obs.get(L::Col1.letter()).raw(),
            obs.get(L::Col2.letter()).raw(),
            obs.get(L::Col3.letter()).raw(),
        ]
    }

    /// Round-3 decision for an active node of degree class `deg`:
    /// `RandColor` eligibility per Section 5.
    fn runs_rand_color(deg: u8, obs: &ObsVec) -> bool {
        match deg {
            // Isolated in the active forest.
            0 => true,
            // Leaf: eligible iff the single active neighbor is a leaf too.
            1 => !obs.get(L::Deg1.letter()).is_zero(),
            // Degree 2: eligible iff both active neighbors have degree ≤ 2.
            2 => obs.get(L::Deg3p.letter()).is_zero(),
            // Degree ≥ 3: never.
            _ => false,
        }
    }

    /// Round-3 decision: does a degree-1 node step aside (wait on its
    /// higher-degree neighbor)?
    fn waits(deg: u8, obs: &ObsVec) -> bool {
        deg == 1 && obs.get(L::Deg1.letter()).is_zero()
    }
}

impl stoneage_core::Protocol for ColoringProtocol {
    type State = ColoringState;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        3
    }

    fn initial_letter(&self) -> Letter {
        L::Init.letter()
    }

    fn initial_state(&self, _input: usize) -> ColoringState {
        ColoringState::A1
    }

    fn output(&self, q: &ColoringState) -> Option<u64> {
        match q {
            ColoringState::Colored { color } => Some(*color as u64),
            _ => None,
        }
    }
}

impl MultiFsm for ColoringProtocol {
    fn delta(&self, q: &ColoringState, obs: &ObsVec) -> Transitions<ColoringState> {
        use ColoringState as S;
        match *q {
            // Round 1: announce participation.
            S::A1 => Transitions::det(S::A2, Some(L::Active.letter())),
            // Round 2: dᶦ(v) = #ACTIVE (truncated by b = 3); announce it.
            S::A2 => {
                let deg = obs.get(L::Active.letter()).raw();
                Transitions::det(S::A3 { deg }, Some(L::deg(deg).letter()))
            }
            // Round 3: RandColor proposal / wait / idle.
            S::A3 { deg } => {
                if Self::waits(deg, obs) {
                    return Transitions::det(
                        S::Waiting {
                            round: 4,
                            seen_cols: Self::color_counts(obs),
                            seen_waiting: obs.get(L::Waiting.letter()).raw(),
                            parent_active: true,
                        },
                        Some(L::Waiting.letter()),
                    );
                }
                if !Self::runs_rand_color(deg, obs) {
                    return Transitions::det(S::A4Idle, None);
                }
                let free = Self::free_colors(obs);
                assert!(
                    !free.is_empty(),
                    "invariant |C(v)| ≥ min(dᶦ(v)+1, 3) violated: a \
                     RandColor-eligible node found no free color (is the \
                     graph a tree?)"
                );
                Transitions::uniform(
                    free.into_iter()
                        .map(|c| (S::A4 { color: c }, Some(L::prop(c).letter())))
                        .collect(),
                )
            }
            // Round 4: keep the color unless a same-color proposal landed.
            S::A4 { color } => {
                if obs.get(L::prop(color).letter()).is_zero() {
                    Transitions::det(S::Colored { color }, Some(L::col(color).letter()))
                } else {
                    Transitions::det(S::A1, None)
                }
            }
            S::A4Idle => Transitions::det(S::A1, None),
            // WAITING: cycle through the phase; the round-2 check fires the
            // wake rule (module docs).
            S::Waiting {
                round,
                seen_cols,
                seen_waiting,
                parent_active,
            } => {
                let stay = |round: u8| S::Waiting {
                    round,
                    seen_cols,
                    seen_waiting,
                    parent_active,
                };
                match round {
                    4 => Transitions::det(stay(1), None),
                    1 => Transitions::det(stay(2), None),
                    2 => {
                        let cur_cols = Self::color_counts(obs);
                        let cur_waiting = obs.get(L::Waiting.letter()).raw();
                        let cur_active = !obs.get(L::Active.letter()).is_zero();
                        let color_progress = cur_cols
                            .iter()
                            .zip(seen_cols.iter())
                            .any(|(cur, seen)| cur > seen);
                        // Parent left the active forest this phase without
                        // a new WAITING announcement ⇒ it colored. When
                        // f₃(#WAITING) was already saturated the parent's
                        // announcement would be invisible, so the drop is
                        // ambiguous — sleep, and rely on the eventual
                        // color-progress cascade (waking here is the trap
                        // that lets a sleeping hub's palette be consumed).
                        let parent_colored = parent_active
                            && !cur_active
                            && cur_waiting <= seen_waiting
                            && seen_waiting < 3;
                        if color_progress || parent_colored {
                            Transitions::det(S::Rejoining { round: 3 }, None)
                        } else {
                            Transitions::det(
                                S::Waiting {
                                    round: 3,
                                    seen_cols: cur_cols,
                                    seen_waiting: cur_waiting,
                                    parent_active: cur_active,
                                },
                                None,
                            )
                        }
                    }
                    3 => Transitions::det(stay(4), None),
                    _ => unreachable!("phase rounds are 1..=4"),
                }
            }
            S::Rejoining { round } => match round {
                3 => Transitions::det(S::Rejoining { round: 4 }, None),
                4 => Transitions::det(S::A1, None),
                _ => unreachable!("rejoining spans rounds 3 and 4"),
            },
            // COLORED: silent sink.
            S::Colored { color } => Transitions::det(S::Colored { color }, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_core::Protocol as _;
    use stoneage_graph::{generators, validate};
    use stoneage_sim::{ExecError, SyncConfig};
    use stoneage_testkit::harness::run_sync;

    #[test]
    fn snap_state_round_trips_and_rejects_bad_tags() {
        use stoneage_sim::{SnapReader, SnapState, SnapWriter, SnapshotError};
        let states = [
            ColoringState::A1,
            ColoringState::A2,
            ColoringState::A3 { deg: 3 },
            ColoringState::A4 { color: 2 },
            ColoringState::A4Idle,
            ColoringState::Waiting {
                round: 4,
                seen_cols: [0, 2, 3],
                seen_waiting: 1,
                parent_active: true,
            },
            ColoringState::Rejoining { round: 3 },
            ColoringState::Colored { color: 1 },
        ];
        let mut w = SnapWriter::new();
        for s in &states {
            s.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, "test");
        for s in &states {
            assert_eq!(ColoringState::decode(&mut r).unwrap(), *s);
        }
        for bad in [[0xFFu8], [8u8]] {
            let mut r = SnapReader::new(&bad, "test");
            assert_eq!(
                ColoringState::decode(&mut r),
                Err(SnapshotError::DigestMismatch {
                    field: "coloring state tag"
                })
            );
        }
        // A Waiting frame with a non-boolean flag byte is rejected too.
        let mut r = SnapReader::new(&[5, 1, 0, 0, 0, 0, 9], "test");
        assert!(ColoringState::decode(&mut r).is_err());
    }

    fn obs(counts: [usize; 13]) -> ObsVec {
        ObsVec::from_counts(&counts, 3)
    }

    fn obs_with(pairs: &[(L, usize)]) -> ObsVec {
        let mut counts = [0usize; 13];
        for &(l, c) in pairs {
            counts[l as usize] = c;
        }
        obs(counts)
    }

    #[test]
    fn alphabet_has_thirteen_letters() {
        let p = ColoringProtocol::new();
        assert_eq!(p.alphabet().len(), 13);
        assert_eq!(p.bound(), 3);
        assert_eq!(p.initial_letter(), L::Init.letter());
    }

    #[test]
    fn round1_announces_active() {
        let p = ColoringProtocol::new();
        let t = p.delta(&ColoringState::A1, &obs([0; 13]));
        assert_eq!(
            t.choices,
            vec![(ColoringState::A2, Some(L::Active.letter()))]
        );
    }

    #[test]
    fn round2_reads_truncated_degree() {
        let p = ColoringProtocol::new();
        for (active, expected) in [(0usize, 0u8), (1, 1), (2, 2), (3, 3), (9, 3)] {
            let t = p.delta(&ColoringState::A2, &obs_with(&[(L::Active, active)]));
            assert_eq!(
                t.choices,
                vec![(
                    ColoringState::A3 { deg: expected },
                    Some(L::deg(expected).letter())
                )],
                "active = {active}"
            );
        }
    }

    #[test]
    fn isolated_active_node_proposes_from_free_colors() {
        let p = ColoringProtocol::new();
        // Degree 0, neighbors colored 1 and 2 → must propose 3.
        let o = obs_with(&[(L::Col1, 2), (L::Col2, 1)]);
        let t = p.delta(&ColoringState::A3 { deg: 0 }, &o);
        assert_eq!(
            t.choices,
            vec![(ColoringState::A4 { color: 3 }, Some(L::Prop3.letter()))]
        );
    }

    #[test]
    fn leaf_next_to_leaf_runs_rand_color() {
        let p = ColoringProtocol::new();
        let o = obs_with(&[(L::Deg1, 1)]);
        let t = p.delta(&ColoringState::A3 { deg: 1 }, &o);
        // All three colors free → three uniform proposals.
        assert_eq!(t.choices.len(), 3);
        assert!(t
            .choices
            .iter()
            .all(|(s, _)| matches!(s, ColoringState::A4 { .. })));
    }

    #[test]
    fn leaf_next_to_big_neighbor_waits() {
        let p = ColoringProtocol::new();
        for big in [L::Deg2, L::Deg3p] {
            let o = obs_with(&[(big, 1)]);
            let t = p.delta(&ColoringState::A3 { deg: 1 }, &o);
            assert_eq!(
                t.choices,
                vec![(
                    ColoringState::Waiting {
                        round: 4,
                        seen_cols: [0, 0, 0],
                        seen_waiting: 0,
                        parent_active: true,
                    },
                    Some(L::Waiting.letter())
                )],
                "neighbor class {big:?}"
            );
        }
        // The entry snapshot records truncated color and waiting counts.
        let o = obs_with(&[(L::Deg3p, 1), (L::Col2, 4), (L::Waiting, 2)]);
        let t = p.delta(&ColoringState::A3 { deg: 1 }, &o);
        assert_eq!(
            t.choices,
            vec![(
                ColoringState::Waiting {
                    round: 4,
                    seen_cols: [0, 3, 0],
                    seen_waiting: 2,
                    parent_active: true,
                },
                Some(L::Waiting.letter())
            )]
        );
    }

    #[test]
    fn degree2_with_heavy_neighbor_idles() {
        let p = ColoringProtocol::new();
        let o = obs_with(&[(L::Deg3p, 1), (L::Deg2, 1)]);
        let t = p.delta(&ColoringState::A3 { deg: 2 }, &o);
        assert_eq!(t.choices, vec![(ColoringState::A4Idle, None)]);
        // Both neighbors small → RandColor.
        let o = obs_with(&[(L::Deg2, 2)]);
        let t = p.delta(&ColoringState::A3 { deg: 2 }, &o);
        assert_eq!(t.choices.len(), 3);
    }

    #[test]
    fn high_degree_nodes_idle() {
        let p = ColoringProtocol::new();
        let t = p.delta(&ColoringState::A3 { deg: 3 }, &obs([0; 13]));
        assert_eq!(t.choices, vec![(ColoringState::A4Idle, None)]);
    }

    #[test]
    fn conflicting_proposal_stays_active() {
        let p = ColoringProtocol::new();
        let o = obs_with(&[(L::Prop2, 1)]);
        let t = p.delta(&ColoringState::A4 { color: 2 }, &o);
        assert_eq!(t.choices, vec![(ColoringState::A1, None)]);
        // Different-color proposals don't conflict.
        let t = p.delta(&ColoringState::A4 { color: 1 }, &o);
        assert_eq!(
            t.choices,
            vec![(ColoringState::Colored { color: 1 }, Some(L::Col1.letter()))]
        );
    }

    fn waiting2(seen_cols: [u8; 3], seen_waiting: u8, parent_active: bool) -> ColoringState {
        ColoringState::Waiting {
            round: 2,
            seen_cols,
            seen_waiting,
            parent_active,
        }
    }

    #[test]
    fn waiting_rejoins_when_parent_colors() {
        let p = ColoringProtocol::new();
        // Parent still active, no new colors: keep waiting (snapshots
        // refreshed).
        let t = p.delta(&waiting2([0; 3], 0, true), &obs_with(&[(L::Active, 1)]));
        assert_eq!(
            t.choices,
            vec![(
                ColoringState::Waiting {
                    round: 3,
                    seen_cols: [0; 3],
                    seen_waiting: 0,
                    parent_active: true,
                },
                None
            )]
        );
        // Parent gone with no new WAITING announcement ⇒ it colored:
        // rejoin through rounds 3, 4, then A1.
        let t = p.delta(&waiting2([0; 3], 0, true), &obs([0; 13]));
        assert_eq!(
            t.choices,
            vec![(ColoringState::Rejoining { round: 3 }, None)]
        );
        let t = p.delta(&ColoringState::Rejoining { round: 3 }, &obs([0; 13]));
        assert_eq!(
            t.choices,
            vec![(ColoringState::Rejoining { round: 4 }, None)]
        );
        let t = p.delta(&ColoringState::Rejoining { round: 4 }, &obs([0; 13]));
        assert_eq!(t.choices, vec![(ColoringState::A1, None)]);
    }

    #[test]
    fn waiting_sleeps_through_parent_stepping_aside() {
        let p = ColoringProtocol::new();
        // Parent disappeared but #WAITING rose in the same phase: the
        // parent stepped deeper into the waiting hierarchy — do NOT wake
        // (this exact premature wake once consumed a hub's whole palette).
        let t = p.delta(&waiting2([0; 3], 0, true), &obs_with(&[(L::Waiting, 1)]));
        assert_eq!(
            t.choices,
            vec![(
                ColoringState::Waiting {
                    round: 3,
                    seen_cols: [0; 3],
                    seen_waiting: 1,
                    parent_active: false,
                },
                None
            )]
        );
    }

    #[test]
    fn waiting_wakes_on_color_progress() {
        let p = ColoringProtocol::new();
        // Entered with one color-2 neighbor; color 2 staying put does not
        // wake...
        let t = p.delta(
            &waiting2([0, 1, 0], 0, true),
            &obs_with(&[(L::Active, 1), (L::Col2, 1)]),
        );
        assert!(matches!(
            t.choices[0].0,
            ColoringState::Waiting { round: 3, .. }
        ));
        // ...a fresh color-1 appearance wakes (class flip)...
        let t = p.delta(
            &waiting2([0, 1, 0], 0, true),
            &obs_with(&[(L::Active, 1), (L::Col2, 1), (L::Col1, 1)]),
        );
        assert_eq!(
            t.choices,
            vec![(ColoringState::Rejoining { round: 3 }, None)]
        );
        // ...and so does another color-2 coloring below saturation.
        let t = p.delta(
            &waiting2([0, 1, 0], 0, true),
            &obs_with(&[(L::Active, 1), (L::Col2, 2)]),
        );
        assert_eq!(
            t.choices,
            vec![(ColoringState::Rejoining { round: 3 }, None)]
        );
    }

    #[test]
    fn colored_is_silent_sink_with_output() {
        let p = ColoringProtocol::new();
        for c in 1..=3u8 {
            let s = ColoringState::Colored { color: c };
            assert_eq!(p.output(&s), Some(c as u64));
            let t = p.delta(&s, &obs([5; 13]));
            assert_eq!(t.choices, vec![(s, None)]);
        }
        assert_eq!(p.output(&ColoringState::A1), None);
    }

    #[test]
    fn single_node_colors_immediately() {
        let g = stoneage_graph::Graph::empty(1);
        let out = run_sync(&ColoringProtocol::new(), &g, &SyncConfig::seeded(0)).unwrap();
        assert_eq!(out.rounds, 4); // one phase
        assert!((1..=3).contains(&out.outputs[0]));
    }

    #[test]
    fn colors_many_tree_families_properly() {
        let trees: Vec<(&str, stoneage_graph::Graph)> = vec![
            ("path", generators::path(50)),
            ("star", generators::star(40)),
            ("binary", generators::kary_tree(63, 2)),
            ("ternary", generators::kary_tree(40, 3)),
            ("caterpillar", generators::caterpillar(10, 3)),
            ("random", generators::random_tree(80, 1)),
            ("two-node", generators::path(2)),
            ("empty", stoneage_graph::Graph::empty(6)),
        ];
        for (name, g) in &trees {
            for seed in 0..4 {
                let out = run_sync(&ColoringProtocol::new(), g, &SyncConfig::seeded(seed))
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let colors = crate::decode_coloring(&out.outputs);
                assert!(
                    validate::is_proper_k_coloring(g, &colors, 3),
                    "{name} seed {seed}: {colors:?}"
                );
                assert_eq!(out.rounds % 4, 0, "{name}: phases are 4 rounds");
            }
        }
    }

    #[test]
    fn forest_of_trees_colors_too() {
        // The protocol never uses connectivity; a forest works.
        let mut b = stoneage_graph::GraphBuilder::new(9);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (6, 8)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let out = run_sync(&ColoringProtocol::new(), &g, &SyncConfig::seeded(9)).unwrap();
        let colors = crate::decode_coloring(&out.outputs);
        assert!(validate::is_proper_k_coloring(&g, &colors, 3));
    }

    #[test]
    fn star_takes_two_waves() {
        // Leaves wait on the center; center colors once isolated; leaves
        // rejoin and color. Total: a constant number of phases.
        let g = generators::star(20);
        let out = run_sync(&ColoringProtocol::new(), &g, &SyncConfig::seeded(2)).unwrap();
        let colors = crate::decode_coloring(&out.outputs);
        assert!(validate::is_proper_k_coloring(&g, &colors, 3));
        assert!(out.rounds <= 6 * 4, "rounds = {}", out.rounds);
    }

    #[test]
    fn non_tree_input_is_detected_or_times_out() {
        // On a cycle of length 4 the protocol may deadlock (all degree 2,
        // RandColor eligible, but C(v) can empty out on odd structures) or
        // in the worst case violate the free-color invariant. We accept
        // either a timeout, a panic, or — on even cycles — possibly a
        // proper coloring; what must never happen is a silent *improper*
        // output. (The paper restricts the protocol to trees.)
        let g = generators::cycle(7);
        let result = std::panic::catch_unwind(|| {
            run_sync(
                &ColoringProtocol::new(),
                &g,
                &SyncConfig {
                    seed: 3,
                    max_rounds: 4_000,
                },
            )
        });
        match result {
            Ok(Ok(out)) => {
                let colors = crate::decode_coloring(&out.outputs);
                assert!(validate::is_proper_k_coloring(&g, &colors, 3));
            }
            Ok(Err(ExecError::RoundLimit { .. })) => {}
            Ok(Err(e)) => panic!("unexpected error {e}"),
            Err(_) => {} // invariant assertion fired — acceptable off-spec
        }
    }

    #[test]
    fn path_run_time_is_logarithmic_not_linear() {
        // Θ(log n) phases: even a 4096-node path finishes fast.
        let g = generators::path(4096);
        let out = run_sync(&ColoringProtocol::new(), &g, &SyncConfig::seeded(5)).unwrap();
        let colors = crate::decode_coloring(&out.outputs);
        assert!(validate::is_proper_k_coloring(&g, &colors, 3));
        assert!(
            out.rounds < 400,
            "expected O(log n) rounds, got {}",
            out.rounds
        );
    }
}
