//! The maximal-independent-set protocol of Section 4 — the paper's
//! Figure 1.
//!
//! Seven states (`DOWN1`, `DOWN2`, `UP0`, `UP1`, `UP2`, `WIN`, `LOSE`),
//! an alphabet identical to the state set, and bounding parameter `b = 1`
//! (the "beeping" bound: a node only distinguishes *zero* from *at least
//! one*). A node transmits the letter `q` exactly when it *moves* to state
//! `q` from a different state, so each port always mirrors the sender's
//! current state (one round stale).
//!
//! The protocol organizes execution into **tournaments** — one pass of
//! `DOWN1 → UP₀ → UP₁ → … → (WIN | DOWN2)` — whose lengths are
//! `Geom(1/2) + 2` distributed. Neighbors' tournaments are only *softly*
//! aligned, via per-state *delaying sets*: a node stays in state `q` while
//! any neighbor is in a state of `D(q)`. A node wins its tournament (joins
//! the MIS) when its tournament outlasted all its neighbors'; losers
//! observe a `WIN` next door and exit. Theorem 4.5: every output
//! configuration is an MIS, and the run-time is `O(log² n)` in expectation
//! and w.h.p.
//!
//! The [`analysis`] submodule instruments executions (tournament lengths,
//! per-tournament survivor graphs) for experiments E3 and E4.

pub mod analysis;

use stoneage_core::{Alphabet, Letter, MultiFsm, ObsVec, Transitions};

/// A state of the MIS protocol. The discriminant doubles as the letter
/// index of the letter announcing the state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u16)]
pub enum MisState {
    /// First state of a tournament; delayed by neighbors in `DOWN2`.
    Down1 = 0,
    /// Last state of a (lost) tournament; delayed by all `UP` states.
    Down2 = 1,
    /// `UP₀`; delayed by `DOWN1` and `UP₂`.
    Up0 = 2,
    /// `UP₁`; delayed by `UP₀`.
    Up1 = 3,
    /// `UP₂`; delayed by `UP₁`.
    Up2 = 4,
    /// Output: member of the MIS.
    Win = 5,
    /// Output: not a member (a neighbor won).
    Lose = 6,
}

impl MisState {
    /// All seven states, in letter order.
    pub const ALL: [MisState; 7] = [
        MisState::Down1,
        MisState::Down2,
        MisState::Up0,
        MisState::Up1,
        MisState::Up2,
        MisState::Win,
        MisState::Lose,
    ];

    /// The letter announcing this state.
    pub fn letter(self) -> Letter {
        Letter(self as u16)
    }

    /// Whether this is one of the three `UP` states.
    pub fn is_up(self) -> bool {
        matches!(self, MisState::Up0 | MisState::Up1 | MisState::Up2)
    }

    /// Whether this is an active (non-output) state.
    pub fn is_active(self) -> bool {
        !matches!(self, MisState::Win | MisState::Lose)
    }

    /// The `UP_j` state for `j ∈ {0, 1, 2}`.
    pub fn up(j: u8) -> MisState {
        match j % 3 {
            0 => MisState::Up0,
            1 => MisState::Up1,
            _ => MisState::Up2,
        }
    }

    /// For an `UP_j` state, its index `j`.
    pub fn up_index(self) -> Option<u8> {
        match self {
            MisState::Up0 => Some(0),
            MisState::Up1 => Some(1),
            MisState::Up2 => Some(2),
            _ => None,
        }
    }

    /// The state encoded by [`MisState::letter`]'s index, used by the
    /// snapshot codec.
    pub fn from_index(i: u16) -> Option<MisState> {
        MisState::ALL.get(i as usize).copied()
    }

    /// The paper's delaying set `D(q)`: the node stays in `q` while any
    /// neighbor announces a state in `D(q)`.
    pub fn delaying_set(self) -> &'static [MisState] {
        match self {
            // DOWN1 is delayed by DOWN2.
            MisState::Down1 => &[MisState::Down2],
            // DOWN2 is delayed by all three UP states.
            MisState::Down2 => &[MisState::Up0, MisState::Up1, MisState::Up2],
            // UP_j is delayed by UP_{j-1 mod 3}; UP0 also by DOWN1.
            MisState::Up0 => &[MisState::Up2, MisState::Down1],
            MisState::Up1 => &[MisState::Up0],
            MisState::Up2 => &[MisState::Up1],
            MisState::Win | MisState::Lose => &[],
        }
    }
}

// Checkpoint/resume support: one byte per node, validated on decode so
// a corrupt frame surfaces as a typed error instead of a bogus state.
impl stoneage_sim::SnapState for MisState {
    fn encode(&self, w: &mut stoneage_sim::SnapWriter) {
        w.u8(*self as u8);
    }

    fn decode(r: &mut stoneage_sim::SnapReader<'_>) -> Result<Self, stoneage_sim::SnapshotError> {
        MisState::from_index(u16::from(r.u8()?)).ok_or(
            stoneage_sim::SnapshotError::DigestMismatch {
                field: "mis state tag",
            },
        )
    }
}

/// The MIS protocol of Section 4, as a [`MultiFsm`] with `b = 1`.
///
/// Compile through [`stoneage_core::SingleLetter`] and
/// [`stoneage_core::Synchronized`] for asynchronous execution; run directly
/// on the synchronous engine otherwise.
#[derive(Clone, Debug)]
pub struct MisProtocol {
    alphabet: Alphabet,
}

impl Default for MisProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl MisProtocol {
    /// Builds the protocol.
    pub fn new() -> Self {
        MisProtocol {
            alphabet: Alphabet::new(["DOWN1", "DOWN2", "UP0", "UP1", "UP2", "WIN", "LOSE"]),
        }
    }

    /// Whether a neighbor in a delaying state pins `q` in place.
    fn is_delayed(&self, q: MisState, obs: &ObsVec) -> bool {
        q.delaying_set()
            .iter()
            .any(|d| !obs.get(d.letter()).is_zero())
    }

    /// The emission rule: transmit the target state's letter exactly on a
    /// state *change*.
    fn moving(from: MisState, to: MisState) -> (MisState, Option<Letter>) {
        if from == to {
            (to, None)
        } else {
            (to, Some(to.letter()))
        }
    }
}

impl stoneage_core::Protocol for MisProtocol {
    type State = MisState;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        1
    }

    fn initial_letter(&self) -> Letter {
        MisState::Down1.letter()
    }

    fn initial_state(&self, _input: usize) -> MisState {
        MisState::Down1
    }

    fn output(&self, q: &MisState) -> Option<u64> {
        match q {
            MisState::Win => Some(1),
            MisState::Lose => Some(0),
            _ => None,
        }
    }
}

impl MultiFsm for MisProtocol {
    fn delta(&self, q: &MisState, obs: &ObsVec) -> Transitions<MisState> {
        let q = *q;
        // Sinks first.
        if let MisState::Win | MisState::Lose = q {
            return Transitions::det(q, None);
        }
        // Delaying sets: stay (silently) while a neighbor delays us.
        if self.is_delayed(q, obs) {
            return Transitions::det(q, None);
        }
        match q {
            MisState::Down1 => {
                // Start the tournament's UP climb.
                Transitions::det(MisState::Up0, Some(MisState::Up0.letter()))
            }
            MisState::Down2 => {
                // A WIN next door ⇒ LOSE; otherwise start a new tournament.
                let heard_win = !obs.get(MisState::Win.letter()).is_zero();
                let to = if heard_win {
                    MisState::Lose
                } else {
                    MisState::Down1
                };
                Transitions::det(to, Some(to.letter()))
            }
            up => {
                let j = up.up_index().expect("remaining states are UP states");
                let next_up = MisState::up(j + 1);
                // Fair coin: heads climbs to UP_{j+1}; tails ends the
                // tournament — WIN if no neighbor is in UP_j or UP_{j+1}
                // (our tournament outlasted theirs), DOWN2 otherwise.
                let heads = Self::moving(up, next_up);
                let rivals =
                    !obs.get(up.letter()).is_zero() || !obs.get(next_up.letter()).is_zero();
                let tails = if rivals {
                    Self::moving(up, MisState::Down2)
                } else {
                    Self::moving(up, MisState::Win)
                };
                Transitions::uniform(vec![heads, tails])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_core::Protocol as _;
    use stoneage_core::{fb, BoundedCount};
    use stoneage_graph::{generators, validate};
    use stoneage_sim::SyncConfig;

    #[test]
    fn snap_state_round_trips_and_rejects_bad_tags() {
        use stoneage_sim::{SnapReader, SnapState, SnapWriter, SnapshotError};
        let mut w = SnapWriter::new();
        for s in MisState::ALL {
            s.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, "test");
        for s in MisState::ALL {
            assert_eq!(MisState::decode(&mut r).unwrap(), s);
        }
        let mut r = SnapReader::new(&[0xFF], "test");
        assert_eq!(
            MisState::decode(&mut r),
            Err(SnapshotError::DigestMismatch {
                field: "mis state tag"
            })
        );
    }
    use stoneage_testkit::harness::run_sync;

    fn obs(counts: [usize; 7]) -> ObsVec {
        ObsVec::from_counts(&counts, 1)
    }

    #[test]
    fn alphabet_mirrors_states() {
        let p = MisProtocol::new();
        assert_eq!(p.alphabet().len(), 7);
        for s in MisState::ALL {
            assert_eq!(
                p.alphabet().name(s.letter()),
                format!("{s:?}").to_uppercase()
            );
        }
        assert_eq!(p.bound(), 1);
        assert_eq!(p.initial_letter(), MisState::Down1.letter());
    }

    #[test]
    fn outputs_are_win_lose_only() {
        let p = MisProtocol::new();
        assert_eq!(p.output(&MisState::Win), Some(1));
        assert_eq!(p.output(&MisState::Lose), Some(0));
        for s in [
            MisState::Down1,
            MisState::Down2,
            MisState::Up0,
            MisState::Up1,
            MisState::Up2,
        ] {
            assert_eq!(p.output(&s), None);
        }
    }

    #[test]
    fn down1_is_delayed_by_down2() {
        let p = MisProtocol::new();
        let t = p.delta(&MisState::Down1, &obs([0, 1, 0, 0, 0, 0, 0]));
        assert_eq!(t.choices, vec![(MisState::Down1, None)]);
        // Not delayed: moves up, announcing UP0.
        let t = p.delta(&MisState::Down1, &obs([5, 0, 3, 0, 0, 2, 0]));
        assert_eq!(
            t.choices,
            vec![(MisState::Up0, Some(MisState::Up0.letter()))]
        );
    }

    #[test]
    fn down2_loses_on_win_and_restarts_otherwise() {
        let p = MisProtocol::new();
        // Delayed by any UP neighbor.
        for up in [2usize, 3, 4] {
            let mut c = [0usize; 7];
            c[up] = 1;
            let t = p.delta(&MisState::Down2, &obs(c));
            assert_eq!(t.choices, vec![(MisState::Down2, None)]);
        }
        // WIN next door → LOSE.
        let t = p.delta(&MisState::Down2, &obs([0, 0, 0, 0, 0, 2, 0]));
        assert_eq!(
            t.choices,
            vec![(MisState::Lose, Some(MisState::Lose.letter()))]
        );
        // Quiet neighborhood → new tournament.
        let t = p.delta(&MisState::Down2, &obs([1, 1, 0, 0, 0, 0, 3]));
        assert_eq!(
            t.choices,
            vec![(MisState::Down1, Some(MisState::Down1.letter()))]
        );
    }

    #[test]
    fn up_states_flip_fair_coins() {
        let p = MisProtocol::new();
        // UP0 with no rivals: heads → UP1, tails → WIN.
        let t = p.delta(&MisState::Up0, &obs([0, 1, 0, 0, 0, 0, 1]));
        assert_eq!(t.choices.len(), 2);
        assert_eq!(t.choices[0], (MisState::Up1, Some(MisState::Up1.letter())));
        assert_eq!(t.choices[1], (MisState::Win, Some(MisState::Win.letter())));
        // UP0 with a rival in UP0 or UP1: tails → DOWN2.
        for rival in [2usize, 3] {
            let mut c = [0usize; 7];
            c[rival] = 1;
            let t = p.delta(&MisState::Up0, &obs(c));
            assert_eq!(
                t.choices[1],
                (MisState::Down2, Some(MisState::Down2.letter()))
            );
        }
        // UP0 is delayed by UP2 and DOWN1.
        for delayer in [4usize, 0] {
            let mut c = [0usize; 7];
            c[delayer] = 1;
            let t = p.delta(&MisState::Up0, &obs(c));
            assert_eq!(t.choices, vec![(MisState::Up0, None)]);
        }
    }

    #[test]
    fn up2_wraps_to_up0() {
        let p = MisProtocol::new();
        let t = p.delta(&MisState::Up2, &obs([0; 7]));
        assert_eq!(t.choices[0], (MisState::Up0, Some(MisState::Up0.letter())));
        // Rivals for UP2 are UP2 and UP0.
        let t = p.delta(&MisState::Up2, &obs([0, 0, 1, 0, 0, 0, 0]));
        assert_eq!(
            t.choices[1],
            (MisState::Down2, Some(MisState::Down2.letter()))
        );
    }

    #[test]
    fn sinks_are_absorbing_and_silent() {
        let p = MisProtocol::new();
        for s in [MisState::Win, MisState::Lose] {
            let t = p.delta(&s, &obs([1, 1, 1, 1, 1, 1, 1]));
            assert_eq!(t.choices, vec![(s, None)]);
        }
    }

    #[test]
    fn staying_never_transmits_moving_always_does() {
        // Exhaustive over states × a sample of observations: emissions
        // occur exactly on state changes, and announce the target state.
        let p = MisProtocol::new();
        let samples = [
            [0usize; 7],
            [1, 0, 0, 0, 0, 0, 0],
            [0, 1, 0, 0, 0, 0, 0],
            [0, 0, 1, 1, 0, 0, 0],
            [0, 0, 0, 0, 1, 1, 0],
            [1, 1, 1, 1, 1, 1, 1],
        ];
        for s in MisState::ALL {
            for c in samples {
                for (to, emission) in p.delta(&s, &obs(c)).choices {
                    if to == s {
                        assert_eq!(emission, None, "{s:?} stayed but transmitted");
                    } else {
                        assert_eq!(
                            emission,
                            Some(to.letter()),
                            "{s:?} → {to:?} must announce the target"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_node_wins_quickly() {
        let g = stoneage_graph::Graph::empty(1);
        let out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(3)).unwrap();
        assert_eq!(out.outputs, vec![1]);
    }

    #[test]
    fn two_cliques_bridge_produces_valid_mis() {
        let g = generators::ring_of_cliques(3, 4);
        for seed in 0..10 {
            let out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed)).unwrap();
            let mis = crate::decode_mis(&out.outputs);
            assert!(
                validate::is_maximal_independent_set(&g, &mis),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mis_on_many_graph_families() {
        let graphs: Vec<(&str, stoneage_graph::Graph)> = vec![
            ("path", generators::path(40)),
            ("cycle", generators::cycle(41)),
            ("complete", generators::complete(12)),
            ("star", generators::star(30)),
            ("grid", generators::grid(6, 7)),
            ("tree", generators::random_tree(60, 5)),
            ("gnp", generators::gnp(80, 0.08, 6)),
            ("regular", generators::random_regular(30, 4, 7)),
            ("hypercube", generators::hypercube(5)),
            ("empty", stoneage_graph::Graph::empty(10)),
        ];
        for (name, g) in &graphs {
            for seed in 0..3 {
                let out = run_sync(&MisProtocol::new(), g, &SyncConfig::seeded(seed))
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let mis = crate::decode_mis(&out.outputs);
                assert!(
                    validate::is_maximal_independent_set(g, &mis),
                    "{name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_everyone_wins() {
        let g = stoneage_graph::Graph::empty(5);
        let out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(0)).unwrap();
        assert_eq!(out.outputs, vec![1; 5]);
    }

    #[test]
    fn complete_graph_exactly_one_winner() {
        let g = generators::complete(9);
        for seed in 0..5 {
            let out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed)).unwrap();
            let winners = out.outputs.iter().filter(|&&o| o == 1).count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }

    #[test]
    fn bounded_count_is_beeping_level() {
        // The protocol never needs to distinguish counts above 1.
        let p = MisProtocol::new();
        let saturated: BoundedCount = fb(100, 1);
        assert_eq!(saturated, fb(1, 1));
        assert_eq!(p.bound(), 1);
    }
}
