//! A minimal single-letter **wave** (broadcast) protocol.
//!
//! Source nodes (input symbol 1) beep; every node that hears a beep beeps
//! once itself and outputs 1. On a connected graph with a source, the
//! synchronous round complexity is *exactly* `ecc(sources) + 1`, which
//! makes the wave an ideal calibration subject for the synchronizer
//! overhead experiment (E7): the paper's Theorem 3.1 predicts the
//! asynchronous simulation completes within a constant factor of that.
//!
//! The protocol also demonstrates per-node *inputs* (the choice of initial
//! state from `Q_I`, Section 2) — something the MIS and coloring protocols
//! do not exercise.

use stoneage_core::{Alphabet, Letter, TableProtocol, TableProtocolBuilder, Transitions};

/// Builds the wave protocol as an explicit [`TableProtocol`] (`b = 1`).
///
/// Input symbols: `0` = idle node, `1` = source. Output: every node
/// outputs 1 once the wave reaches it; the execution reaches an output
/// configuration when the wave has covered the graph (never, on a graph
/// with an uncovered component — callers should pass connected graphs or
/// put a source in every component).
pub fn wave_protocol() -> TableProtocol {
    let alphabet = Alphabet::new(["BEEP", "QUIET"]);
    let beep = Letter(0);
    let quiet = Letter(1);
    let mut b = TableProtocolBuilder::new("wave", alphabet, 1, quiet);
    let idle = b.add_state("idle", beep);
    let src = b.add_state("source", beep);
    let done = b.add_output_state("done", beep, 1);
    b.add_input_state(idle); // input 0
    b.add_input_state(src); // input 1
    b.set_transition(idle, 0, Transitions::det(idle, None));
    b.set_transition(idle, 1, Transitions::det(done, Some(beep)));
    b.set_transition_all(src, Transitions::det(done, Some(beep)));
    b.set_transition_all(done, Transitions::det(done, None));
    b.build().expect("wave protocol is well-formed")
}

/// Convenience: the input vector marking exactly the given sources.
pub fn wave_inputs(n: usize, sources: &[u32]) -> Vec<usize> {
    let mut inputs = vec![0usize; n];
    for &s in sources {
        inputs[s as usize] = 1;
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_core::AsMulti;
    use stoneage_graph::{generators, traversal};
    use stoneage_sim::SyncConfig;
    use stoneage_testkit::harness::run_sync_with_inputs;

    #[test]
    fn wave_rounds_equal_eccentricity_plus_one() {
        for (g, src) in [
            (generators::path(20), 0u32),
            (generators::path(21), 10),
            (generators::cycle(16), 3),
            (generators::random_tree(50, 4), 7),
            (generators::grid(5, 8), 0),
        ] {
            let inputs = wave_inputs(g.node_count(), &[src]);
            let out = run_sync_with_inputs(
                &AsMulti(wave_protocol()),
                &g,
                &inputs,
                &SyncConfig::seeded(0),
            )
            .unwrap();
            let ecc = traversal::eccentricity(&g, src) as u64;
            assert_eq!(out.rounds, ecc + 1, "graph {g:?}");
            assert!(out.outputs.iter().all(|&o| o == 1));
        }
    }

    #[test]
    fn multiple_sources_use_min_distance() {
        let g = generators::path(30);
        let inputs = wave_inputs(30, &[0, 29]);
        let out = run_sync_with_inputs(
            &AsMulti(wave_protocol()),
            &g,
            &inputs,
            &SyncConfig::seeded(0),
        )
        .unwrap();
        // Farthest node from {0, 29} on P_30 is at distance 14.
        assert_eq!(out.rounds, 15);
    }

    #[test]
    fn waveless_graph_never_terminates() {
        let g = generators::path(4);
        let inputs = wave_inputs(4, &[]);
        let err = run_sync_with_inputs(
            &AsMulti(wave_protocol()),
            &g,
            &inputs,
            &SyncConfig {
                seed: 0,
                max_rounds: 100,
            },
        )
        .unwrap_err();
        assert!(matches!(err, stoneage_sim::ExecError::RoundLimit { .. }));
    }

    #[test]
    fn source_only_graph_finishes_in_one_round() {
        let g = stoneage_graph::Graph::empty(1);
        let out = run_sync_with_inputs(&AsMulti(wave_protocol()), &g, &[1], &SyncConfig::seeded(0))
            .unwrap();
        assert_eq!(out.rounds, 1);
    }
}
