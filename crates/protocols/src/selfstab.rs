//! Self-stabilizing wake-up-broadcast variants of the paper's protocols,
//! for executions with crash/restart churn.
//!
//! The paper's protocols decide into **silent sinks**: a `WIN`/`LOSE`
//! MIS node or a `COLORED` tree node never transmits again, and its
//! neighbors' ports retain the last announced letter forever. That
//! invariant is exactly what breaks under a
//! [`stoneage_sim::ChurnPlan`] restart: the reborn node re-enters the
//! initial state with every incident port reset to the pristine letter
//! `σ₀`, and its halted neighborhood never speaks again. Two distinct
//! failures follow:
//!
//! * **MIS wedges.** The restarted node reads `σ₀ = DOWN1` on every
//!   port, climbs `DOWN1 → UP₀`, and then the phantom `DOWN1`s pin it
//!   there forever (`DOWN1 ∈ D(UP₀)`): the run never reaches an output
//!   configuration and aborts with
//!   [`stoneage_sim::ExecError::RoundLimit`].
//! * **Coloring silently mis-colors.** The restarted node sees no
//!   `COLc` letters at all, treats every color as free, and may decide
//!   a color its silent neighbor already holds — a safety violation the
//!   engine cannot detect.
//!
//! The wrappers here fix both with a **wake-up broadcast**: a decided
//! node that observes evidence of a rebooted neighbor re-announces its
//! own decision letter, repopulating the reborn node's ports so the
//! paper's own transition rules resume from a truthful neighborhood
//! view. Concretely:
//!
//! * [`SelfStabMis`] — a decided `WIN`/`LOSE` node seeing `σ₀ = DOWN1`
//!   on a port re-announces its state letter, and any *active* node
//!   that hears `WIN` decides `LOSE` immediately (WIN absorption). The
//!   restarted node therefore either loses to a re-announced `WIN`
//!   within a constant number of rounds or runs a fresh tournament
//!   against a fully-`LOSE` neighborhood and wins it.
//! * [`SelfStabColoring`] — a `COLORED` node seeing an `ACTIVE`
//!   announcement re-announces `my color is c`. A restarted node's own
//!   phase machinery then reads the true occupied palette in its
//!   RandColor round: its `I am ACTIVE` announcement lands on the
//!   colored neighbors one round before their re-announced colors land
//!   back, exactly in time for the round-3 `C(v)` query.
//!
//! The coloring wrapper repairs *staleness*, and its recovery guarantee
//! has a precondition: **the crashed node must have held a color when
//! it crashed**. Properness then reserves that color — every neighbor
//! chose a different one, so the re-announced palette spans ≤ 2 colors
//! and `C(v) ≠ ∅` at the revived node's RandColor round. A node that
//! crashes *before* coloring (e.g. a star center crashed mid-phase)
//! leaves its neighborhood free to color independently and consume all
//! three colors; no 3-coloring of the revived configuration need exist
//! at all, and the engine surfaces the palette violation as the
//! `|C(v)|` invariant panic rather than a silent improper output.
//!
//! Both wrappers change behavior only on observations the original
//! protocols treat as silence, decide outputs through the inherited
//! rules, and keep the original state and letter sets — so the
//! stabilization predicates of [`crate::stabilization`] apply
//! unchanged, and
//! [`stoneage_sim::StabilizationObserver::wedged`] distinguishes the
//! paper protocol (wedges, record never restabilizes) from these
//! variants (restabilize and terminate).
//!
//! ```
//! use stoneage_graph::{generators, TopologyEvent};
//! use stoneage_protocols::selfstab::SelfStabMis;
//! use stoneage_protocols::stabilization;
//! use stoneage_sim::{ChurnPlan, Simulation, StabilizationObserver};
//!
//! let graph = generators::star(5);
//! let protocol = SelfStabMis::new();
//! // Crash the hub early, revive it long after the leaves decided.
//! let plan = ChurnPlan::new()
//!     .at(2, TopologyEvent::Crash(0))
//!     .at(60, TopologyEvent::Restart(0));
//! let mut obs = StabilizationObserver::new(&graph, &plan, stabilization::mis_stabilized)
//!     .expect("plan is valid for this graph");
//! let outcome = Simulation::sync(&protocol, &graph)
//!     .seed(7)
//!     .with_churn(&plan)
//!     .observe(&mut obs)
//!     .run()
//!     .expect("the self-stabilizing variant terminates after the restart");
//! assert!(!obs.wedged(), "every churn event restabilized");
//! ```

use stoneage_core::{Alphabet, Letter, MultiFsm, ObsVec, Protocol, Transitions};

use crate::coloring::{ColoringProtocol, ColoringState, L};
use crate::mis::{MisProtocol, MisState};

/// The self-stabilizing MIS variant: the paper's Section 4 protocol plus
/// the wake-up re-announcement of decided nodes and WIN absorption for
/// active nodes. See the [module docs](self) for the failure mode this
/// repairs and the recovery argument.
#[derive(Clone, Debug, Default)]
pub struct SelfStabMis {
    inner: MisProtocol,
}

impl SelfStabMis {
    /// Builds the protocol.
    pub fn new() -> Self {
        SelfStabMis {
            inner: MisProtocol::new(),
        }
    }
}

impl Protocol for SelfStabMis {
    type State = MisState;

    fn alphabet(&self) -> &Alphabet {
        self.inner.alphabet()
    }

    fn bound(&self) -> u8 {
        self.inner.bound()
    }

    fn initial_letter(&self) -> Letter {
        self.inner.initial_letter()
    }

    fn initial_state(&self, input: usize) -> MisState {
        self.inner.initial_state(input)
    }

    fn output(&self, q: &MisState) -> Option<u64> {
        self.inner.output(q)
    }

    /// A restarted node re-enters `DOWN1` exactly like a fresh one — the
    /// recovery burden lies with the surviving neighborhood's wake-up
    /// broadcast, not with the reborn node, which cannot know what it
    /// missed.
    fn restart_state(&self, input: usize) -> MisState {
        self.inner.initial_state(input)
    }
}

impl MultiFsm for SelfStabMis {
    fn delta(&self, q: &MisState, obs: &ObsVec) -> Transitions<MisState> {
        let q = *q;
        match q {
            MisState::Win | MisState::Lose => {
                // A port holding σ₀ = DOWN1 is either a genuinely active
                // neighbor starting a tournament (it will lose to us or
                // was losing anyway) or a rebooted one reading phantom
                // DOWN1s. Re-announce our decision either way: it is
                // idempotent on ports that already hold it and is the
                // only way a rebooted neighbor ever learns this
                // neighborhood has decided.
                let wake = !obs.get(MisState::Down1.letter()).is_zero();
                Transitions::det(q, wake.then(|| q.letter()))
            }
            _ if !obs.get(MisState::Win.letter()).is_zero() => {
                // WIN absorption: a WIN port is truthful (WIN is only
                // ever announced by a node entering the absorbing WIN
                // state, and restarts reset stale ports to σ₀), so any
                // active node hearing it is dominated and can decide
                // immediately. This is what stops a restarted node from
                // winning a tournament against an already-decided WIN
                // neighbor it cannot otherwise hear.
                Transitions::det(MisState::Lose, Some(MisState::Lose.letter()))
            }
            _ => self.inner.delta(&q, obs),
        }
    }
}

/// The self-stabilizing tree-coloring variant: the paper's Section 5
/// protocol plus the wake-up re-announcement of colored nodes. See the
/// [module docs](self) for the silent mis-coloring this repairs.
#[derive(Clone, Debug, Default)]
pub struct SelfStabColoring {
    inner: ColoringProtocol,
}

impl SelfStabColoring {
    /// Builds the protocol.
    pub fn new() -> Self {
        SelfStabColoring {
            inner: ColoringProtocol::new(),
        }
    }
}

impl Protocol for SelfStabColoring {
    type State = ColoringState;

    fn alphabet(&self) -> &Alphabet {
        self.inner.alphabet()
    }

    fn bound(&self) -> u8 {
        self.inner.bound()
    }

    fn initial_letter(&self) -> Letter {
        self.inner.initial_letter()
    }

    fn initial_state(&self, input: usize) -> ColoringState {
        self.inner.initial_state(input)
    }

    fn output(&self, q: &ColoringState) -> Option<u64> {
        self.inner.output(q)
    }

    /// A restarted node re-enters `A1` and runs an ordinary phase; by
    /// its RandColor round the wake-up broadcast has repopulated its
    /// ports with every neighbor's color.
    fn restart_state(&self, input: usize) -> ColoringState {
        self.inner.initial_state(input)
    }
}

impl MultiFsm for SelfStabColoring {
    fn delta(&self, q: &ColoringState, obs: &ObsVec) -> Transitions<ColoringState> {
        if let ColoringState::Colored { color } = *q {
            // An ACTIVE announcement next door means someone is running
            // a phase — possibly a rebooted node whose port for us was
            // reset to INIT and who would otherwise treat our color as
            // free. Re-announce it; on ports that already hold it this
            // changes nothing.
            if !obs.get(L::Active.letter()).is_zero() {
                return Transitions::det(*q, Some(L::col(color).letter()));
            }
        }
        self.inner.delta(q, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate, TopologyEvent};
    use stoneage_sim::{ChurnPlan, ExecError, Simulation, StabilizationObserver};

    fn mis_obs(counts: [usize; 7]) -> ObsVec {
        ObsVec::from_counts(&counts, 1)
    }

    #[test]
    fn decided_nodes_reannounce_on_wake_letter() {
        let p = SelfStabMis::new();
        for q in [MisState::Win, MisState::Lose] {
            // σ₀ = DOWN1 visible: re-announce own letter.
            let t = p.delta(&q, &mis_obs([1, 0, 0, 0, 0, 0, 0]));
            assert_eq!(t.choices, vec![(q, Some(q.letter()))]);
            // Quiet decided neighborhood: stay silent like the paper.
            let t = p.delta(&q, &mis_obs([0, 0, 0, 0, 0, 1, 1]));
            assert_eq!(t.choices, vec![(q, None)]);
        }
    }

    #[test]
    fn active_nodes_absorb_win_immediately() {
        let p = SelfStabMis::new();
        for q in [
            MisState::Down1,
            MisState::Down2,
            MisState::Up0,
            MisState::Up1,
            MisState::Up2,
        ] {
            let t = p.delta(&q, &mis_obs([0, 0, 0, 0, 0, 1, 0]));
            assert_eq!(
                t.choices,
                vec![(MisState::Lose, Some(MisState::Lose.letter()))],
                "{q:?} must lose on hearing WIN"
            );
        }
    }

    #[test]
    fn delegates_to_paper_rules_otherwise() {
        let p = SelfStabMis::new();
        let paper = MisProtocol::new();
        // No WIN audible, no wake for sinks: identical transitions.
        let samples = [
            [0usize; 7],
            [1, 0, 0, 0, 0, 0, 0],
            [0, 1, 0, 0, 0, 0, 0],
            [0, 0, 1, 1, 0, 0, 0],
            [0, 0, 0, 0, 1, 0, 1],
        ];
        for q in [
            MisState::Down1,
            MisState::Down2,
            MisState::Up0,
            MisState::Up1,
            MisState::Up2,
        ] {
            for c in samples {
                assert_eq!(
                    p.delta(&q, &mis_obs(c)).choices,
                    paper.delta(&q, &mis_obs(c)).choices,
                    "{q:?} {c:?}"
                );
            }
        }
    }

    #[test]
    fn selfstab_mis_is_valid_without_churn() {
        // The wrapper must remain a correct MIS protocol on its own.
        let graphs = [
            ("path", generators::path(30)),
            ("gnp", generators::gnp(50, 0.1, 4)),
            ("complete", generators::complete(8)),
            ("star", generators::star(12)),
        ];
        for (name, g) in &graphs {
            for seed in 0..5 {
                let out = Simulation::sync(&SelfStabMis::new(), g)
                    .seed(seed)
                    .run()
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let mis = crate::decode_mis(&out.outputs);
                assert!(
                    validate::is_maximal_independent_set(g, &mis),
                    "{name} seed {seed}"
                );
            }
        }
    }

    /// The PR's core scenario: crash a node early, revive it long after
    /// its whole neighborhood decided. The paper protocol wedges (the
    /// revived node is pinned in UP₀ by phantom σ₀ = DOWN1 ports and the
    /// run exhausts its budget); the self-stabilizing variant
    /// re-stabilizes and terminates with a valid MIS.
    #[test]
    fn restart_amid_halted_neighbors_wedges_paper_mis_but_not_selfstab() {
        let g = generators::star(6);
        let plan = ChurnPlan::new()
            .at(2, TopologyEvent::Crash(0))
            .at(80, TopologyEvent::Restart(0));

        // Paper protocol: wedged. The run never reaches an output
        // configuration and the stabilization record never closes.
        let paper = MisProtocol::new();
        let mut obs =
            StabilizationObserver::new(&g, &plan, crate::stabilization::mis_stabilized).unwrap();
        let err = Simulation::sync(&paper, &g)
            .seed(11)
            .budget(2_000)
            .with_churn(&plan)
            .observe(&mut obs)
            .run()
            .expect_err("the revived hub wedges in UP0 forever");
        assert!(matches!(err, ExecError::RoundLimit { .. }), "{err}");
        assert!(obs.wedged(), "the restart record must never restabilize");

        // Self-stabilizing variant, same seed and plan: terminates, every
        // churn record restabilizes, and the output is a valid MIS.
        let stab = SelfStabMis::new();
        let mut obs =
            StabilizationObserver::new(&g, &plan, crate::stabilization::mis_stabilized).unwrap();
        let out = Simulation::sync(&stab, &g)
            .seed(11)
            .budget(2_000)
            .with_churn(&plan)
            .observe(&mut obs)
            .run()
            .expect("the wake-up broadcast un-wedges the revived hub");
        assert!(!obs.wedged());
        let mis = crate::decode_mis(&out.outputs);
        assert!(validate::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn selfstab_mis_restart_recovers_on_many_graphs() {
        for (name, g, victim) in [
            ("path", generators::path(12), 5u32),
            ("gnp", generators::gnp(20, 0.25, 3), 7),
            ("complete", generators::complete(6), 0),
        ] {
            for seed in 0..4 {
                let plan = ChurnPlan::new()
                    .at(3, TopologyEvent::Crash(victim))
                    .at(120, TopologyEvent::Restart(victim));
                let out = Simulation::sync(&SelfStabMis::new(), &g)
                    .seed(seed)
                    .budget(5_000)
                    .with_churn(&plan)
                    .run()
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let mis = crate::decode_mis(&out.outputs);
                assert!(
                    validate::is_maximal_independent_set(&g, &mis),
                    "{name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn colored_nodes_reannounce_on_active() {
        let p = SelfStabColoring::new();
        let mut counts = [0usize; 13];
        counts[L::Active as usize] = 1;
        let obs = ObsVec::from_counts(&counts, 3);
        for color in 1..=3u8 {
            let q = ColoringState::Colored { color };
            let t = p.delta(&q, &obs);
            assert_eq!(t.choices, vec![(q, Some(L::col(color).letter()))]);
            // Quiet neighborhood: silent sink, like the paper.
            let t = p.delta(&q, &ObsVec::from_counts(&[0usize; 13], 3));
            assert_eq!(t.choices, vec![(q, None)]);
        }
    }

    #[test]
    fn selfstab_coloring_is_valid_without_churn() {
        let trees = [
            ("path", generators::path(40)),
            ("star", generators::star(25)),
            ("binary", generators::kary_tree(31, 2)),
            ("random", generators::random_tree(50, 2)),
        ];
        for (name, g) in &trees {
            for seed in 0..4 {
                let out = Simulation::sync(&SelfStabColoring::new(), g)
                    .seed(seed)
                    .run()
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                let colors = crate::decode_coloring(&out.outputs);
                assert!(
                    validate::is_proper_k_coloring(g, &colors, 3),
                    "{name} seed {seed}"
                );
            }
        }
    }

    /// Crash a node long after the whole tree colored, revive it later
    /// still: the revived node must rejoin with a color its silent
    /// neighborhood does not hold. The crash comes *after* stabilization
    /// on purpose — properness at crash time reserves the victim's color
    /// (see the module docs for why a pre-coloring crash voids the
    /// guarantee).
    #[test]
    fn selfstab_coloring_restart_recovers_properly() {
        for (name, g, victim) in [
            ("star-center", generators::star(8), 0u32),
            ("star-leaf", generators::star(8), 3),
            ("path-mid", generators::path(10), 4),
            ("binary-root", generators::kary_tree(15, 2), 0),
        ] {
            for seed in 0..4 {
                let plan = ChurnPlan::new()
                    .at(60, TopologyEvent::Crash(victim))
                    .at(120, TopologyEvent::Restart(victim));
                let mut obs = StabilizationObserver::new(
                    &g,
                    &plan,
                    crate::stabilization::coloring_stabilized,
                )
                .unwrap();
                let out = Simulation::sync(&SelfStabColoring::new(), &g)
                    .seed(seed)
                    .budget(5_000)
                    .with_churn(&plan)
                    .observe(&mut obs)
                    .run()
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                assert!(!obs.wedged(), "{name} seed {seed}");
                let colors = crate::decode_coloring(&out.outputs);
                assert!(
                    validate::is_proper_k_coloring(&g, &colors, 3),
                    "{name} seed {seed}: {colors:?}"
                );
            }
        }
    }
}
