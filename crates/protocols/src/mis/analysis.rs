//! Instrumentation for the MIS protocol's analysis quantities:
//! tournament lengths (`X_v(i) ~ Geom(1/2) + 2`), the per-tournament
//! survivor sets `V^i`, and the virtual-graph edge counts `|E^i|` whose
//! decay drives Theorem 4.5 via Lemma 4.3.

use stoneage_graph::Graph;
use stoneage_sim::SyncObserver;

use super::MisState;

/// Per-node tournament telemetry collected during a synchronous MIS run.
///
/// Plug into a [`stoneage_sim::Simulation`] run via
/// [`stoneage_sim::AdaptSync`]; afterwards query
/// [`MisObserver::tournament_turns`], [`MisObserver::edge_counts`], etc.
#[derive(Clone, Debug)]
pub struct MisObserver {
    prev: Vec<MisState>,
    /// `turns[v][i]` = number of turns node `v` spent in its tournament
    /// `i+1` (a *turn* is a maximal run of rounds in one state).
    turns: Vec<Vec<u32>>,
    /// Round at which each node reached an output state (0 = never).
    finished_round: Vec<u64>,
    /// Whether the node ended in `WIN`.
    won: Vec<bool>,
    rounds_seen: u64,
}

impl MisObserver {
    /// An observer for an `n`-node execution (all nodes start in `DOWN1`,
    /// which opens tournament 1 with its first turn).
    pub fn new(n: usize) -> Self {
        MisObserver {
            prev: vec![MisState::Down1; n],
            turns: vec![vec![1]; n],
            finished_round: vec![0; n],
            won: vec![false; n],
            rounds_seen: 0,
        }
    }

    /// Number of tournaments node `v` participated in.
    pub fn tournament_count(&self, v: usize) -> usize {
        self.turns[v].len()
    }

    /// Raw turn counts per tournament for node `v` (no convention
    /// adjustment; see [`MisObserver::tournament_lengths`]).
    pub fn tournament_turns(&self, v: usize) -> &[u32] {
        &self.turns[v]
    }

    /// The paper's `X_v(i)` values for node `v`: raw turn counts, with the
    /// final tournament adjusted by `+1` (Section 4, "Geometric Random
    /// Variables") — the adjustment compensates for the `DOWN2`-turn a
    /// *winning* tournament skips (`UP → WIN`), so it applies only when
    /// the node ended in `WIN`; a loser's last tournament does pass
    /// through `DOWN2`.
    pub fn tournament_lengths(&self, v: usize) -> Vec<u32> {
        let mut lengths = self.turns[v].clone();
        if self.won[v] {
            if let Some(last) = lengths.last_mut() {
                *last += 1;
            }
        }
        lengths
    }

    /// Whether node `v` ended in `WIN`.
    pub fn won(&self, v: usize) -> bool {
        self.won[v]
    }

    /// Round at which node `v` entered `WIN`/`LOSE` (0 if still active).
    pub fn finished_round(&self, v: usize) -> u64 {
        self.finished_round[v]
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds_seen
    }

    /// The survivor sets: `survivors(i)[v]` is true iff tournament `i`
    /// (1-based) of `v` exists, i.e. `v ∈ V^i`.
    pub fn survivors(&self, i: usize) -> Vec<bool> {
        assert!(i >= 1, "tournaments are 1-based");
        self.turns.iter().map(|t| t.len() >= i).collect()
    }

    /// The maximal tournament index that exists for any node.
    pub fn max_tournament(&self) -> usize {
        self.turns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `|E^i|` for `i = 1 ..= max_tournament()`: the edge counts of the
    /// virtual graphs `G^i` induced by `V^i` (Section 4). Lemma 4.3 predicts
    /// geometric decay; experiment E3 measures the per-step ratios.
    pub fn edge_counts(&self, g: &Graph) -> Vec<usize> {
        (1..=self.max_tournament())
            .map(|i| g.surviving_edges(&self.survivors(i)))
            .collect()
    }
}

impl SyncObserver<MisState> for MisObserver {
    fn on_round_end(&mut self, round: u64, states: &[MisState]) {
        self.rounds_seen = round;
        for (v, (&now, prev)) in states.iter().zip(self.prev.iter_mut()).enumerate() {
            if now == *prev {
                continue;
            }
            match now {
                MisState::Win | MisState::Lose => {
                    if self.finished_round[v] == 0 {
                        self.finished_round[v] = round;
                        self.won[v] = now == MisState::Win;
                    }
                }
                MisState::Down1 => {
                    // A new tournament opens with its DOWN1 turn.
                    self.turns[v].push(1);
                }
                _ => {
                    // A new turn within the current tournament.
                    if let Some(t) = self.turns[v].last_mut() {
                        *t += 1;
                    }
                }
            }
            *prev = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MisProtocol;
    use stoneage_graph::{generators, validate};
    use stoneage_sim::SyncConfig;
    use stoneage_testkit::harness::run_sync_observed;

    fn run_observed(g: &Graph, seed: u64) -> (MisObserver, Vec<bool>) {
        let p = MisProtocol::new();
        let mut obs = MisObserver::new(g.node_count());
        let inputs = vec![0usize; g.node_count()];
        let out = run_sync_observed(&p, g, &inputs, &SyncConfig::seeded(seed), &mut obs).unwrap();
        (obs, crate::decode_mis(&out.outputs))
    }

    #[test]
    fn every_node_has_at_least_one_tournament() {
        let g = generators::gnp(50, 0.1, 1);
        let (obs, mis) = run_observed(&g, 2);
        assert!(validate::is_maximal_independent_set(&g, &mis));
        for v in 0..50 {
            assert!(obs.tournament_count(v) >= 1);
            assert!(obs.finished_round(v) >= 1);
        }
    }

    #[test]
    fn tournament_lengths_are_at_least_two_adjusted() {
        // X_v(i) = Geom(1/2) + 2 ≥ 3 for every tournament (DOWN1 +
        // ≥1 UP + DOWN2, with winners' final tournaments adjusted +1 for
        // the skipped DOWN2).
        let g = generators::gnp(40, 0.15, 3);
        let (obs, _) = run_observed(&g, 4);
        for v in 0..40 {
            for (i, &x) in obs.tournament_lengths(v).iter().enumerate() {
                assert!(x >= 3, "node {v} tournament {} length {x}", i + 1);
            }
        }
    }

    #[test]
    fn survivor_sets_are_nested() {
        let g = generators::gnp(60, 0.1, 5);
        let (obs, _) = run_observed(&g, 6);
        let maxi = obs.max_tournament();
        assert!(maxi >= 1);
        for i in 1..maxi {
            let a = obs.survivors(i);
            let b = obs.survivors(i + 1);
            for v in 0..60 {
                assert!(a[v] || !b[v], "V^{} ⊄ V^{} at node {v}", i + 1, i);
            }
        }
        // V^1 is everyone.
        assert!(obs.survivors(1).iter().all(|&x| x));
    }

    #[test]
    fn edge_counts_reach_zero() {
        let g = generators::gnp(50, 0.12, 7);
        let (obs, _) = run_observed(&g, 8);
        let counts = obs.edge_counts(&g);
        assert_eq!(counts[0], g.edge_count());
        // The MIS finishing means some tail tournament has no surviving
        // edges — otherwise two adjacent nodes would still be competing.
        assert!(counts.last().is_none() || *counts.last().unwrap() < g.edge_count());
    }

    #[test]
    fn edge_counts_decay_geometrically_on_average() {
        // Lemma 4.3 with the paper's constant: E|E^{i+1}| < (35/36)|E^i|.
        // Averaged over tournaments and seeds, the measured ratio is far
        // below even 0.9 in practice; assert the safe bound < 0.95.
        let g = generators::gnp(120, 0.08, 9);
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let (obs, _) = run_observed(&g, seed);
            let counts = obs.edge_counts(&g);
            for w in counts.windows(2) {
                if w[0] >= 20 {
                    ratios.push(w[1] as f64 / w[0] as f64);
                }
            }
        }
        assert!(!ratios.is_empty());
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 0.95, "mean decay ratio {mean}");
    }

    #[test]
    fn winners_final_tournament_has_no_down2() {
        // A node that WINs ends its last tournament on an UP turn; the
        // observer's raw turn count is therefore ≥ 2 (DOWN1 + at least one
        // UP turn).
        let g = generators::cycle(30);
        let (obs, mis) = run_observed(&g, 11);
        for (v, &in_mis) in mis.iter().enumerate() {
            if in_mis {
                let turns = obs.tournament_turns(v);
                assert!(*turns.last().unwrap() >= 2, "node {v}: {turns:?}");
            }
        }
    }
}
