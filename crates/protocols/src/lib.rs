//! The concrete nFSM protocols of *Stone Age Distributed Computing*.
//!
//! * [`mis`] — the maximal-independent-set protocol of Section 4 (the
//!   paper's Figure 1): seven states, seven letters, bounding parameter
//!   `b = 1`, run-time `O(log² n)` (Theorem 4.5).
//! * [`coloring`] — the 3-coloring protocol for undirected trees of
//!   Section 5: phases of four rounds, bounding parameter `b = 3`,
//!   run-time `O(log n)` (Theorem 5.4).
//! * [`wave`] — a minimal single-letter broadcast ("wave") protocol used
//!   as a calibration subject for the synchronizer experiments: its round
//!   complexity is exactly the source eccentricity plus one.
//! * [`matching`] — the paper's deferred maximal-matching result, built on
//!   the port-select model extension (see `stoneage_sim::scoped`).
//! * [`selfstab`] — self-stabilizing wake-up-broadcast variants of the MIS
//!   and coloring protocols that recover from crash/restart churn instead
//!   of wedging on silent decided neighborhoods.
//!
//! All protocols are written against the multiple-letter-query layer
//! ([`stoneage_core::MultiFsm`]) or directly as single-letter
//! [`stoneage_core::Fsm`]s; Theorems 3.4 and 3.1 (the [`stoneage_core`]
//! compilers) carry them to the fully asynchronous model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod matching;
pub mod mis;
pub mod selfstab;
pub mod stabilization;
pub mod wave;

pub use coloring::{ColoringProtocol, ColoringState};
pub use matching::{run_matching, MatchingOutcome, MatchingProtocol, MatchingState};
pub use mis::{MisProtocol, MisState};
pub use selfstab::{SelfStabColoring, SelfStabMis};
pub use wave::wave_protocol;

/// Decodes MIS protocol outputs (`1` = WIN = in the set) into a membership
/// vector.
pub fn decode_mis(outputs: &[u64]) -> Vec<bool> {
    outputs.iter().map(|&o| o == 1).collect()
}

/// Decodes coloring protocol outputs into `0`-based colors (the protocol
/// emits colors `1..=3`).
pub fn decode_coloring(outputs: &[u64]) -> Vec<u32> {
    outputs.iter().map(|&o| (o as u32) - 1).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn decoders() {
        assert_eq!(super::decode_mis(&[1, 0, 1]), vec![true, false, true]);
        assert_eq!(super::decode_coloring(&[1, 3, 2]), vec![0, 2, 1]);
    }
}
