//! Stabilization predicates for the paper's protocols under churn.
//!
//! Each predicate decides whether the current execution configuration
//! satisfies the protocol's correctness property *restricted to the live
//! part of the topology* — exactly the shape
//! [`stoneage_sim::StabilizationObserver`] expects, so re-stabilization
//! times after a [`stoneage_sim::ChurnPlan`] event can be measured as
//!
//! ```
//! use stoneage_graph::{generators, TopologyEvent};
//! use stoneage_protocols::{mis::MisProtocol, stabilization};
//! use stoneage_sim::{ChurnPlan, Simulation, StabilizationObserver};
//!
//! let graph = generators::gnp(24, 0.2, 5);
//! let protocol = MisProtocol::new();
//! let plan = ChurnPlan::new().at(4, TopologyEvent::Crash(0));
//! let mut obs = StabilizationObserver::new(&graph, &plan, stabilization::mis_stabilized)
//!     .expect("plan is valid for this graph");
//! let outcome = Simulation::sync(&protocol, &graph)
//!     .seed(9)
//!     .with_churn(&plan)
//!     .observe(&mut obs)
//!     .run()
//!     .expect("MIS terminates");
//! assert!(outcome.churn().is_some());
//! // One record per effective event; `restabilized_after` is the number
//! // of rounds until the predicate held again (None if it never did).
//! assert_eq!(obs.records().len(), 1);
//! ```
//!
//! All three predicates ignore dead nodes entirely and consider only
//! edges that are currently enabled between two live endpoints: a crash
//! can therefore *unsatisfy* the property (e.g. the crashed node was the
//! MIS dominator of its neighborhood) and the rounds until the survivors
//! repair it is precisely the re-stabilization measure. Note that output
//! states are irrevocable in the nFSM model, so some events can never be
//! repaired without a restart — e.g. inserting an edge between two
//! decided `WIN` nodes; the observer reports `None` for such events.

use stoneage_graph::{DynamicGraph, Graph};

use crate::coloring::ColoringState;
use crate::matching::MatchingState;
use crate::mis::MisState;

/// Does `(u, v)` currently connect two live nodes?
fn live_edge(overlay: &DynamicGraph, graph: &Graph, u: u32, v: u32) -> bool {
    overlay.is_live(u) && overlay.is_live(v) && overlay.edge_enabled(graph, u, v)
}

/// The maximal-independent-set property over the live subgraph: every
/// live node has decided (`WIN` or `LOSE`), no enabled live edge joins
/// two `WIN`s (independence), and every live `LOSE` node has a live
/// `WIN` neighbor dominating it (maximality).
pub fn mis_stabilized(graph: &Graph, overlay: &DynamicGraph, states: &[MisState]) -> bool {
    let n = graph.node_count();
    for v in 0..n as u32 {
        if !overlay.is_live(v) {
            continue;
        }
        match states[v as usize] {
            MisState::Win | MisState::Lose => {}
            _ => return false,
        }
    }
    for (u, v) in graph.edges() {
        if !live_edge(overlay, graph, u, v) {
            continue;
        }
        if states[u as usize] == MisState::Win && states[v as usize] == MisState::Win {
            return false;
        }
    }
    for v in 0..n as u32 {
        if !overlay.is_live(v) || states[v as usize] != MisState::Lose {
            continue;
        }
        let dominated = graph
            .neighbors(v)
            .iter()
            .any(|&u| live_edge(overlay, graph, v, u) && states[u as usize] == MisState::Win);
        if !dominated {
            return false;
        }
    }
    true
}

/// The proper-3-coloring property over the live subgraph: every live
/// node has decided a color and no enabled live edge joins two equal
/// colors.
pub fn coloring_stabilized(
    graph: &Graph,
    overlay: &DynamicGraph,
    states: &[ColoringState],
) -> bool {
    let n = graph.node_count();
    let color = |v: u32| match states[v as usize] {
        ColoringState::Colored { color } => Some(color),
        _ => None,
    };
    for v in 0..n as u32 {
        if overlay.is_live(v) && color(v).is_none() {
            return false;
        }
    }
    for (u, v) in graph.edges() {
        if !live_edge(overlay, graph, u, v) {
            continue;
        }
        if color(u) == color(v) {
            return false;
        }
    }
    true
}

/// The maximal-matching property over the live subgraph, as far as it is
/// visible from states alone: every live node has decided, and no
/// enabled live edge joins two `DoneUnmatched` nodes (such an edge could
/// still be added to the matching, contradicting maximality). Matched
/// *pairs* are witnessed by the scoped-delivery log, not the states, so
/// consistency of the pairing is checked by the matching runner instead.
pub fn matching_stabilized(
    graph: &Graph,
    overlay: &DynamicGraph,
    states: &[MatchingState],
) -> bool {
    let n = graph.node_count();
    for v in 0..n as u32 {
        if !overlay.is_live(v) {
            continue;
        }
        match states[v as usize] {
            MatchingState::DoneMatched | MatchingState::DoneUnmatched => {}
            _ => return false,
        }
    }
    for (u, v) in graph.edges() {
        if !live_edge(overlay, graph, u, v) {
            continue;
        }
        if states[u as usize] == MatchingState::DoneUnmatched
            && states[v as usize] == MatchingState::DoneUnmatched
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, TopologyEvent};

    fn overlay(graph: &Graph) -> DynamicGraph {
        DynamicGraph::new(graph)
    }

    #[test]
    fn mis_predicate_on_a_path() {
        let g = generators::path(3);
        let ov = overlay(&g);
        use MisState::*;
        assert!(mis_stabilized(&g, &ov, &[Win, Lose, Win]));
        // Independence violated.
        assert!(!mis_stabilized(&g, &ov, &[Win, Win, Lose]));
        // Maximality violated: node 2 loses with no WIN neighbor.
        assert!(!mis_stabilized(&g, &ov, &[Win, Lose, Lose]));
        // Undecided live node.
        assert!(!mis_stabilized(&g, &ov, &[Win, Lose, Up0]));
    }

    #[test]
    fn dead_nodes_and_disabled_edges_are_ignored() {
        let g = generators::path(3);
        let mut ov = overlay(&g);
        use MisState::*;
        // Crash the middle node: both endpoints may be WIN, and its own
        // state no longer matters.
        let mut patches = Vec::new();
        ov.apply(&g, TopologyEvent::Crash(1), &mut patches).unwrap();
        assert!(mis_stabilized(&g, &ov, &[Win, Up1, Win]));
        // But a live LOSE node whose only dominator died is unsatisfied.
        assert!(!mis_stabilized(&g, &ov, &[Lose, Win, Win]));
    }

    #[test]
    fn coloring_predicate_on_a_path() {
        let g = generators::path(3);
        let ov = overlay(&g);
        let c = |color| ColoringState::Colored { color };
        assert!(coloring_stabilized(&g, &ov, &[c(1), c(2), c(1)]));
        assert!(!coloring_stabilized(&g, &ov, &[c(1), c(1), c(2)]));
        assert!(!coloring_stabilized(
            &g,
            &ov,
            &[c(1), ColoringState::A1, c(2)]
        ));
    }

    #[test]
    fn matching_predicate_on_a_path() {
        let g = generators::path(3);
        let ov = overlay(&g);
        use MatchingState::*;
        assert!(matching_stabilized(
            &g,
            &ov,
            &[DoneMatched, DoneMatched, DoneUnmatched]
        ));
        // Edge (1, 2) joins two unmatched nodes: not maximal.
        assert!(!matching_stabilized(
            &g,
            &ov,
            &[DoneMatched, DoneUnmatched, DoneUnmatched]
        ));
        assert!(!matching_stabilized(
            &g,
            &ov,
            &[DoneMatched, DoneMatched, F1]
        ));
    }
}
