//! Instrumentation for the coloring protocol's analysis quantities:
//! per-phase sizes of the active sets `V^i` and of the never-waited sets
//! `Ṽ^i`, whose geometric decay (Observation 5.3) drives Theorem 5.4.

use stoneage_sim::SyncObserver;

use super::ColoringState;

/// Per-phase telemetry of a synchronous coloring run.
///
/// Plug into a [`stoneage_sim::Simulation`] run via
/// [`stoneage_sim::AdaptSync`]; phases are the
/// protocol's four-round blocks, sampled at each round `r ≡ 1 (mod 4)`
/// (the start of a phase, after round-`r` transitions — i.e. the
/// population that transmitted `I am ACTIVE`).
#[derive(Clone, Debug)]
pub struct ColoringObserver {
    ever_waited: Vec<bool>,
    /// `active[i]` = |V^{i+1}|: nodes in ACTIVE mode at phase `i+1`.
    active: Vec<usize>,
    /// `never_waited_active[i]` = |Ṽ^{i+1}|.
    never_waited_active: Vec<usize>,
    /// Colored nodes per sampled phase.
    colored: Vec<usize>,
}

impl ColoringObserver {
    /// An observer for an `n`-node execution.
    pub fn new(n: usize) -> Self {
        ColoringObserver {
            ever_waited: vec![false; n],
            active: Vec::new(),
            never_waited_active: Vec::new(),
            colored: Vec::new(),
        }
    }

    /// `|V^i|` per phase (1-based: entry 0 is phase 1).
    pub fn active_sizes(&self) -> &[usize] {
        &self.active
    }

    /// `|Ṽ^i|` per phase — the quantity of Observation 5.3.
    pub fn never_waited_sizes(&self) -> &[usize] {
        &self.never_waited_active
    }

    /// Colored-node counts per phase.
    pub fn colored_sizes(&self) -> &[usize] {
        &self.colored
    }

    /// The per-phase decay ratios `|Ṽ^{i+1}| / |Ṽ^i|` (skipping empty
    /// phases).
    pub fn decay_ratios(&self) -> Vec<f64> {
        self.never_waited_active
            .windows(2)
            .filter(|w| w[0] > 0)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect()
    }
}

fn is_active(s: &ColoringState) -> bool {
    !matches!(
        s,
        ColoringState::Colored { .. }
            | ColoringState::Waiting { .. }
            | ColoringState::Rejoining { .. }
    )
}

impl SyncObserver<ColoringState> for ColoringObserver {
    fn on_round_end(&mut self, round: u64, states: &[ColoringState]) {
        for (v, s) in states.iter().enumerate() {
            if matches!(s, ColoringState::Waiting { .. }) {
                self.ever_waited[v] = true;
            }
        }
        // Sample at the start of each phase (rounds 1, 5, 9, …: the A1
        // transition has just fired, so ACTIVE nodes are in A2).
        if round % 4 == 1 {
            let active = states.iter().filter(|s| is_active(s)).count();
            let never = states
                .iter()
                .enumerate()
                .filter(|(v, s)| is_active(s) && !self.ever_waited[*v])
                .count();
            let colored = states
                .iter()
                .filter(|s| matches!(s, ColoringState::Colored { .. }))
                .count();
            self.active.push(active);
            self.never_waited_active.push(never);
            self.colored.push(colored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColoringProtocol;
    use stoneage_graph::generators;
    use stoneage_sim::SyncConfig;
    use stoneage_testkit::harness::run_sync_observed;

    fn observe(n: usize, gseed: u64, seed: u64) -> ColoringObserver {
        let g = generators::random_tree(n, gseed);
        let mut obs = ColoringObserver::new(n);
        let inputs = vec![0usize; n];
        run_sync_observed(
            &ColoringProtocol::new(),
            &g,
            &inputs,
            &SyncConfig {
                seed,
                max_rounds: 1_000_000,
            },
            &mut obs,
        )
        .expect("coloring terminates");
        obs
    }

    #[test]
    fn phase_one_has_everyone_active() {
        let obs = observe(100, 1, 2);
        assert_eq!(obs.active_sizes()[0], 100);
        assert_eq!(obs.never_waited_sizes()[0], 100);
        assert_eq!(obs.colored_sizes()[0], 0);
    }

    #[test]
    fn never_waited_sets_shrink_monotonically() {
        let obs = observe(200, 3, 4);
        let sizes = obs.never_waited_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "Ṽ must shrink: {sizes:?}");
        }
        assert_eq!(*sizes.last().unwrap(), 0, "Ṽ reaches ∅");
    }

    #[test]
    fn colored_counts_are_monotone_and_complete() {
        let obs = observe(150, 5, 6);
        let colored = obs.colored_sizes();
        for w in colored.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn observation_5_3_constant_factor_decay_on_average() {
        // Mean per-phase decay of |Ṽ^i| bounded away from 1 (Obs 5.3's
        // constants exist; measured ones are comfortably below 1).
        let mut ratios = Vec::new();
        for seed in 0..6 {
            let obs = observe(300, seed, seed + 10);
            ratios.extend(obs.decay_ratios());
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 0.9, "mean Ṽ decay ratio {mean}");
    }
}
