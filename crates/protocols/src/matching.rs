//! Maximal matching under the **port-select extension** — the paper's
//! deferred result (Section 1: "we also develop an efficient algorithm
//! that computes a maximal matching in arbitrary graphs, but this requires
//! a small unavoidable modification of the nFSM model").
//!
//! The extension (see [`stoneage_sim::scoped`]) lets a transmission be
//! scoped to one uniformly random port holding a given letter. On top of
//! it, matching is a proposal dance in four-round phases (`b = 1`):
//!
//! 1. every free node broadcasts `FREE`;
//! 2. each free node flips a coin; *proposers* scope a `PROPOSE` to one
//!    random `FREE` port (a node with no free neighbor instead retires,
//!    broadcasting `GONE`);
//! 3. *listeners* holding a `PROPOSE` scope an `ACCEPT` back to one random
//!    `PROPOSE` port — this pins the matched edge;
//! 4. proposers that hear an `ACCEPT`, and the listeners that sent one,
//!    broadcast `MATCHED` and halt; everyone else retries.
//!
//! Because a `PROPOSE` is delivered to exactly one listener and each
//! proposer sends exactly one, every `ACCEPT` lands at a proposer that
//! proposed to that very listener: the accepted edges form a matching by
//! construction. A node's constant-size output can only say *whether* it
//! matched; the matched *edges* are recovered from the engine's scoped
//! delivery log (the `ACCEPT` deliveries), which
//! [`run_matching`] does.

use stoneage_core::{Alphabet, Letter, ObsVec};
use stoneage_graph::{Graph, NodeId};
use stoneage_sim::{ExecError, ScopedEmission, ScopedMultiFsm, ScopedTransitions, Simulation};

const L_FREE: Letter = Letter(1);
const L_PROPOSE: Letter = Letter(2);
const L_ACCEPT: Letter = Letter(3);
const L_MATCHED: Letter = Letter(4);
const L_GONE: Letter = Letter(5);

/// A state of the matching protocol (suffix = position in the 4-round
/// phase).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MatchingState {
    /// Free, about to broadcast `FREE` (round 1).
    F1,
    /// Free, about to coin-flip into proposer/listener (round 2).
    F2,
    /// Proposer idling through round 3.
    P3,
    /// Proposer checking for an `ACCEPT` (round 4).
    P4,
    /// Listener checking for proposals (round 3).
    L3,
    /// Listener that accepted; announces the match (round 4).
    A4,
    /// Listener without proposals, idling round 4.
    L4,
    /// Output: matched.
    DoneMatched,
    /// Output: unmatched, with no free neighbor left.
    DoneUnmatched,
}

/// The maximal-matching protocol as a [`ScopedMultiFsm`] with `b = 1`.
#[derive(Clone, Debug)]
pub struct MatchingProtocol {
    alphabet: Alphabet,
}

impl Default for MatchingProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchingProtocol {
    /// Builds the protocol.
    pub fn new() -> Self {
        MatchingProtocol {
            alphabet: Alphabet::new(["INIT", "FREE", "PROPOSE", "ACCEPT", "MATCHED", "GONE"]),
        }
    }
}

impl stoneage_core::Protocol for MatchingProtocol {
    type State = MatchingState;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        1
    }

    fn initial_letter(&self) -> Letter {
        Letter(0)
    }

    fn initial_state(&self, _input: usize) -> MatchingState {
        MatchingState::F1
    }

    fn output(&self, q: &MatchingState) -> Option<u64> {
        match q {
            MatchingState::DoneMatched => Some(1),
            MatchingState::DoneUnmatched => Some(0),
            _ => None,
        }
    }
}

impl ScopedMultiFsm for MatchingProtocol {
    fn delta(&self, q: &MatchingState, obs: &ObsVec) -> ScopedTransitions<MatchingState> {
        use MatchingState as S;
        match q {
            S::F1 => ScopedTransitions::det(S::F2, ScopedEmission::Broadcast(L_FREE)),
            S::F2 => {
                if obs.get(L_FREE).is_zero() {
                    // No free neighbor can ever appear again: retire.
                    return ScopedTransitions::det(
                        S::DoneUnmatched,
                        ScopedEmission::Broadcast(L_GONE),
                    );
                }
                ScopedTransitions::uniform(vec![
                    (
                        S::P3,
                        ScopedEmission::ToOnePortHolding {
                            send: L_PROPOSE,
                            holding: L_FREE,
                        },
                    ),
                    (S::L3, ScopedEmission::Silent),
                ])
            }
            S::P3 => ScopedTransitions::det(S::P4, ScopedEmission::Silent),
            S::P4 => {
                if obs.get(L_ACCEPT).is_zero() {
                    ScopedTransitions::det(S::F1, ScopedEmission::Silent)
                } else {
                    ScopedTransitions::det(S::DoneMatched, ScopedEmission::Broadcast(L_MATCHED))
                }
            }
            S::L3 => {
                if obs.get(L_PROPOSE).is_zero() {
                    ScopedTransitions::det(S::L4, ScopedEmission::Silent)
                } else {
                    ScopedTransitions::det(
                        S::A4,
                        ScopedEmission::ToOnePortHolding {
                            send: L_ACCEPT,
                            holding: L_PROPOSE,
                        },
                    )
                }
            }
            S::A4 => ScopedTransitions::det(S::DoneMatched, ScopedEmission::Broadcast(L_MATCHED)),
            S::L4 => ScopedTransitions::det(S::F1, ScopedEmission::Silent),
            S::DoneMatched => ScopedTransitions::det(S::DoneMatched, ScopedEmission::Silent),
            S::DoneUnmatched => ScopedTransitions::det(S::DoneUnmatched, ScopedEmission::Silent),
        }
    }
}

/// Result of a matching run.
#[derive(Clone, Debug)]
pub struct MatchingOutcome {
    /// The matched edges, recovered from the `ACCEPT` deliveries.
    pub matched: Vec<(NodeId, NodeId)>,
    /// Per-node outputs (1 = matched).
    pub outputs: Vec<u64>,
    /// Synchronous rounds used.
    pub rounds: u64,
}

/// Runs the matching protocol and extracts the matched edges.
pub fn run_matching(
    graph: &Graph,
    seed: u64,
    max_rounds: u64,
) -> Result<MatchingOutcome, ExecError> {
    let out = Simulation::scoped(&MatchingProtocol::new(), graph)
        .seed(seed)
        .budget(max_rounds)
        .run()?
        .into_scoped_outcome()
        .expect("scoped backend");
    let matched = out
        .scoped_deliveries
        .iter()
        .filter(|d| d.letter == L_ACCEPT)
        .map(|d| (d.to, d.from)) // (proposer, listener)
        .collect();
    Ok(MatchingOutcome {
        matched,
        outputs: out.outputs,
        rounds: out.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn produces_maximal_matchings_across_families() {
        let graphs = [
            ("path", generators::path(30)),
            ("cycle", generators::cycle(17)),
            ("complete", generators::complete(10)),
            ("star", generators::star(12)),
            ("gnp", generators::gnp(50, 0.1, 3)),
            ("tree", generators::random_tree(40, 5)),
            ("two", generators::path(2)),
            ("empty", stoneage_graph::Graph::empty(4)),
        ];
        for (name, g) in &graphs {
            for seed in 0..8 {
                let out = run_matching(g, seed, 100_000)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                assert!(
                    validate::is_maximal_matching(g, &out.matched),
                    "{name} seed {seed}: {:?}",
                    out.matched
                );
                // Outputs agree with the recovered edges.
                let mut touched = vec![false; g.node_count()];
                for &(a, b) in &out.matched {
                    touched[a as usize] = true;
                    touched[b as usize] = true;
                }
                for (v, &t) in touched.iter().enumerate() {
                    assert_eq!(out.outputs[v] == 1, t, "{name} node {v}");
                }
            }
        }
    }

    #[test]
    fn phases_are_four_rounds() {
        // Matches complete at round 4 of a phase; retirements (no free
        // neighbor) complete at round 2 — the terminal round is one of
        // those two positions.
        let g = generators::gnp(30, 0.2, 1);
        let out = run_matching(&g, 2, 100_000).unwrap();
        assert!(
            out.rounds.is_multiple_of(4) || out.rounds % 4 == 2,
            "rounds = {}",
            out.rounds
        );
    }

    #[test]
    fn isolated_nodes_retire_unmatched() {
        let g = stoneage_graph::Graph::empty(3);
        let out = run_matching(&g, 0, 100).unwrap();
        assert!(out.matched.is_empty());
        assert_eq!(out.outputs, vec![0, 0, 0]);
    }

    #[test]
    fn rounds_scale_gently_with_n() {
        for &n in &[64usize, 256, 1024] {
            let g = generators::gnp(n, 6.0 / n as f64, 11);
            let out = run_matching(&g, 11, 1_000_000).unwrap();
            let bound = 40.0 * (n as f64).log2();
            assert!((out.rounds as f64) < bound, "n={n}: {} rounds", out.rounds);
        }
    }
}
