//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then `m` lines `u v`. Lines starting with `#`
//! are comments. This keeps experiment inputs/outputs versionable without
//! binary formats.

use std::fmt::Write as _;
use std::num::ParseIntError;

use crate::{Graph, GraphBuilder, NodeId};

/// Error produced when parsing an edge list fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line does not consist of two integers.
    BadEdge {
        /// 1-based line number in the input.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// An integer failed to parse.
    BadInt(ParseIntError),
    /// Fewer edge lines than the header promised.
    TruncatedInput {
        /// Edges promised by the header.
        expected: usize,
        /// Edges actually present.
        got: usize,
    },
    /// An endpoint is ≥ n or a self-loop was found.
    InvalidEdge(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge at line {line}: {content:?}")
            }
            ParseError::BadInt(e) => write!(f, "bad integer: {e}"),
            ParseError::TruncatedInput { expected, got } => {
                write!(f, "expected {expected} edges, found {got}")
            }
            ParseError::InvalidEdge(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseIntError> for ParseError {
    fn from(e: ParseIntError) -> Self {
        ParseError::BadInt(e)
    }
}

/// Serializes a graph as an edge list.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    writeln!(out, "{} {}", g.node_count(), g.edge_count()).unwrap();
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}").unwrap();
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or_else(|| ParseError::BadHeader(header.into()))?
        .parse()?;
    let m: usize = parts
        .next()
        .ok_or_else(|| ParseError::BadHeader(header.into()))?
        .parse()?;
    if parts.next().is_some() {
        return Err(ParseError::BadHeader(header.into()));
    }
    let mut b = GraphBuilder::new(n);
    let mut got = 0usize;
    for (line, content) in lines {
        if got == m {
            break;
        }
        let mut parts = content.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(ParseError::BadEdge {
                    line,
                    content: content.into(),
                })
            }
        };
        let u: NodeId = u.parse()?;
        let v: NodeId = v.parse()?;
        if u == v || u as usize >= n || v as usize >= n {
            return Err(ParseError::InvalidEdge(format!("({u}, {v}) with n = {n}")));
        }
        b.add_edge(u, v);
        got += 1;
    }
    if got < m {
        return Err(ParseError::TruncatedInput { expected: m, got });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        for seed in 0..5 {
            let g = generators::gnp(40, 0.1, seed);
            let text = to_edge_list(&g);
            let g2 = from_edge_list(&text).unwrap();
            assert_eq!(g, g2);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let g = from_edge_list("# a graph\n\n3 2\n0 1\n# middle\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(from_edge_list(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn truncated_input_is_error() {
        assert!(matches!(
            from_edge_list("3 2\n0 1\n"),
            Err(ParseError::TruncatedInput {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn self_loop_is_error() {
        assert!(matches!(
            from_edge_list("3 1\n1 1\n"),
            Err(ParseError::InvalidEdge(_))
        ));
    }

    #[test]
    fn out_of_range_endpoint_is_error() {
        assert!(matches!(
            from_edge_list("3 1\n0 3\n"),
            Err(ParseError::InvalidEdge(_))
        ));
    }

    #[test]
    fn malformed_edge_line_is_error() {
        assert!(matches!(
            from_edge_list("3 1\n0 1 2\n"),
            Err(ParseError::BadEdge { .. })
        ));
        assert!(matches!(
            from_edge_list("3 1\nzero one\n"),
            Err(ParseError::BadInt(_))
        ));
    }
}
