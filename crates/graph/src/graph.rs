//! The immutable compressed-sparse-row graph representation.

use std::fmt;

/// Identifier of a node; nodes of an `n`-node graph are `0..n`.
pub type NodeId = u32;

/// A finite simple undirected graph in compressed-sparse-row form.
///
/// This is the `G = (V, E)` of the paper's Section 2: finite, undirected,
/// no self-loops, no parallel edges. The representation is immutable; build
/// one with [`crate::GraphBuilder`] or a [`crate::generators`] function.
///
/// Neighbor lists are sorted, which gives deterministic iteration order —
/// important because the simulators assign *ports* (one per neighbor) by
/// neighbor-list position.
///
/// # The reverse-port map
///
/// Alongside the CSR arrays, every graph precomputes its **reverse-port
/// map** at build time: for the `k`-th neighbor `u` of `v` (the directed
/// slot `v → u`), [`Graph::reverse_ports`]`(v)[k]` is the port number
/// `ψ_u(v)` — the position of `v` inside `u`'s neighbor list. Delivery
/// engines use it to turn "write `v`'s letter into `u`'s port for `v`"
/// into a single indexed store, where previously every delivery paid a
/// `O(log deg(u))` binary search ([`Graph::port_of`]). Combined with
/// [`Graph::csr_offset`], the pair `(u, ψ_u(v))` addresses a *flat* port
/// store (`Vec` indexed by CSR slot) with no per-node indirection.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<NodeId>,
    /// `rev_ports[offsets[v] + k] = ψ_u(v)` where `u = neighbors(v)[k]`:
    /// the position of `v` in `u`'s neighbor list. Same layout as
    /// `neighbors`; computed once in `from_csr`.
    rev_ports: Vec<u32>,
}

impl Graph {
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        let rev_ports = compute_reverse_ports(&offsets, &neighbors);
        let g = Graph {
            offsets,
            neighbors,
            rev_ports,
        };
        #[cfg(debug_assertions)]
        g.debug_check_reverse_ports();
        g
    }

    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            rev_ports: Vec::new(),
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check_reverse_ports(&self) {
        for v in 0..self.node_count() as NodeId {
            for (k, &u) in self.neighbors(v).iter().enumerate() {
                debug_assert_eq!(
                    self.port_of(u, v),
                    Some(self.reverse_ports(v)[k] as usize),
                    "reverse-port map disagrees with port_of for edge {v}→{u}"
                );
            }
        }
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// The sorted neighbor list `N(v)`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`, i.e. `|N(v)|`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Largest degree `Δ(G)`; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. O(log deg) via binary search.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.node_count() || v as usize >= self.node_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Position of neighbor `u` within `v`'s neighbor list, if adjacent.
    ///
    /// This is the *port number* under which `v` stores messages from `u`
    /// (the paper's `ψ_v(u)`). Costs a binary search; delivery loops
    /// should use the precomputed [`Graph::reverse_ports`] instead.
    pub fn port_of(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// The reverse-port map row for `v`, parallel to
    /// [`Graph::neighbors`]`(v)`: entry `k` is `ψ_u(v)`, the port under
    /// which `u = neighbors(v)[k]` stores messages from `v`. Precomputed
    /// at build time in O(|E|).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn reverse_ports(&self, v: NodeId) -> &[u32] {
        let v = v as usize;
        &self.rev_ports[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The base index of `v`'s ports in a flat CSR-indexed store:
    /// `v`'s `k`-th port lives at slot `csr_offset(v) + k`.
    ///
    /// # Panics
    /// Panics if `v` is out of range (note `v == node_count()` is in range:
    /// it yields the one-past-the-end slot, i.e. [`Graph::port_slot_count`]).
    pub fn csr_offset(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// Total number of directed port slots (`= 2|E| =` [`Graph::degree_sum`]),
    /// the length a flat CSR-indexed port store must have.
    pub fn port_slot_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of all degrees (= `2|E|`).
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// The subgraph induced on the nodes for which `keep` is true, together
    /// with the mapping from new node ids to original ids.
    ///
    /// Used by the analysis of the MIS protocol, which studies the virtual
    /// graphs `G^i` induced by the nodes still active in tournament `i`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.node_count());
        let mut old_to_new = vec![NodeId::MAX; self.node_count()];
        let mut new_to_old = Vec::new();
        for v in 0..self.node_count() {
            if keep[v] {
                old_to_new[v] = new_to_old.len() as NodeId;
                new_to_old.push(v as NodeId);
            }
        }
        let mut offsets = Vec::with_capacity(new_to_old.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for &old in &new_to_old {
            for &w in self.neighbors(old) {
                if keep[w as usize] {
                    neighbors.push(old_to_new[w as usize]);
                }
            }
            offsets.push(neighbors.len());
        }
        (Graph::from_csr(offsets, neighbors), new_to_old)
    }

    /// Number of edges both of whose endpoints satisfy `keep`.
    pub fn surviving_edges(&self, keep: &[bool]) -> usize {
        self.edges()
            .filter(|&(u, v)| keep[u as usize] && keep[v as usize])
            .count()
    }
}

/// Computes the reverse-port map in one O(|E|) pass.
///
/// Scanning all directed slots `(v → u)` with `v` ascending and each
/// neighbor list itself sorted, the sources `v` of edges into any fixed
/// `u` appear in ascending order — so the `j`-th time `u` shows up as a
/// target, the source is exactly `u`'s `j`-th smallest neighbor, i.e. the
/// source sits at port `j` of `u`. A per-node cursor therefore yields
/// `ψ_u(v)` without any searching.
fn compute_reverse_ports(offsets: &[usize], neighbors: &[NodeId]) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut rev = vec![0u32; neighbors.len()];
    let mut cursor = vec![0u32; n];
    for v in 0..n {
        for slot in offsets[v]..offsets[v + 1] {
            let u = neighbors[slot] as usize;
            rev[slot] = cursor[u];
            cursor[u] += 1;
        }
    }
    rev
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    use super::*;

    fn triangle_plus_isolated() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn zero_node_graph_is_legal() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn triangle_counts() {
        let g = triangle_plus_isolated();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(4, 0);
        b.add_edge(4, 3);
        b.add_edge(4, 1);
        let g = b.build();
        assert_eq!(g.neighbors(4), &[0, 1, 3]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_isolated();
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn port_numbers_match_neighbor_positions() {
        let g = triangle_plus_isolated();
        assert_eq!(g.port_of(0, 1), Some(0));
        assert_eq!(g.port_of(0, 2), Some(1));
        assert_eq!(g.port_of(0, 3), None);
        for v in g.nodes() {
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                assert_eq!(g.port_of(v, u), Some(i));
            }
        }
    }

    #[test]
    fn reverse_ports_agree_with_port_of() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 5), (5, 6), (3, 5), (1, 6)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        for v in g.nodes() {
            let rev = g.reverse_ports(v);
            assert_eq!(rev.len(), g.degree(v));
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                assert_eq!(g.port_of(u, v), Some(rev[k] as usize));
            }
        }
    }

    #[test]
    fn csr_offsets_address_flat_slots() {
        let g = triangle_plus_isolated();
        assert_eq!(g.port_slot_count(), g.degree_sum());
        let mut seen = vec![false; g.port_slot_count()];
        for v in g.nodes() {
            for k in 0..g.degree(v) {
                let slot = g.csr_offset(v) + k;
                assert!(!seen[slot], "slot {slot} assigned twice");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reverse_ports_on_induced_subgraph() {
        let g = triangle_plus_isolated();
        let (sub, _) = g.induced_subgraph(&[true, true, true, false]);
        for v in sub.nodes() {
            for (k, &u) in sub.neighbors(v).iter().enumerate() {
                assert_eq!(sub.port_of(u, v), Some(sub.reverse_ports(v)[k] as usize));
            }
        }
    }

    #[test]
    fn edges_listed_once_with_ordered_endpoints() {
        let g = triangle_plus_isolated();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_drops_edges_and_remaps() {
        let g = triangle_plus_isolated();
        let (sub, map) = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.node_count(), 3);
        // only edge 0-2 survives, remapped to 0-1
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(map, vec![0, 2, 3]);
    }

    #[test]
    fn surviving_edges_counts_kept_endpoints() {
        let g = triangle_plus_isolated();
        assert_eq!(g.surviving_edges(&[true, true, true, true]), 3);
        assert_eq!(g.surviving_edges(&[true, false, true, true]), 1);
        assert_eq!(g.surviving_edges(&[false, false, false, false]), 0);
    }
}
