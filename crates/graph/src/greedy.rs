//! Sequential greedy baselines.
//!
//! These are the "centralized" comparators: the distributed protocols must
//! produce solutions of the same *kind* (maximal independent sets, proper
//! colorings with few colors, maximal matchings); greedy gives a reference
//! both for validation cross-checks and for solution-quality comparisons in
//! the experiment tables.

use crate::{Graph, NodeId};

/// Greedy MIS scanning nodes in id order: select a node iff none of its
/// selected neighbors precede it.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    greedy_mis_ordered(
        g,
        (0..g.node_count() as NodeId).collect::<Vec<_>>().as_slice(),
    )
}

/// Greedy MIS scanning nodes in the given order (a permutation of all
/// nodes).
pub fn greedy_mis_ordered(g: &Graph, order: &[NodeId]) -> Vec<bool> {
    assert_eq!(order.len(), g.node_count());
    let mut in_set = vec![false; g.node_count()];
    let mut blocked = vec![false; g.node_count()];
    for &v in order {
        if !blocked[v as usize] {
            in_set[v as usize] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    in_set
}

/// Greedy proper coloring in id order: each node takes the smallest color
/// unused by its already-colored neighbors. Uses at most `Δ + 1` colors.
pub fn greedy_coloring(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut taken = Vec::new();
    for v in 0..n as NodeId {
        taken.clear();
        taken.resize(g.degree(v) + 1, false);
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX && (c as usize) < taken.len() {
                taken[c as usize] = true;
            }
        }
        colors[v as usize] = taken.iter().position(|&t| !t).unwrap() as u32;
    }
    colors
}

/// Greedy maximal matching scanning edges in lexicographic order.
pub fn greedy_matching(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut used = vec![false; g.node_count()];
    let mut matched = Vec::new();
    for (u, v) in g.edges() {
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            matched.push((u, v));
        }
    }
    matched
}

/// A proper 2-coloring of a tree/forest by BFS layering.
///
/// The paper (Section 5) notes 2-coloring a tree distributedly needs time
/// proportional to the diameter; this sequential version is the reference
/// used to sanity-check 3-coloring quality.
///
/// # Panics
/// Panics if `g` is not a forest.
pub fn tree_2_coloring(g: &Graph) -> Vec<u32> {
    assert!(crate::traversal::is_forest(g), "2-coloring needs a forest");
    let n = g.node_count();
    let mut colors = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if colors[s] != u32::MAX {
            continue;
        }
        colors[s] = 0;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if colors[u as usize] == u32::MAX {
                    colors[u as usize] = 1 - colors[v as usize];
                    queue.push_back(u);
                }
            }
        }
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, validate};

    #[test]
    fn greedy_mis_is_maximal() {
        for seed in 0..8 {
            let g = generators::gnp(80, 0.08, seed);
            let mis = greedy_mis(&g);
            assert!(validate::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn greedy_mis_ordered_respects_order() {
        let g = generators::path(3);
        // Scanning middle node first selects it alone-ish.
        let mis = greedy_mis_ordered(&g, &[1, 0, 2]);
        assert_eq!(mis, vec![false, true, false]);
        let mis = greedy_mis_ordered(&g, &[0, 1, 2]);
        assert_eq!(mis, vec![true, false, true]);
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded() {
        for seed in 0..8 {
            let g = generators::gnp(60, 0.1, seed);
            let colors = greedy_coloring(&g);
            assert!(validate::is_proper_coloring(&g, &colors));
            let used = colors.iter().max().map_or(0, |&c| c as usize + 1);
            assert!(used <= g.max_degree() + 1);
        }
    }

    #[test]
    fn greedy_matching_is_maximal() {
        for seed in 0..8 {
            let g = generators::gnp(70, 0.07, seed);
            let m = greedy_matching(&g);
            assert!(validate::is_maximal_matching(&g, &m));
        }
    }

    #[test]
    fn tree_2_coloring_is_proper() {
        for seed in 0..8 {
            let g = generators::random_tree(90, seed);
            let colors = tree_2_coloring(&g);
            assert!(validate::is_proper_k_coloring(&g, &colors, 2));
        }
    }

    #[test]
    #[should_panic(expected = "needs a forest")]
    fn tree_2_coloring_rejects_cycles() {
        tree_2_coloring(&generators::cycle(5));
    }
}
