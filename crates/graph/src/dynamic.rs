//! Dynamic-topology overlay for churn fault injection.
//!
//! The CSR [`Graph`] stays immutable — its offsets, neighbor lists, and
//! reverse-port maps are the *universe* of nodes and edges a run may ever
//! touch. [`DynamicGraph`] overlays per-node and per-directed-slot
//! liveness on that universe: a crash marks a node dead, a restart
//! revives it, and edge events toggle individual (symmetric) port slots.
//! Applying a [`TopologyEvent`] emits the exact list of [`SlotPatch`]es
//! whose *effective* liveness changed, which is what lets an engine patch
//! its flat port store incrementally instead of rebuilding it — a slot
//! `csr_offset(v) + k` is effectively live iff `v` is live, the neighbor
//! behind port `k` is live, and the edge itself is enabled.
//!
//! Events that would not change anything (crashing a dead node,
//! re-inserting an enabled edge) are reported as ineffective no-ops
//! rather than errors, so seeded random schedules stay valid however
//! they interleave. Malformed events — self-loops, out-of-range nodes,
//! or edges outside the universe — are [`TopologyError`]s.

use std::fmt;

use crate::graph::{Graph, NodeId};

/// A topology fault, applied at a round/epoch boundary by a churn layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// Node stops: its state freezes, its ports die, in-flight letters
    /// held in them are dropped.
    Crash(NodeId),
    /// A crashed node reboots into its protocol's restart state and
    /// re-registers: every incident live port resets to σ₀.
    Restart(NodeId),
    /// Enables an edge of the universe graph that is currently off.
    EdgeInsert(NodeId, NodeId),
    /// Disables a currently enabled edge; both port slots die.
    EdgeDelete(NodeId, NodeId),
}

/// Malformed topology input: the typed replacement for the panics the
/// graph layer used to raise on bad builder/validator arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The nFSM model has no self-loops.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// A node id at or beyond the node count.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        nodes: usize,
    },
    /// An edge event names an edge outside the universe graph (churn can
    /// only toggle edges the CSR was built with).
    UnknownEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A per-node argument vector whose length is not the node count.
    LengthMismatch {
        /// What the mis-sized vector holds (diagnostic label).
        what: &'static str,
        /// Expected length (the node count).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loops are not allowed in the nFSM model (node {node})"
                )
            }
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for {nodes} nodes")
            }
            TopologyError::UnknownEdge { u, v } => {
                write!(f, "edge ({u}, {v}) is not part of the universe graph")
            }
            TopologyError::LengthMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{what} has length {actual}, expected the node count {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Whether a [`SlotPatch`] kills or revives its port slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOp {
    /// The slot died: drop its letter, exclude it from counts.
    Retire,
    /// The slot came (back) to life: reset it to σ₀.
    Revive,
}

/// One port-slot liveness change emitted by [`DynamicGraph::apply`]: the
/// flat store's slot `slot` (owned by `node`) must be retired or revived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotPatch {
    /// The node owning the slot (the *receiver* of the port).
    pub node: NodeId,
    /// The global CSR slot index, `csr_offset(node) + port`.
    pub slot: u32,
    /// Kill or revive.
    pub op: SlotOp,
}

/// Per-node and per-slot liveness overlaid on an immutable CSR universe.
///
/// See the [module docs](self) for the model. All queries and patches are
/// deterministic pure functions of the event sequence, so two replicas
/// fed the same events agree exactly — the churn engine and its
/// observers rely on this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicGraph {
    node_live: Vec<bool>,
    /// Per *directed* CSR slot; kept symmetric across the two directions
    /// of every edge.
    edge_on: Vec<bool>,
}

impl DynamicGraph {
    /// The all-live overlay: every node up, every edge enabled.
    pub fn new(graph: &Graph) -> Self {
        DynamicGraph {
            node_live: vec![true; graph.node_count()],
            edge_on: vec![true; graph.port_slot_count()],
        }
    }

    /// Whether node `v` is live.
    pub fn is_live(&self, v: NodeId) -> bool {
        self.node_live[v as usize]
    }

    /// The live flag of every node, indexed by node id.
    pub fn live_nodes(&self) -> &[bool] {
        &self.node_live
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.node_live.iter().filter(|&&l| l).count()
    }

    /// Whether the edge `{u, v}` of the universe graph is currently
    /// enabled (regardless of endpoint liveness).
    pub fn edge_enabled(&self, graph: &Graph, u: NodeId, v: NodeId) -> bool {
        match graph.port_of(u, v) {
            Some(k) => self.edge_on[graph.csr_offset(u) + k],
            None => false,
        }
    }

    /// Whether port `k` of node `v` is *effectively* live: `v` live, the
    /// neighbor behind the port live, and the edge enabled.
    pub fn slot_live(&self, graph: &Graph, v: NodeId, k: usize) -> bool {
        let u = graph.neighbors(v)[k];
        self.node_live[v as usize]
            && self.node_live[u as usize]
            && self.edge_on[graph.csr_offset(v) + k]
    }

    /// Applies one event. Returns `Ok(true)` and appends the slot patches
    /// of every effective-liveness change to `patches` when the event
    /// changed anything, `Ok(false)` for a no-op (crashing a dead node,
    /// restarting a live one, toggling an edge already in the target
    /// state), and a [`TopologyError`] for malformed input. `patches` is
    /// *appended to*, not cleared.
    pub fn apply(
        &mut self,
        graph: &Graph,
        event: TopologyEvent,
        patches: &mut Vec<SlotPatch>,
    ) -> Result<bool, TopologyError> {
        match event {
            TopologyEvent::Crash(v) => self.set_node(graph, v, false, patches),
            TopologyEvent::Restart(v) => self.set_node(graph, v, true, patches),
            TopologyEvent::EdgeInsert(u, v) => self.set_edge(graph, u, v, true, patches),
            TopologyEvent::EdgeDelete(u, v) => self.set_edge(graph, u, v, false, patches),
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), TopologyError> {
        if (v as usize) < self.node_live.len() {
            Ok(())
        } else {
            Err(TopologyError::NodeOutOfRange {
                node: v,
                nodes: self.node_live.len(),
            })
        }
    }

    fn set_node(
        &mut self,
        graph: &Graph,
        v: NodeId,
        live: bool,
        patches: &mut Vec<SlotPatch>,
    ) -> Result<bool, TopologyError> {
        self.check_node(v)?;
        if self.node_live[v as usize] == live {
            return Ok(false);
        }
        let op = if live { SlotOp::Revive } else { SlotOp::Retire };
        // A slot incident to v changes effective liveness exactly when
        // the other two factors (neighbor live, edge enabled) hold; both
        // directions of each such edge flip together.
        let base = graph.csr_offset(v);
        for (k, (&u, &rev)) in graph
            .neighbors(v)
            .iter()
            .zip(graph.reverse_ports(v))
            .enumerate()
        {
            if self.node_live[u as usize] && self.edge_on[base + k] {
                patches.push(SlotPatch {
                    node: v,
                    slot: (base + k) as u32,
                    op,
                });
                patches.push(SlotPatch {
                    node: u,
                    slot: (graph.csr_offset(u) + rev as usize) as u32,
                    op,
                });
            }
        }
        self.node_live[v as usize] = live;
        Ok(true)
    }

    fn set_edge(
        &mut self,
        graph: &Graph,
        u: NodeId,
        v: NodeId,
        on: bool,
        patches: &mut Vec<SlotPatch>,
    ) -> Result<bool, TopologyError> {
        if u == v {
            return Err(TopologyError::SelfLoop { node: u });
        }
        self.check_node(u)?;
        self.check_node(v)?;
        let (ku, kv) = match (graph.port_of(u, v), graph.port_of(v, u)) {
            (Some(ku), Some(kv)) => (ku, kv),
            _ => return Err(TopologyError::UnknownEdge { u, v }),
        };
        let su = graph.csr_offset(u) + ku;
        let sv = graph.csr_offset(v) + kv;
        if self.edge_on[su] == on {
            debug_assert_eq!(self.edge_on[sv], on, "edge_on must stay symmetric");
            return Ok(false);
        }
        self.edge_on[su] = on;
        self.edge_on[sv] = on;
        // Effective liveness only changes where both endpoints are live.
        if self.node_live[u as usize] && self.node_live[v as usize] {
            let op = if on { SlotOp::Revive } else { SlotOp::Retire };
            patches.push(SlotPatch {
                node: u,
                slot: su as u32,
                op,
            });
            patches.push(SlotPatch {
                node: v,
                slot: sv as u32,
                op,
            });
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn crash_emits_both_directions_and_restart_reverses() {
        let g = path3();
        let mut d = DynamicGraph::new(&g);
        let mut patches = Vec::new();
        assert!(d.apply(&g, TopologyEvent::Crash(1), &mut patches).unwrap());
        // Node 1 has two incident edges => 4 directed slots die.
        assert_eq!(patches.len(), 4);
        assert!(patches.iter().all(|p| p.op == SlotOp::Retire));
        assert!(!d.is_live(1));
        assert!(!d.slot_live(&g, 0, 0));
        // Crashing again is a no-op.
        assert!(!d.apply(&g, TopologyEvent::Crash(1), &mut patches).unwrap());
        assert_eq!(patches.len(), 4);

        patches.clear();
        assert!(d
            .apply(&g, TopologyEvent::Restart(1), &mut patches)
            .unwrap());
        assert_eq!(patches.len(), 4);
        assert!(patches.iter().all(|p| p.op == SlotOp::Revive));
        assert_eq!(d, DynamicGraph::new(&g));
    }

    #[test]
    fn edge_toggle_round_trips_and_respects_dead_endpoints() {
        let g = path3();
        let mut d = DynamicGraph::new(&g);
        let mut patches = Vec::new();
        assert!(d
            .apply(&g, TopologyEvent::EdgeDelete(0, 1), &mut patches)
            .unwrap());
        assert_eq!(patches.len(), 2);
        assert!(!d.edge_enabled(&g, 0, 1));
        assert!(!d.slot_live(&g, 0, 0));
        assert!(d.slot_live(&g, 1, 1), "the 1-2 edge is untouched");

        // Toggling an edge between dead endpoints changes no slot.
        patches.clear();
        d.apply(&g, TopologyEvent::Crash(0), &mut patches).unwrap();
        patches.clear();
        assert!(d
            .apply(&g, TopologyEvent::EdgeInsert(0, 1), &mut patches)
            .unwrap());
        assert!(patches.is_empty());
        assert!(d.edge_enabled(&g, 0, 1));
    }

    #[test]
    fn malformed_events_are_typed_errors() {
        let g = path3();
        let mut d = DynamicGraph::new(&g);
        let mut p = Vec::new();
        assert_eq!(
            d.apply(&g, TopologyEvent::Crash(9), &mut p),
            Err(TopologyError::NodeOutOfRange { node: 9, nodes: 3 })
        );
        assert_eq!(
            d.apply(&g, TopologyEvent::EdgeInsert(2, 2), &mut p),
            Err(TopologyError::SelfLoop { node: 2 })
        );
        assert_eq!(
            d.apply(&g, TopologyEvent::EdgeDelete(0, 2), &mut p),
            Err(TopologyError::UnknownEdge { u: 0, v: 2 })
        );
        assert!(p.is_empty());
    }
}
