//! Graph substrate for the *Stone Age Distributed Computing* reproduction.
//!
//! The networked finite state machine (nFSM) model of Emek, Smula and
//! Wattenhofer is defined over **arbitrary** finite undirected graphs, so the
//! reproduction needs a solid graph layer: a compact immutable representation
//! ([`Graph`]), a builder ([`GraphBuilder`]), a wide family of generators
//! ([`generators`]) used by the experiment sweeps, classic traversals
//! ([`traversal`]), and — crucially — *independent validators*
//! ([`validate`]) that check the distributed protocols' outputs (maximal
//! independent sets, proper colorings, maximal matchings) without trusting
//! the protocols themselves. Sequential greedy baselines live in [`greedy`].
//!
//! # Example
//!
//! ```
//! use stoneage_graph::{generators, validate};
//!
//! let g = generators::gnp(100, 0.05, 42);
//! let mis = stoneage_graph::greedy::greedy_mis(&g);
//! assert!(validate::is_maximal_independent_set(&g, &mis));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod graph;

pub mod dynamic;
pub mod generators;
pub mod greedy;
pub mod io;
pub mod prufer;
pub mod traversal;
pub mod validate;

pub use builder::GraphBuilder;
pub use dynamic::{DynamicGraph, SlotOp, SlotPatch, TopologyError, TopologyEvent};
pub use graph::{Graph, NodeId};
