//! Prüfer sequences: the classic bijection between labeled trees on `n`
//! nodes and sequences in `{0, …, n-1}^{n-2}`.
//!
//! Used by [`crate::generators::random_tree`] to sample labeled trees
//! *uniformly* — important for the tree-coloring experiments (E5/E6), whose
//! claims are about typical trees, not adversarially chosen ones.

use crate::traversal;
use crate::{Graph, GraphBuilder, NodeId};

/// Decodes a Prüfer sequence of length `n - 2` into the tree on `n` nodes.
///
/// # Panics
/// Panics if any entry is out of range.
pub fn decode(seq: &[NodeId]) -> Graph {
    let n = seq.len() + 2;
    assert!(
        seq.iter().all(|&x| (x as usize) < n),
        "Prüfer entry out of range"
    );
    let mut degree = vec![1usize; n];
    for &x in seq {
        degree[x as usize] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // `ptr`/`leaf` implement the linear-time decoding: `leaf` is the current
    // smallest-numbered leaf, maintained without a heap.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in seq {
        let x = x as usize;
        b.add_edge(leaf as NodeId, x as NodeId);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(leaf as NodeId, (n - 1) as NodeId);
    b.build()
}

/// Encodes a tree on `n >= 2` nodes into its Prüfer sequence.
///
/// # Panics
/// Panics if `g` is not a tree or has fewer than 2 nodes.
pub fn encode(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    assert!(n >= 2, "Prüfer encoding needs at least 2 nodes");
    assert!(traversal::is_tree(g), "Prüfer encoding requires a tree");
    let mut degree: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut seq = Vec::with_capacity(n.saturating_sub(2));
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for _ in 0..n.saturating_sub(2) {
        removed[leaf] = true;
        let parent = g
            .neighbors(leaf as NodeId)
            .iter()
            .copied()
            .find(|&u| !removed[u as usize])
            .expect("leaf of a tree has a live neighbor");
        seq.push(parent);
        let p = parent as usize;
        degree[p] -= 1;
        if degree[p] == 1 && p < ptr {
            leaf = p;
        } else {
            ptr += 1;
            while ptr < n && (degree[ptr] != 1 || removed[ptr]) {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn decode_empty_sequence_is_single_edge() {
        let g = decode(&[]);
        assert_eq!(g.node_count(), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn decode_known_sequence() {
        // Classic textbook example: sequence [3, 3, 3, 4] on 6 nodes gives
        // the tree with edges {0-3, 1-3, 2-3, 3-4, 4-5}.
        let g = decode(&[3, 3, 3, 4]);
        for (u, v) in [(0, 3), (1, 3), (2, 3), (3, 4), (4, 5)] {
            assert!(g.has_edge(u, v), "missing edge ({u},{v})");
        }
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn encode_inverts_decode() {
        let mut rng = SmallRng::seed_from_u64(123);
        for n in [2usize, 3, 4, 5, 10, 40] {
            for _ in 0..20 {
                let seq: Vec<NodeId> = (0..n.saturating_sub(2))
                    .map(|_| rng.gen_range(0..n as NodeId))
                    .collect();
                let g = decode(&seq);
                assert!(crate::traversal::is_tree(&g));
                assert_eq!(encode(&g), seq, "n={n} seq={seq:?}");
            }
        }
    }

    #[test]
    fn encode_star_is_all_center() {
        let g = crate::generators::star(6);
        assert_eq!(encode(&g), vec![0, 0, 0, 0]);
    }

    #[test]
    fn encode_path_is_interior_sequence() {
        let g = crate::generators::path(5);
        assert_eq!(encode(&g), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "requires a tree")]
    fn encode_rejects_cycle() {
        encode(&crate::generators::cycle(4));
    }
}
