//! Graph generators used by the experiment sweeps.
//!
//! Every randomized generator takes an explicit `seed` and is fully
//! deterministic given it, so experiments are reproducible. Families were
//! chosen to cover the regimes the paper's analysis distinguishes: sparse
//! and dense Erdős–Rényi graphs, bounded-degree regular graphs, trees (the
//! coloring protocol's domain), paths (the rLBA simulation's domain), grids
//! and tori (the cellular-automaton ancestry of the model), unit-disk graphs
//! (the biological/sensor motivation), and skewed-degree families
//! (Barabási–Albert, redirection-based [`power_law`], and the deterministic
//! [`hub_and_spoke`] stress family) that exercise the work-stealing
//! scheduler's load-imbalance regime.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::prufer;
use crate::{Graph, GraphBuilder, NodeId};

/// The path `P_n`: nodes `0 — 1 — … — n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId);
    }
    b.build()
}

/// The cycle `C_n` (requires `n >= 3`).
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId);
    }
    b.add_edge((n - 1) as NodeId, 0);
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; the first `a` ids form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u as NodeId, v as NodeId);
        }
    }
    builder.build()
}

/// The star `K_{1,n-1}` with center node 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as NodeId);
    }
    b.build()
}

/// The `rows × cols` grid (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound; needs both dims ≥ 3 to
/// stay simple).
///
/// # Panics
/// Panics if `rows < 3` or `cols < 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id((r + 1) % rows, c));
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if u > v {
                b.add_edge(v as NodeId, u as NodeId);
            }
        }
    }
    b.build()
}

/// Balanced `k`-ary tree with `n` nodes; node 0 is the root and node `v`'s
/// parent is `(v - 1) / k`.
pub fn kary_tree(n: usize, k: usize) -> Graph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v as NodeId, ((v - 1) / k) as NodeId);
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves attached.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge((v - 1) as NodeId, v as NodeId);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s as NodeId, next as NodeId);
            next += 1;
        }
    }
    b.build()
}

/// A "ring of cliques": `rings` cliques of `clique` nodes each, with one
/// bridge edge between consecutive cliques. A classic hard-ish MIS topology
/// mixing dense and sparse structure.
pub fn ring_of_cliques(rings: usize, clique: usize) -> Graph {
    assert!(rings >= 3 && clique >= 2);
    let n = rings * clique;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, i: usize| (r * clique + i) as NodeId;
    for r in 0..rings {
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(id(r, i), id(r, j));
            }
        }
        b.add_edge(id(r, clique - 1), id((r + 1) % rings, 0));
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` potential edges present
/// independently with probability `p`. Uses the geometric skipping method,
/// O(n + m) expected time.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    if p >= 1.0 {
        return complete(n);
    }
    // Batagelj–Brandes skipping over the lexicographic edge sequence.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(w as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly at
/// random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max, "m = {m} exceeds the {max} possible edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if m > max / 2 {
        // Dense case: permute all edges and take a prefix.
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max);
        for u in 0..n {
            for v in (u + 1)..n {
                all.push((u as NodeId, v as NodeId));
            }
        }
        all.shuffle(&mut rng);
        for &(u, v) in all.iter().take(m) {
            b.add_edge(u, v);
        }
    } else {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// A uniformly random labeled tree on `n` nodes, via a random Prüfer
/// sequence (Cayley's bijection).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        return b.build();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let seq: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n as NodeId)).collect();
    prufer::decode(&seq)
}

/// A random `d`-regular graph via the configuration (pairing) model with
/// rejection of self-loops/multi-edges; retries until simple.
///
/// # Panics
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    if d == 0 {
        return Graph::empty(n);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: loop {
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                continue 'attempt;
            }
            b.add_edge(u, v);
        }
        return b.build();
    }
}

/// A random geometric ("unit disk") graph: `n` points uniform in the unit
/// square, edges between pairs at Euclidean distance ≤ `radius`.
///
/// This is the stand-in for the paper's biological cellular networks /
/// sensor networks motivation: interaction is local in space.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    unit_disk_from_points(&pts, radius)
}

/// Unit-disk graph over caller-provided points (useful when the caller also
/// wants the embedding, e.g. for visualization).
pub fn unit_disk_from_points(pts: &[(f64, f64)], radius: f64) -> Graph {
    let n = pts.len();
    let r2 = radius * radius;
    // Grid bucketing for near-linear construction.
    let cell = radius.max(1e-9);
    let cells_per_side = (1.0 / cell).ceil().max(1.0) as i64;
    let key = |x: f64, y: f64| {
        let cx = ((x / cell) as i64).min(cells_per_side - 1);
        let cy = ((y / cell) as i64).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i);
    }
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = key(x, y);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = buckets.get(&(cx + dx, cy + dy)) {
                    for &j in bucket {
                        if j <= i {
                            continue;
                        }
                        let (px, py) = pts[j];
                        let (ddx, ddy) = (px - x, py - y);
                        if ddx * ddx + ddy * ddy <= r2 {
                            b.add_edge(i as NodeId, j as NodeId);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a clique on
/// `m0 = m + 1` nodes, then each new node attaches to `m` distinct existing
/// nodes chosen proportionally to degree.
///
/// # Panics
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::HashSet::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Power-law graph via growing-network-with-redirection (Krapivsky–Redner):
/// start from a star on `m + 1` nodes centered at node 0, then each new
/// node `v` picks `m` distinct targets, each drawn by choosing a uniform
/// existing node `u` and, with probability `redirect`, walking to `u`'s
/// first attachment point instead. Redirection is equivalent to linear
/// preferential attachment and yields a degree exponent `γ ≈ 1 + 1/redirect`
/// — so `redirect` close to 1 produces the extreme hubs that stress a
/// slot-balanced static shard plan hardest. Exactly `m + (n - m - 1) * m`
/// edges, fully deterministic per seed.
///
/// # Panics
/// Panics if `n < m + 1`, `m == 0`, or `redirect` is outside `[0, 1]`.
pub fn power_law(n: usize, m: usize, redirect: f64, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    assert!(
        (0.0..=1.0).contains(&redirect),
        "redirect must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // parent[v] = v's first attachment target; the redirection walk's
    // one-step ancestor. Seed-star leaves all point at the center.
    let mut parent: Vec<NodeId> = vec![0; n];
    for v in 1..=m {
        b.add_edge(0, v as NodeId);
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::HashSet::with_capacity(m);
        let mut first: Option<NodeId> = None;
        while targets.len() < m {
            let mut t: NodeId = rng.gen_range(0..v as NodeId);
            if rng.gen::<f64>() < redirect {
                t = parent[t as usize];
            }
            if targets.insert(t) && first.is_none() {
                first = Some(t);
            }
        }
        parent[v] = first.expect("m >= 1 guarantees a first target");
        for &t in &targets {
            b.add_edge(v as NodeId, t);
        }
    }
    b.build()
}

/// Hub-and-spoke stress family: `hubs` mutually-connected hub nodes
/// (ids `0..hubs`), each carrying `spokes` pendant leaves. Deterministic
/// (no seed): the worst case for uniform per-node scheduling is not
/// random — it is a handful of nodes owning almost every port slot.
///
/// # Panics
/// Panics if `hubs == 0`.
pub fn hub_and_spoke(hubs: usize, spokes: usize) -> Graph {
    assert!(hubs >= 1, "need at least one hub");
    let n = hubs + hubs * spokes;
    let mut b = GraphBuilder::new(n);
    for u in 0..hubs {
        for v in (u + 1)..hubs {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    let mut next = hubs;
    for h in 0..hubs {
        for _ in 0..spokes {
            b.add_edge(h as NodeId, next as NodeId);
            next += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert!(traversal::is_tree(&g));
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(2).edge_count(), 1);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(!traversal::is_tree(&g));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn complete_bipartite_is_bipartite() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert!(traversal::is_bipartite(&g));
    }

    #[test]
    fn star_degrees() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v) == 1));
        assert!(traversal::is_tree(&g));
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // 3*3 horizontal per row? horizontal: 3 rows * 3 = 9, vertical: 2*4 = 8
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert!(traversal::is_bipartite(&g));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn hypercube_is_d_regular() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 32);
        assert!(traversal::is_bipartite(&g));
    }

    #[test]
    fn kary_tree_is_tree() {
        for (n, k) in [(1, 2), (7, 2), (13, 3), (100, 4)] {
            let g = kary_tree(n, k);
            assert!(traversal::is_tree(&g), "n={n} k={k}");
        }
    }

    #[test]
    fn caterpillar_is_tree() {
        let g = caterpillar(5, 3);
        assert_eq!(g.node_count(), 20);
        assert!(traversal::is_tree(&g));
        assert_eq!(g.degree(0), 4); // one spine neighbor + 3 legs
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(4, 3);
        assert_eq!(g.node_count(), 12);
        // per clique 3 edges, plus 4 bridges
        assert_eq!(g.edge_count(), 16);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
        assert_eq!(gnp(1, 0.5, 1).edge_count(), 0);
        assert_eq!(gnp(0, 0.5, 1).node_count(), 0);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(200, 0.05, 7);
        let b = gnp(200, 0.05, 7);
        let c = gnp(200, 0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, 99);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        for (n, m) in [(10, 0), (10, 45), (50, 100), (20, 150)] {
            let g = gnm(n, m, 3);
            assert_eq!(g.edge_count(), m, "n={n} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(4, 7, 0);
    }

    #[test]
    fn random_tree_is_tree_for_all_sizes() {
        for n in [0, 1, 2, 3, 10, 257] {
            let g = random_tree(n, 5);
            assert!(traversal::is_tree(&g), "n={n}");
        }
    }

    #[test]
    fn random_regular_is_regular() {
        for (n, d) in [(10, 3), (16, 4), (9, 2), (8, 0)] {
            let g = random_regular(n, d, 11);
            assert!(g.nodes().all(|v| g.degree(v) == d), "n={n} d={d}");
        }
    }

    #[test]
    fn unit_disk_radius_monotonicity() {
        let small = unit_disk(100, 0.05, 42);
        let large = unit_disk(100, 0.3, 42);
        assert!(small.edge_count() < large.edge_count());
    }

    #[test]
    fn unit_disk_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(17);
        let pts: Vec<(f64, f64)> = (0..60).map(|_| (rng.gen(), rng.gen())).collect();
        let r = 0.25;
        let g = unit_disk_from_points(&pts, r);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                let within = dx * dx + dy * dy <= r * r;
                assert_eq!(
                    g.has_edge(i as NodeId, j as NodeId),
                    within,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let (n, m) = (100, 3);
        let g = barabasi_albert(n, m, 5);
        // clique on m+1 nodes + m edges per subsequent node
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn power_law_edge_count_and_determinism() {
        let (n, m) = (300, 2);
        let a = power_law(n, m, 0.8, 9);
        let b = power_law(n, m, 0.8, 9);
        let c = power_law(n, m, 0.8, 10);
        // star on m+1 nodes (m edges) + m edges per subsequent node
        assert_eq!(a.edge_count(), m + (n - m - 1) * m);
        assert!(traversal::is_connected(&a));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        // With strong redirection, the max degree should dwarf the mean —
        // the hub skew the work-stealing scheduler exists for. A uniform
        // G(n, p) of the same density has max degree within a small
        // constant of the mean; here it should be >= 10x.
        let n = 2000;
        let g = power_law(n, 1, 0.9, 7);
        let mean = 2.0 * g.edge_count() as f64 / n as f64;
        assert!(
            g.max_degree() as f64 >= 10.0 * mean,
            "max degree {} vs mean {mean}",
            g.max_degree()
        );
    }

    #[test]
    fn power_law_redirect_extremes() {
        // redirect = 0 degenerates to uniform attachment; redirect = 1
        // funnels every edge into the seed star's center.
        let flat = power_law(500, 1, 0.0, 3);
        assert_eq!(flat.edge_count(), 499);
        let funnel = power_law(500, 1, 1.0, 3);
        assert_eq!(funnel.degree(0), 499);
        assert!(traversal::is_tree(&funnel));
    }

    #[test]
    fn hub_and_spoke_shape() {
        let g = hub_and_spoke(4, 10);
        assert_eq!(g.node_count(), 44);
        // hub clique 6 edges + 40 pendant edges
        assert_eq!(g.edge_count(), 46);
        assert!((0..4).all(|h| g.degree(h) == 13));
        assert!((4..44).all(|v| g.degree(v) == 1));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn hub_and_spoke_single_hub_is_star() {
        let g = hub_and_spoke(1, 9);
        assert_eq!(g, star(10));
    }

    /// FNV-1a over the canonical edge iteration order — any reordering,
    /// insertion, or RNG drift in a generator moves the hash.
    fn edge_fingerprint(g: &Graph) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for (u, v) in g.edges() {
            for w in [u as u64, v as u64] {
                for byte in w.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
        }
        h
    }

    /// The exact skewed instances the work-stealing differential
    /// matrices and pinned panels run on (`stoneage-testkit`'s
    /// `skewed_graph_family`). These hashes pin the generators'
    /// RNG draw order: a silent change here would quietly re-seed every
    /// downstream pinned fingerprint, so it must fail *here* first.
    #[test]
    fn skewed_generators_are_pinned() {
        let pl = power_law(300, 2, 0.85, 42);
        assert_eq!((pl.node_count(), pl.edge_count()), (300, 596));
        assert_eq!(edge_fingerprint(&pl), 0x80ac595771a9fa05);
        let hs = hub_and_spoke(3, 60);
        assert_eq!((hs.node_count(), hs.edge_count()), (183, 183));
        assert_eq!(edge_fingerprint(&hs), 0x5db1028a33f829b1);
    }
}
