//! Breadth-first traversals and derived structural predicates.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance vector from `source` (`usize::MAX` for unreachable nodes).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Component label (0-based, in discovery order) for every node.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components (0 for the 0-node graph).
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).iter().max().map_or(0, |&m| m + 1)
}

/// Whether the graph is connected. The 0-node graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Whether the graph is a forest *and* connected — i.e. a tree. Graphs with
/// at most one node are trees.
pub fn is_tree(g: &Graph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    g.edge_count() == n - 1 && is_connected(g)
}

/// Whether the graph is a forest (acyclic).
pub fn is_forest(g: &Graph) -> bool {
    g.node_count() == 0 || g.edge_count() + component_count(g) == g.node_count()
}

/// Whether the graph is bipartite (2-colorable).
pub fn is_bipartite(g: &Graph) -> bool {
    let n = g.node_count();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if color[u as usize] == u8::MAX {
                    color[u as usize] = 1 - color[v as usize];
                    queue.push_back(u);
                } else if color[u as usize] == color[v as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// Exact eccentricity of `source` within its component (max BFS distance).
pub fn eccentricity(g: &Graph, source: NodeId) -> usize {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0)
}

/// Exact diameter of a connected graph by all-pairs BFS; O(n·m). Returns
/// `None` for disconnected or empty graphs.
pub fn diameter_exact(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 || !is_connected(g) {
        return None;
    }
    Some(
        (0..g.node_count() as NodeId)
            .map(|v| eccentricity(g, v))
            .max()
            .unwrap(),
    )
}

/// Lower bound on the diameter by the double-sweep heuristic (exact on
/// trees). Returns `None` for disconnected or empty graphs.
pub fn diameter_double_sweep(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 || !is_connected(g) {
        return None;
    }
    let d0 = bfs_distances(g, 0);
    let far = d0
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as NodeId)
        .unwrap();
    Some(eccentricity(g, far))
}

/// A degeneracy ordering of the nodes together with the degeneracy (the max,
/// over the ordering, of a node's back-degree). Linear time (bucket queue).
pub fn degeneracy_ordering(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.node_count();
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as NodeId);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut floor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket holding a live node.
        let mut d = floor;
        let v = loop {
            while d < buckets.len() && buckets[d].is_empty() {
                d += 1;
            }
            assert!(d < buckets.len(), "bucket queue exhausted early");
            let cand = buckets[d].pop().unwrap();
            if !removed[cand as usize] && deg[cand as usize] == d {
                break cand;
            }
            // Stale entry: the node moved buckets; retry from same level.
        };
        floor = d.saturating_sub(1);
        degeneracy = degeneracy.max(d);
        removed[v as usize] = true;
        order.push(v);
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !removed[u] {
                deg[u] -= 1;
                buckets[deg[u]].push(u as NodeId);
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = crate::Graph::empty(3);
        let d = bfs_distances(&g, 1);
        assert_eq!(d, vec![usize::MAX, 0, usize::MAX]);
    }

    #[test]
    fn components_of_disjoint_paths() {
        let mut b = crate::GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[5], comp[0]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn tree_and_forest_predicates() {
        assert!(is_tree(&generators::path(10)));
        assert!(is_tree(&generators::star(8)));
        assert!(!is_tree(&generators::cycle(4)));
        assert!(is_forest(&crate::Graph::empty(5)));
        assert!(!is_tree(&crate::Graph::empty(5)));
        assert!(!is_forest(&generators::cycle(3)));
    }

    #[test]
    fn bipartite_predicates() {
        assert!(is_bipartite(&generators::cycle(6)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(is_bipartite(&generators::path(9)));
        assert!(!is_bipartite(&generators::complete(3)));
        assert!(is_bipartite(&crate::Graph::empty(4)));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter_exact(&generators::path(10)), Some(9));
        assert_eq!(diameter_exact(&generators::cycle(8)), Some(4));
        assert_eq!(diameter_exact(&generators::complete(5)), Some(1));
        assert_eq!(diameter_exact(&crate::Graph::empty(2)), None);
        assert_eq!(diameter_exact(&generators::hypercube(5)), Some(5));
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        for seed in 0..10 {
            let g = generators::random_tree(64, seed);
            assert_eq!(diameter_double_sweep(&g), diameter_exact(&g));
        }
    }

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(degeneracy_ordering(&generators::path(10)).1, 1);
        assert_eq!(degeneracy_ordering(&generators::cycle(10)).1, 2);
        assert_eq!(degeneracy_ordering(&generators::complete(6)).1, 5);
        assert_eq!(degeneracy_ordering(&generators::random_tree(50, 3)).1, 1);
        let (order, _) = degeneracy_ordering(&generators::complete(4));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn eccentricity_on_star() {
        let g = generators::star(10);
        assert_eq!(eccentricity(&g, 0), 1);
        assert_eq!(eccentricity(&g, 5), 2);
    }
}
