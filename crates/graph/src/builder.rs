//! Mutable edge-list builder producing immutable [`Graph`]s.

use crate::dynamic::TopologyError;
use crate::{Graph, NodeId};

/// Accumulates edges and produces a [`Graph`].
///
/// The nFSM model is defined on *simple* graphs: [`GraphBuilder::add_edge`]
/// panics on self-loops immediately, and duplicate edges are deduplicated
/// deterministically by [`GraphBuilder::build`] (adding the same edge twice
/// is a common convenience for generator code).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(n <= NodeId::MAX as usize, "too many nodes for NodeId");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    /// Untrusted input (parsers, churn plans) should go through
    /// [`GraphBuilder::try_add_edge`] instead, which reports the same
    /// conditions as typed [`TopologyError`]s.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self-loops are not allowed in the nFSM model");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Adds the undirected edge `{u, v}`, reporting malformed input as a
    /// typed [`TopologyError`] instead of panicking — the entry point for
    /// edges that come from outside the program (graph files, churn
    /// plans) and are surfaced through `ExecError::Config`-style errors.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), TopologyError> {
        if u == v {
            return Err(TopologyError::SelfLoop { node: u });
        }
        for node in [u, v] {
            if node as usize >= self.n {
                return Err(TopologyError::NodeOutOfRange {
                    node,
                    nodes: self.n,
                });
            }
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Adds `{u, v}` unless it is already present. O(len) scan; prefer
    /// [`GraphBuilder::add_edge`] + dedup-at-build for bulk generation.
    pub fn add_edge_unique(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.edges.contains(&key) {
            return false;
        }
        self.add_edge(u, v);
        true
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into the immutable CSR [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each node's slice was filled in ascending order of the opposite
        // endpoint only for the `u` side; sort every slice to guarantee it.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn try_add_edge_reports_typed_errors() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(1, 1),
            Err(TopologyError::SelfLoop { node: 1 })
        );
        assert_eq!(
            b.try_add_edge(0, 2),
            Err(TopologyError::NodeOutOfRange { node: 2, nodes: 2 })
        );
        assert_eq!(b.try_add_edge(0, 1), Ok(()));
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn add_edge_unique_reports_duplicates() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_unique(0, 1));
        assert!(!b.add_edge_unique(1, 0));
        assert!(b.add_edge_unique(1, 2));
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn build_of_empty_builder_is_empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }
}
